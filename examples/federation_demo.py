#!/usr/bin/env python3
"""Distributed access control: two enterprises, one federation.

Run:  python examples/federation_demo.py

Implements the paper's §7 future-work sketch: each enterprise runs its
own active-rule engine; cross-domain role mappings let HQ staff visit
the Lab as guest principals, with the Lab's own generated rules (and
cardinality/temporal/security constraints) applying to visitors.  When
HQ revokes someone, their guest access evaporates immediately.
"""

from repro import ActiveRBACEngine, parse_policy
from repro.federation import Federation, RoleMapping

HQ = """
policy hq {
  role Engineer; role Lead;
  hierarchy Lead > Engineer;
  user wei; user ana;
  assign wei to Lead;
  assign ana to Engineer;
}
"""

LAB = """
policy lab {
  role Visitor; role Operator max_active_users 1;
  permission run on reactor;
  permission read on logs;
  grant run on reactor to Operator;
  grant read on logs to Visitor;
}
"""


def main() -> None:
    federation = Federation()
    federation.add_domain("hq",
                          ActiveRBACEngine.from_policy(parse_policy(HQ)))
    federation.add_domain("lab",
                          ActiveRBACEngine.from_policy(parse_policy(LAB)))
    federation.add_mapping(RoleMapping("hq", "Engineer", "lab", "Visitor"))
    federation.add_mapping(RoleMapping("hq", "Lead", "lab", "Operator"))
    print(federation.describe())

    lab = federation.domain("lab")

    print("\n--- ana (hq Engineer) visits the lab ---")
    ana_sid = federation.visit("hq", "ana", "lab", roles=("Visitor",))
    print(f"ana@hq reads logs: "
          f"{lab.check_access(ana_sid, 'read', 'logs')}")
    print(f"ana@hq runs reactor: "
          f"{lab.check_access(ana_sid, 'run', 'reactor')} "
          f"(Engineer maps only to Visitor)")

    print("\n--- wei (hq Lead) takes the Operator console ---")
    wei_sid = federation.visit("hq", "wei", "lab", roles=("Operator",))
    print(f"wei@hq runs reactor: "
          f"{lab.check_access(wei_sid, 'run', 'reactor')}")

    print("\n--- HQ revokes ana while she is mid-session ---")
    federation.domain("hq").deassign_user("ana", "Engineer")
    print(f"ana@hq reads logs after revocation: "
          f"{lab.check_access(ana_sid, 'read', 'logs')}")
    print("revocation propagated through the federation: guest roles "
          "deassigned, activations dropped, access denied")

    print("\n--- the lab's own audit saw everything ---")
    print(lab.audit.report())


if __name__ == "__main__":
    main()
