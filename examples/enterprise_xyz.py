#!/usr/bin/env python3
"""Enterprise XYZ: the paper's Section 5 / Figure 1 case study.

Run:  python examples/enterprise_xyz.py

Reproduces the full pipeline the paper describes: the high-level
policy specification (purchase vs approval departments, static SoD
between purchase clerk and approval clerk, inherited up the
hierarchies) is instantiated into the access-specification graph, the
OWTE rules are generated per role properties, and a policy *change*
regenerates only the affected rules.
"""

from repro import ActiveRBACEngine, PolicyGraph, parse_policy
from repro.errors import SsdViolationError
from repro.synthesis.regenerate import (
    PolicyEditor,
    simulate_manual_edit,
)
from repro.gtrbac.periodic import PeriodicInterval

XYZ = """
policy XYZ {
  # five roles in two departments (Figure 1)
  role Clerk; role PC; role PM; role AC; role AM;
  hierarchy PM > PC > Clerk;   # purchase manager > purchase clerk
  hierarchy AM > AC > Clerk;   # approval manager > approval clerk

  # the same person placing purchase orders cannot authorize them
  ssd PurchaseApproval roles PC, AC;

  permission create on purchase_order;
  permission approve on purchase_order;
  grant create on purchase_order to PC;
  grant approve on purchase_order to AC;

  user bob; user carol;
  assign bob to PM;
  assign carol to AM;
}
"""


def main() -> None:
    spec = parse_policy(XYZ)

    print("=" * 70)
    print("1. the access-specification graph (Figure 1)")
    print("=" * 70)
    graph = PolicyGraph(spec)
    print(graph.render())
    print("\ninherited SSD conflicts (bottom-up propagation):")
    for role in sorted(graph.nodes):
        partners = graph.effective_ssd_partners(role)
        if partners:
            print(f"  {role} conflicts with {sorted(partners)}")

    print()
    print("=" * 70)
    print("2. rule generation from the policy")
    print("=" * 70)
    engine = ActiveRBACEngine.from_policy(spec)
    summary = engine.rules.summary()
    print(f"generated {summary['total']} rules: "
          f"{summary.get('class.administrative', 0)} administrative, "
          f"{summary.get('class.activity_control', 0)} activity-control, "
          f"{summary.get('class.active_security', 0)} active-security")
    print("\nthe activation rule generated for PC (static SoD + "
          "hierarchy => AAR2 template):")
    print(engine.rules.get("AAR2.PC").render())

    print()
    print("=" * 70)
    print("3. enforcement")
    print("=" * 70)
    bob = engine.create_session("bob")
    engine.add_active_role(bob, "PM")
    print("bob (PM) create purchase_order:",
          engine.check_access(bob, "create", "purchase_order"))
    print("bob (PM) approve purchase_order:",
          engine.check_access(bob, "approve", "purchase_order"))
    try:
        engine.assign_user("bob", "AC")
    except SsdViolationError:
        print("assigning bob to AC: DENIED by inherited static SoD "
              "(PM is authorized for PC)")

    print()
    print("=" * 70)
    print("4. policy change: automatic regeneration vs manual editing")
    print("=" * 70)
    manual = simulate_manual_edit(engine, {"PC"})
    editor = PolicyEditor(engine)
    report = editor.set_enabling_window(
        "PC", PeriodicInterval.daily("09:00", "17:00"))
    print(f"change: give PC a 09:00-17:00 working window")
    print(f"  automatic: {report.describe()}")
    print(f"  manual estimate: scan {manual.rules_scanned} rules, edit "
          f"{manual.rules_edited}, expected errors "
          f"{manual.expected_errors:.2f}")


if __name__ == "__main__":
    main()
