#!/usr/bin/env python3
"""The Sentinel+ substrate by itself: reactive objects and Snoop events.

Run:  python examples/event_algebra_demo.py

Shows the layer underneath the RBAC engine — the part of the paper's
stack that is pure active-database machinery: reactive objects whose
method invocations raise primitive events (paper Rule 1), the PLUS
operator forcing a file closed after two hours (paper Rule 2), and the
APERIODIC operator implementing a monitoring window.
"""

from repro.clock import TimerService, VirtualClock
from repro.errors import AccessDenied
from repro.events import EventDetector, ReactiveObject, primitive_event
from repro.rules import RuleManager
from repro.rules.rule import Action, Condition, OWTERule


class FileStore(ReactiveObject):
    """A reactive object: opening/closing files raises primitive events."""

    def __init__(self, detector):
        super().__init__(detector, event_prefix="fs")
        self.open_files: set[tuple[str, str]] = set()

    @primitive_event()
    def open_file(self, user, filename):
        self.open_files.add((user, filename))

    @primitive_event()
    def close_file(self, user, filename):
        self.open_files.discard((user, filename))


def main() -> None:
    clock = VirtualClock()
    detector = EventDetector(TimerService(clock))
    rules = RuleManager(detector)
    store = FileStore(detector)
    authorized = {("Bob", "patient.dat")}

    # --- paper Rule 1: permission check on open -----------------------------
    rules.add(OWTERule(
        name="R_1", event="fs.open_file",
        conditions=[Condition(
            "checkaccess(user, file) IS TRUE",
            lambda ctx: (ctx.get("user"), ctx.get("filename"))
            in authorized)],
        actions=[Action("allow opening", lambda ctx: print(
            f"  open {ctx.get('filename')} by {ctx.get('user')}: "
            "ALLOWED"))],
        alt_actions=[Action(
            'raise error "insufficient privileges"',
            lambda ctx: (_ for _ in ()).throw(
                AccessDenied("insufficient privileges")))],
    ))

    # --- paper Rule 2: PLUS(E1, 2 hours) forces the file closed --------------
    detector.define_plus("open_timeout", "fs.open_file", 2 * 3600)
    rules.add(OWTERule(
        name="C_1", event="open_timeout",
        conditions=[Condition(
            "file still open",
            lambda ctx: (ctx.get("user"), ctx.get("filename"))
            in store.open_files)],
        actions=[Action("Closefile", lambda ctx: (
            store.close_file(ctx.get("user"), ctx.get("filename")),
            print(f"  [t+2h] {ctx.get('filename')} forcibly closed"),
        ))],
    ))

    print("Rule 1 — simple event with permission check:")
    store.open_file("Bob", "patient.dat")
    try:
        store.open_file("Mallory", "patient.dat")
    except AccessDenied as exc:
        print(f"  open patient.dat by Mallory: DENIED ({exc})")

    print("\nRule 2 — PLUS event (force close after 2 simulated hours):")
    print(f"  open files now: {sorted(store.open_files)}")
    detector.advance_time(2 * 3600)
    print(f"  open files after 2h: {sorted(store.open_files)}")

    # --- APERIODIC: audit every open inside a monitoring window --------------
    print("\nAPERIODIC — audit window (paper Rule 9's mechanism):")
    detector.define_primitive("audit_start")
    detector.define_primitive("audit_end")
    detector.define_aperiodic("audited_open", "audit_start",
                              "fs.open_file", "audit_end")
    detector.subscribe(
        "audited_open",
        lambda occurrence: print(f"  audited: {occurrence.get('user')} "
                                 f"opened {occurrence.get('filename')}"))
    store.open_file("Bob", "patient.dat")  # before window: not audited
    detector.raise_event("audit_start")
    store.open_file("Bob", "patient.dat")  # audited
    detector.raise_event("audit_end")
    store.open_file("Bob", "patient.dat")  # after window: not audited

    print(f"\ndetector stats: {detector.stats()}")


if __name__ == "__main__":
    main()
