#!/usr/bin/env python3
"""Fault containment walkthrough: fail-closed denies, quarantine,
timed re-arm, and deadline budgets.

A third-party "compliance" rule with a divide-by-zero bug is added
next to the generated pool. The demo shows that:

1. the bug never escapes raw — each fault surfaces as a typed
   ``RuleExecutionError`` deny and an audit record;
2. after three consecutive faults the circuit breaker quarantines the
   rule, the engine reports ``degraded``, and service continues;
3. the virtual clock re-arms the rule after the configured cool-off;
4. a *stalled* clause is caught by the per-check deadline budget.

Run from the repo root::

    PYTHONPATH=src python examples/fault_containment_demo.py
"""

from repro import ActiveRBACEngine, FailurePolicy, parse_policy
from repro.errors import RuleExecutionError
from repro.rules.rule import Action, OWTERule

POLICY = """
policy treasury {
  role Treasurer;
  user tia;
  assign tia to Treasurer;
  permission approve on payments;
  grant approve on payments to Treasurer;
}
"""


def main() -> None:
    engine = ActiveRBACEngine.from_policy(
        parse_policy(POLICY),
        failure_policy=FailurePolicy(quarantine_threshold=3,
                                     rearm_after=300.0),
        check_deadline=5.0)
    sid = engine.create_session("tia")
    engine.add_active_role(sid, "Treasurer")

    print("=" * 70)
    print("1. a buggy enforcement rule fails closed")
    print("=" * 70)
    engine.rules.add(OWTERule(
        name="BuggyCompliance", event="checkAccess", priority=50,
        actions=[Action("ratio check", lambda ctx: 1 / 0)],
    ))
    try:
        engine.require_access(sid, "approve", "payments")
    except RuleExecutionError as exc:
        print(f"typed deny: {exc}")
        print(f"  clause={exc.clause!r} original={exc.original!r}")
    print("last audit record:",
          engine.audit.by_kind("rule.fault")[-1].describe())

    print()
    print("=" * 70)
    print("2. three consecutive faults trip the circuit breaker")
    print("=" * 70)
    for attempt in (2, 3):
        allowed = engine.check_access(sid, "approve", "payments")
        print(f"attempt {attempt}: allowed={allowed}")
    rule = engine.rules.get("BuggyCompliance")
    print(f"quarantined={rule.quarantined} "
          f"(streak hit {rule.consecutive_faults})")
    print("health:", engine.health()["status"],
          engine.health()["quarantined"])
    print("with the buggy rule quarantined, service continues:")
    print("  allowed =", engine.check_access(sid, "approve", "payments"))

    print()
    print("=" * 70)
    print("3. the cool-off re-arms the rule on the virtual clock")
    print("=" * 70)
    engine.advance_time(301.0)
    rule = engine.rules.get("BuggyCompliance")
    print(f"after 301s: quarantined={rule.quarantined} "
          f"enabled={rule.enabled}")
    print("re-arm audit:",
          engine.audit.by_kind("rule.rearm")[-1].describe())
    engine.rules.remove("BuggyCompliance")  # fix deployed

    print()
    print("=" * 70)
    print("4. a stalled clause is caught by the deadline budget")
    print("=" * 70)

    def stalls(ctx) -> None:
        # model of a hung clause: 30 simulated seconds pass
        ctx.engine.clock.advance(30.0)

    engine.rules.add(OWTERule(
        name="SlowCompliance", event="checkAccess", priority=50,
        actions=[Action("slow scan", stalls)],
    ))
    allowed = engine.check_access(sid, "approve", "payments")
    print(f"stalled check (budget 5s): allowed={allowed}")
    print("deadline audit:",
          engine.audit.by_kind("deadline.exceeded")[-1].describe())
    print()
    print("final health:", engine.health())


if __name__ == "__main__":
    main()
