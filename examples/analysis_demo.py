#!/usr/bin/env python3
"""Policy analysis: explain denials, review entitlements, find rot.

Run:  python examples/analysis_demo.py

Three tools every access-control administrator reaches for:

1. *why was this denied?* — per-condition explanations of access and
   activation decisions;
2. *who can do X?* — effective entitlement review (hierarchy included);
3. *what is stale?* — hygiene findings (empty roles, dead permissions,
   redundant roles) plus static verification of the generated rules.
"""

from repro import ActiveRBACEngine, parse_policy
from repro.analysis import (
    explain_access,
    explain_activation,
    policy_hygiene,
    who_can,
)
from repro.synthesis.verify import render_findings, verify_rule_pool

POLICY = """
policy acme {
  role CFO; role Accountant; role Auditor; role LegacyRole;
  hierarchy CFO > Accountant;
  user maria; user raj;
  assign maria to CFO;
  assign raj to Auditor;
  permission post on ledger;
  permission audit on ledger;
  permission burn on microfiche;
  grant post on ledger to Accountant;
  grant audit on ledger to Auditor;
  dsd booksVsAudit roles Accountant, Auditor;
}
"""


def main() -> None:
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))

    print("=" * 68)
    print("1. explanations")
    print("=" * 68)
    sid = engine.create_session("raj")
    engine.add_active_role(sid, "Auditor")
    print(explain_access(engine, sid, "post", "ledger").describe())
    print()
    engine.assign_user("raj", "Accountant")
    print(explain_activation(engine, sid, "Accountant").describe())

    print()
    print("=" * 68)
    print("2. entitlement review")
    print("=" * 68)
    for operation, obj in (("post", "ledger"), ("audit", "ledger")):
        entitled = who_can(engine, operation, obj)
        print(f"who can {operation} on {obj}:")
        for user in sorted(entitled):
            print(f"  {user} via {sorted(entitled[user])}")

    print()
    print("=" * 68)
    print("3. hygiene + rule verification")
    print("=" * 68)
    print(policy_hygiene(engine).describe())
    print()
    print(render_findings(verify_rule_pool(engine)))


if __name__ == "__main__":
    main()
