#!/usr/bin/env python3
"""Active security: detection, alerting and automatic countermeasures.

Run:  python examples/active_security_demo.py

Reproduces the paper's §1 motivating scenario: *when access requests by
unauthorized roles for some files are more than a certain number of
times within a duration, an internal security alert is triggered and
some critical authorization rules are disabled and the administrators
are alerted* — plus the Rule 9 transaction-based activation window.
"""

from repro import ActiveRBACEngine, parse_policy
from repro.errors import PrerequisiteNotMetError, SecurityLockout

POLICY = """
policy datacenter {
  role Operator; role Auditor; role Manager; role JuniorEmp;
  user alice; user mallory; user boss; user intern;
  assign alice to Operator;
  assign boss to Manager;
  assign intern to JuniorEmp;

  permission read on secrets.db;
  permission read on metrics.db;
  grant read on secrets.db to Auditor;
  grant read on metrics.db to Operator;

  # paper Rule 9: juniors only work while a manager is on the floor
  transaction JuniorEmp during Manager;

  # paper §1: probe detection -> lock the prober for 10 minutes
  threshold ProbeDetector event accessDenied group_by user count 4
            window 120 lock_user lockout 600;
}
"""


def main() -> None:
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    engine.monitor.notify_admins(
        lambda alert: print(f"  >> PAGER: policy {alert.policy!r} "
                            f"tripped for {alert.group!r}; reactions: "
                            f"{alert.reactions}"))

    print("--- 1. transaction-based activation (paper Rule 9) ---")
    intern_sid = engine.create_session("intern")
    try:
        engine.add_active_role(intern_sid, "JuniorEmp")
    except PrerequisiteNotMetError:
        print("intern activates JuniorEmp before any manager: DENIED")
    boss_sid = engine.create_session("boss")
    engine.add_active_role(boss_sid, "Manager")
    engine.add_active_role(intern_sid, "JuniorEmp")
    print("manager activates -> intern admitted")
    engine.drop_active_role(boss_sid, "Manager")
    active = engine.model.session_roles(intern_sid)
    print(f"manager leaves -> intern's active roles: {sorted(active)}")

    print("\n--- 2. probe detection (paper §1 scenario) ---")
    mallory_sid = engine.create_session("mallory")
    for attempt in range(1, 5):
        allowed = engine.check_access(mallory_sid, "read", "secrets.db")
        print(f"mallory probe #{attempt}: "
              f"{'allowed' if allowed else 'denied'}")
    print(f"mallory locked out? {'mallory' in engine.locked_users}")
    try:
        engine.create_session("mallory")
    except SecurityLockout:
        print("mallory opens a new session: DENIED (locked)")

    alice_sid = engine.create_session("alice")
    engine.add_active_role(alice_sid, "Operator")
    print(f"alice (legitimate) reads metrics.db: "
          f"{engine.check_access(alice_sid, 'read', 'metrics.db')}")

    print("\n--- 3. automatic unlock after the lockout window ---")
    engine.advance_time(601)
    print(f"after 10 minutes, mallory locked? "
          f"{'mallory' in engine.locked_users}")
    engine.create_session("mallory")
    print("mallory may open sessions again (and is being watched)")

    print("\n--- 4. the security report the administrators receive ---")
    print(engine.audit.report())


if __name__ == "__main__":
    main()
