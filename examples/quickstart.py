#!/usr/bin/env python3
"""Quickstart: policy text -> generated rule pool -> enforcement.

Run:  python examples/quickstart.py

Shows the shortest end-to-end path through the library: write an
enterprise access control policy in the DSL, build the active engine
(which validates the policy and generates the OWTE rule pool), and
exercise sessions, activations and access checks.
"""

from repro import ActiveRBACEngine, parse_policy
from repro.errors import ActivationDenied, SsdViolationError

POLICY = """
policy clinic {
  # roles and the seniority hierarchy (seniors inherit junior perms)
  role ChiefDoctor; role Doctor; role Nurse;
  hierarchy ChiefDoctor > Doctor;

  # people
  user alice;   # chief doctor
  user bob;     # nurse
  assign alice to ChiefDoctor;
  assign bob to Nurse;

  # permissions
  permission read on patient.dat;
  permission prescribe on pharmacy;
  permission triage on er_queue;
  grant read on patient.dat to Doctor;
  grant prescribe on pharmacy to Doctor;
  grant triage on er_queue to Nurse;

  # a nurse cannot moonlight as a doctor (static separation of duty)
  ssd CareConflict roles Doctor, Nurse;
}
"""


def main() -> None:
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    print(f"policy loaded: {len(engine.rules)} authorization rules "
          f"generated for {len(engine.model.roles)} roles")

    # --- alice works a shift ------------------------------------------------
    session = engine.create_session("alice")
    engine.add_active_role(session, "ChiefDoctor")
    print("\nalice activates ChiefDoctor")
    for operation, obj in [("read", "patient.dat"),
                           ("prescribe", "pharmacy"),
                           ("triage", "er_queue")]:
        allowed = engine.check_access(session, operation, obj)
        print(f"  alice {operation} {obj}: "
              f"{'ALLOWED' if allowed else 'DENIED'}")

    # --- bob tries to overreach ----------------------------------------------
    bob_session = engine.create_session("bob")
    engine.add_active_role(bob_session, "Nurse")
    print("\nbob activates Nurse")
    try:
        engine.add_active_role(bob_session, "Doctor")
    except ActivationDenied as exc:
        print(f"  bob activates Doctor: DENIED ({exc})")

    try:
        engine.assign_user("bob", "Doctor")
    except SsdViolationError as exc:
        print(f"  assigning bob to Doctor: DENIED ({exc})")

    # --- what just happened, per the audit trail -----------------------------
    print("\naudit summary:")
    print(engine.audit.report())

    # --- the generated rule behind alice's activation -------------------------
    print("\nthe generated activation rule for ChiefDoctor:")
    print(engine.rules.get("AAR2.ChiefDoctor").render())


if __name__ == "__main__":
    main()
