#!/usr/bin/env python3
"""Hospital: Generalized Temporal RBAC constraints in action.

Run:  python examples/hospital_temporal.py

Reproduces the paper's GTRBAC scenarios on a simulated hospital day:

* shift-based role enabling (day doctor 08:00-16:00, night nurse
  22:00-06:00);
* per-user activation duration (paper Rule 7: Bob's OR slot expires
  after two hours);
* disabling-time SoD (paper Rule 6: Nurse and Doctor cannot both be
  disabled between 10:00 and 17:00 — someone must cover the ward).

All time is simulated: the script advances a virtual clock through one
hospital day and prints what the temporal rules do at each step.
"""

from repro import ActiveRBACEngine, parse_policy
from repro.errors import ActivationDenied, DeactivationDenied

POLICY = """
policy hospital {
  role DayDoctor; role NightNurse; role Surgeon;
  role Nurse; role Doctor;
  user ann;   # day doctor
  user nina;  # night nurse
  user bob;   # surgeon with a 2h OR slot
  assign ann to DayDoctor;
  assign nina to NightNurse;
  assign bob to Surgeon;

  permission read on patient.dat;
  grant read on patient.dat to DayDoctor;
  grant read on patient.dat to NightNurse;

  enable DayDoctor daily 08:00 to 16:00;
  enable NightNurse daily 22:00 to 06:00;

  duration Surgeon 7200 for bob;          # paper Rule 7

  disabling_sod WardCoverage roles Nurse, Doctor daily 10:00 to 17:00;
}
"""


def at(engine, label):
    hour = (engine.clock.now % 86400) / 3600
    print(f"[{int(hour):02d}:{int(hour * 60 % 60):02d}] {label}")


def main() -> None:
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    ann = engine.create_session("ann")
    nina = engine.create_session("nina")
    bob = engine.create_session("bob")

    print("--- midnight: the simulated day begins ---")
    at(engine, f"DayDoctor enabled? "
               f"{engine.model.is_role_enabled('DayDoctor')}")
    at(engine, f"NightNurse enabled? "
               f"{engine.model.is_role_enabled('NightNurse')}")
    engine.add_active_role(nina, "NightNurse")
    at(engine, "nina activates NightNurse (night shift window): OK")
    try:
        engine.add_active_role(ann, "DayDoctor")
    except ActivationDenied as exc:
        at(engine, f"ann activates DayDoctor: DENIED ({exc})")

    print("\n--- 09:00: day shift ---")
    engine.advance_time(9 * 3600)
    at(engine, f"NightNurse enabled? "
               f"{engine.model.is_role_enabled('NightNurse')} "
               f"(nina's activation dropped at 06:00)")
    engine.add_active_role(ann, "DayDoctor")
    at(engine, "ann activates DayDoctor: OK")
    at(engine, f"ann reads patient.dat: "
               f"{engine.check_access(ann, 'read', 'patient.dat')}")

    print("\n--- 09:30: bob books the OR for his 2-hour slot ---")
    engine.advance_time(30 * 60)
    engine.add_active_role(bob, "Surgeon")
    at(engine, "bob activates Surgeon (expires after 2h)")
    engine.advance_time(2 * 3600 - 1)
    at(engine, f"11:29 Surgeon still active? "
               f"{'Surgeon' in engine.model.session_roles(bob)}")
    engine.advance_time(1)
    at(engine, f"11:30 Surgeon still active? "
               f"{'Surgeon' in engine.model.session_roles(bob)} "
               f"(PLUS event deactivated it)")

    print("\n--- 12:00: administrator tries to take both ward roles "
          "offline ---")
    engine.advance_time(30 * 60)
    engine.disable_role("Doctor")
    at(engine, "disable Doctor: OK")
    try:
        engine.disable_role("Nurse")
    except DeactivationDenied as exc:
        at(engine, f"disable Nurse: DENIED ({exc})")

    print("\n--- 18:00: outside the coverage interval ---")
    engine.advance_time(6 * 3600)
    engine.disable_role("Nurse")
    at(engine, "disable Nurse: OK (coverage SoD only binds 10:00-17:00)")

    print("\n--- 16:01: recap of the day's temporal events ---")
    counts = engine.audit.counts_by_kind()
    for kind in sorted(counts):
        if kind.startswith(("role.", "temporal.", "activation.")):
            print(f"  {kind}: {counts[kind]}")


if __name__ == "__main__":
    main()
