#!/usr/bin/env python3
"""Multi-org tenancy: one policy, one scope tree, many tenants.

Run:  python examples/multi_org_tenant.py

The S-A-O-C normalization threads a *scope* through every check:
``(Subject, Action, Object, Context-scope)``.  Scopes form a rooted
tree — ``platform ▸ org ▸ collection ▸ resource`` — and a grant (or an
assignment bound) at a scope covers that scope and every descendant.
Flat calls are unchanged sugar for the platform root, so a single
policy hosts many organisations without per-tenant role explosion:

* ``Auditor`` is granted ``read`` platform-wide (a flat grant);
* ``Editor`` is granted ``write`` only inside each org (scoped grants);
* dana's ``Editor`` assignment is *bounded* to ``acme`` — inside acme
  she edits, inside globex she is a stranger, and because bounded
  assignments never satisfy flat checks she cannot write "platform-wide"
  either.
"""

from repro import ActiveRBACEngine, parse_policy

POLICY = """
policy tenants {
  role Auditor; role Editor; role Admin;
  hierarchy Admin > Editor;

  scope acme;
  scope "acme/wiki" under acme;
  scope "acme/wiki/home" under "acme/wiki";
  scope globex;
  scope "globex/wiki" under globex;

  user rei; user dana; user kit;

  permission read on document;
  permission write on document;

  grant read on document to Auditor;
  grant write on document to Editor in acme;
  grant write on document to Editor in globex;

  assign rei to Auditor;
  assign dana to Editor in acme;
  assign kit to Admin;
}
"""


def show(engine: ActiveRBACEngine, sid: str, who: str, operation: str,
         obj: str, scope: str | None) -> None:
    where = "platform-wide" if scope is None else f"in {scope!r}"
    verdict = engine.check_access(sid, operation, obj, scope=scope)
    print(f"  {who} {operation}s {obj} {where}: {verdict}")


def main() -> None:
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))

    print("--- rei the Auditor: a flat grant covers every scope ---")
    rei = engine.create_session("rei", roles=("Auditor",))
    show(engine, rei, "rei", "read", "document", None)
    show(engine, rei, "rei", "read", "document", "acme/wiki/home")

    print("\n--- dana the acme Editor: bounded to one org ---")
    dana = engine.create_session("dana", roles=("Editor",))
    show(engine, dana, "dana", "write", "document", "acme")
    show(engine, dana, "dana", "write", "document", "acme/wiki/home")
    show(engine, dana, "dana", "write", "document", "globex/wiki")
    show(engine, dana, "dana", "write", "document", None)

    print("\n--- kit the Admin: unbounded, inherits Editor's scoped "
          "grants ---")
    kit = engine.create_session("kit", roles=("Admin",))
    show(engine, kit, "kit", "write", "document", "acme/wiki")
    show(engine, kit, "kit", "write", "document", "globex/wiki")

    print("\n--- provenance: why was dana denied in globex? ---")
    denial = engine.explain(dana, "write", "document", scope="globex/wiki")
    print(denial.describe())

    print("\n--- the kernel answered every scoped check ---")
    stats = engine.kernel().stats()
    print(f"  scopes interned: {stats['scopes']}, "
          f"scoped grants (closure-folded): {stats['scoped_grants']}, "
          f"bounded assignments: {stats['scope_limited_assignments']}")


if __name__ == "__main__":
    main()
