#!/usr/bin/env python3
"""Restart recovery: snapshot a live engine, restore, continue.

Run:  python examples/persistence_demo.py

An enforcement point crashes (or is upgraded) mid-day: sessions are
live, a surgeon's two-hour OR slot is half elapsed.  The snapshot
captures everything; the restored engine owes exactly the remaining
hour of the countdown and every decision continues as if nothing
happened.
"""

import json

from repro import ActiveRBACEngine, parse_policy
from repro.persistence import dumps, loads

POLICY = """
policy ward {
  role Surgeon; role Nurse;
  user bob; user nina;
  assign bob to Surgeon;
  assign nina to Nurse;
  permission operate on theatre;
  grant operate on theatre to Surgeon;
  duration Surgeon 7200;    # two-hour OR slots
}
"""


def main() -> None:
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    bob = engine.create_session("bob")
    engine.add_active_role(bob, "Surgeon")
    nina = engine.create_session("nina")
    engine.add_active_role(nina, "Nurse")
    print("bob activates Surgeon (2h slot); nina activates Nurse")

    engine.advance_time(3600)  # one hour into the slot
    print(f"t+1h: bob may operate: "
          f"{engine.check_access(bob, 'operate', 'theatre')}")

    blob = dumps(engine)
    print(f"\n-- enforcement point goes down; snapshot is "
          f"{len(blob)} bytes of JSON --")
    print("snapshot keys:", sorted(json.loads(blob).keys()))

    revived = loads(blob)
    print("\n-- restored --")
    print(f"sessions restored: {sorted(revived.model.sessions)}")
    print(f"bob may operate: "
          f"{revived.check_access(bob, 'operate', 'theatre')}")

    revived.advance_time(3599)
    print(f"t+1h59m59s: Surgeon still active: "
          f"{'Surgeon' in revived.model.session_roles(bob)}")
    revived.advance_time(1)
    print(f"t+2h exactly: Surgeon still active: "
          f"{'Surgeon' in revived.model.session_roles(bob)} "
          f"(the countdown owed only the remaining hour)")
    print(f"nina unaffected throughout: "
          f"{'Nurse' in revived.model.session_roles(nina)}")


if __name__ == "__main__":
    main()
