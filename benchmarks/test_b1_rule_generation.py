"""B1 — rule-pool scaling: "hundreds of roles ... thousands of rules".

Sweeps the number of roles and reports the generated rule-pool size and
generation time.  Expected shape (paper §1/§7): rules grow linearly in
roles with a per-role constant (here 5 core rules per role plus
constraint rules), so hundreds of roles indeed yield thousands of
rules.  The timed kernel is engine construction at 100 roles.
"""

from benchmarks._harness import report, timed

from repro import ActiveRBACEngine
from repro.workloads import EnterpriseShape, generate_enterprise

SWEEP = (10, 30, 100, 300, 1000)


def build(roles: int) -> ActiveRBACEngine:
    spec = generate_enterprise(EnterpriseShape(
        roles=roles, users=roles * 2, tree_fanout=4, tree_depth=3,
        ssd_sets=roles // 10, dsd_sets=roles // 10, seed=42))
    return ActiveRBACEngine(spec)


def test_b1_rule_pool_scales_linearly(benchmark):
    rows = []
    measured = {}
    for roles in SWEEP:
        elapsed, engine = timed(build, roles)
        pool = len(engine.rules)
        measured[roles] = pool
        rows.append((roles, pool, f"{pool / roles:.2f}",
                     len(engine.detector), f"{elapsed * 1e3:.1f}"))
    report(
        "B1", "rule generation vs number of roles",
        ("roles", "rules", "rules/role", "events", "gen time (ms)"),
        rows,
        notes="expected shape: linear, ~5-6 rules per role; hundreds "
              "of roles => thousands of rules (paper §1)",
    )
    # linear shape: rules/role ratio stable within 20% across the sweep
    ratios = [measured[r] / r for r in SWEEP]
    assert max(ratios) / min(ratios) < 1.2
    # the paper's headline: hundreds of roles -> thousands of rules
    assert measured[300] >= 1000

    benchmark(build, 100)
