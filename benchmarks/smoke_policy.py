#!/usr/bin/env python3
"""Policy-lifecycle smoke: config churn under live load, the guard
demo, and deterministic replay.

Two modes:

``python benchmarks/smoke_policy.py``
    The CI policy-churn gate, in-process:

    1. **churn** — one shard (seeded enterprise, WAL attached,
       decision journal on) serves a steady check stream while
       ``POLICY_CYCLES`` staged rollouts run end to end (stage →
       shadow canary → auto-promote → hold → settle).  Every
       promotion's swap pause (delta apply + eager kernel recompile +
       RCU publish, measured by the lifecycle itself) is collected and
       the p99 is gated on ``POLICY_SWAP_P99_BUDGET_MS``;
    2. **guard** — a divergent candidate (a grant the live traffic
       exercises is dropped) is staged under the same traffic; the
       shadow canary must refuse it, the live answers must never
       change while it is in flight (zero fail-open), and the active
       version must stay put;
    3. the report lands in ``benchmarks/results/BENCH_policy.json``.

``python benchmarks/smoke_policy.py --replay SEED``
    The CI replay-determinism matrix leg: drive a seeded traffic +
    rollout session into a WAL, then (a) replay it twice under the
    final pinned config version and require identical decision-stream
    digests with zero mismatches against the journaled live stream,
    and (b) re-assert the digest through the ``repro-rbac replay``
    CLI via ``--expect-digest``.

Budgets (override via env for known-noisy runners):

* ``POLICY_SWAP_P99_BUDGET_MS`` — churn-mode swap-pause p99 budget,
  default 100;
* ``POLICY_CYCLES`` — staged rollouts in the churn leg, default 30.

Exit status 0 when every gate passes.  Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_policy.py [--replay SEED]
"""

from __future__ import annotations

import copy
import json
import os
import pathlib
import random
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"

CYCLES = int(os.environ.get("POLICY_CYCLES", "30"))
SWAP_P99_BUDGET_MS = float(
    os.environ.get("POLICY_SWAP_P99_BUDGET_MS", "100"))
CANARY_MIN_SAMPLES = 20
HOLD_CHECKS = 40
STALL_GUARD = 200  # drive() rounds before declaring a cycle stuck


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def pct(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def build_stack(workdir: str):
    """One shard over a seeded enterprise with WAL + decision journal,
    rollout controller armed with the smoke budget."""
    from repro import ActiveRBACEngine
    from repro.config import RolloutBudget
    from repro.serve.shard import ShardRouter
    from repro.wal import Durability
    from repro.workloads import EnterpriseShape, generate_enterprise

    spec = generate_enterprise(EnterpriseShape(
        roles=24, users=40, tree_fanout=3, tree_depth=2,
        operations=3, objects=8, grants_per_role=2,
        ssd_sets=1, dsd_sets=1, seed=7))
    engine = ActiveRBACEngine(spec)
    engine.decision_journal = True
    durability = Durability(engine, workdir)
    router = ShardRouter()
    shard = router.add_shard("bench", engine, durability)
    lifecycle = shard.ensure_lifecycle(budget=RolloutBudget(
        min_samples=CANARY_MIN_SAMPLES, hold_checks=HOLD_CHECKS))
    lifecycle.adopt(1)
    return spec, engine, durability, shard, lifecycle


def toggle_probe(policy):
    """Next candidate spec: add or remove a probe role + grant that no
    live session ever activates — a real, regeneration-bearing delta
    whose promotion cannot change any served answer."""
    candidate = copy.deepcopy(policy)
    if "rollout_probe" in candidate.roles:
        candidate.roles.pop("rollout_probe")
        candidate.grants = [grant for grant in candidate.grants
                            if grant[0] != "rollout_probe"]
    else:
        candidate.add_role("rollout_probe")
        candidate.grants.append(("rollout_probe",
                                 *candidate.permissions[0]))
    return candidate


def churn_leg() -> dict:
    from repro.config import ConfigSet

    workdir = tempfile.mkdtemp(prefix="repro-policy-churn-")
    spec, engine, durability, shard, lifecycle = build_stack(workdir)
    rng = random.Random(11)
    users = sorted(spec.users)
    perms = list(spec.permissions)
    check_us: list[float] = []

    def drive(count: int) -> None:
        for _ in range(count):
            user = rng.choice(users)
            operation, obj = rng.choice(perms)
            start = time.perf_counter()
            shard.checked(user, operation, obj)
            check_us.append((time.perf_counter() - start) * 1e6)

    drive(50)  # warm sessions before the first stage

    pauses_ms: list[float] = []
    for cycle in range(CYCLES):
        version = engine.config_version + 1
        lifecycle.stage(ConfigSet.from_spec(
            toggle_probe(engine.policy), version))
        rounds = 0
        while engine.config_version != version:
            drive(10)
            rounds += 1
            if rounds > STALL_GUARD:
                fail(f"cycle {cycle}: v{version} never promoted "
                     f"(phase {lifecycle.status()['phase']})")
        pauses_ms.append(lifecycle.last_swap_ns / 1e6)
        while lifecycle.armed:  # drain the hold window to settled
            drive(10)
            rounds += 1
            if rounds > 2 * STALL_GUARD:
                fail(f"cycle {cycle}: hold never settled")
    if engine.config_version != 1 + CYCLES:
        fail(f"expected v{1 + CYCLES} active after {CYCLES} cycles, "
             f"got v{engine.config_version}")

    swap_p99_ms = pct(pauses_ms, 0.99)
    if swap_p99_ms > SWAP_P99_BUDGET_MS:
        fail(f"swap-pause p99 {swap_p99_ms:.2f} ms over the "
             f"{SWAP_P99_BUDGET_MS} ms budget")

    # -- guard demo: a divergent candidate must be refused ------------
    victim_role, victim_op, victim_obj = next(
        grant for grant in engine.policy.grants
        if any(role == grant[0] for _u, role in
               engine.policy.assignments))
    victim_user = next(user for user, role in engine.policy.assignments
                       if role == victim_role)
    before = shard.checked(victim_user, victim_op, victim_obj)
    if not before["allowed"]:
        fail(f"guard: seed grant {victim_role}/{victim_op}/"
             f"{victim_obj} did not serve a grant for {victim_user}")
    divergent = copy.deepcopy(engine.policy)
    divergent.grants.remove((victim_role, victim_op, victim_obj))
    staged_version = engine.config_version + 1
    lifecycle.stage(ConfigSet.from_spec(divergent, staged_version))
    rounds = 0
    while lifecycle.armed:
        live = shard.checked(victim_user, victim_op, victim_obj)
        if not live["allowed"]:
            fail("guard: live decision flipped while the divergent "
                 "candidate was only staged (fail-open)")
        rounds += 1
        if rounds > STALL_GUARD:
            fail("guard: canary never concluded")
    if engine.config_version != 1 + CYCLES:
        fail(f"guard: divergent v{staged_version} went live")
    if engine.config_candidate is not None:
        fail("guard: candidate survived the refusal")
    refused = lifecycle.status()["history"][-1]
    if refused.get("event") != "refuse" \
            or refused.get("version") != staged_version:
        fail(f"guard: expected a refuse transition, got {refused}")

    durability.close()
    return {
        "cycles": CYCLES,
        "checks": len(check_us),
        "final_version": engine.config_version,
        "check_us": {"p50": round(pct(check_us, 0.50), 1),
                     "p99": round(pct(check_us, 0.99), 1)},
        "swap_pause_ms": {"p50": round(pct(pauses_ms, 0.50), 3),
                          "p99": round(swap_p99_ms, 3),
                          "max": round(max(pauses_ms), 3)},
        "swap_p99_budget_ms": SWAP_P99_BUDGET_MS,
        "guard": {"staged": staged_version, "refused": True,
                  "reason": refused.get("reason"),
                  "fail_open_decisions": 0},
    }


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    report = churn_leg()
    RESULTS.mkdir(exist_ok=True)
    bench_path = RESULTS / "BENCH_policy.json"
    bench_path.write_text(json.dumps(report, indent=2, sort_keys=True)
                          + "\n")
    print(f"policy smoke OK: {report['cycles']} rollouts over "
          f"{report['checks']} live checks, swap-pause p99 "
          f"{report['swap_pause_ms']['p99']} ms "
          f"(budget {SWAP_P99_BUDGET_MS} ms), divergent candidate "
          f"refused with zero fail-open; report at {bench_path}")
    return 0


# -- replay determinism leg ---------------------------------------------------


def replay_main(seed: int) -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.cli import main as cli_main
    from repro.config import ConfigSet, replay_wal
    from repro.config.lifecycle import load_version

    workdir = tempfile.mkdtemp(prefix=f"repro-policy-replay{seed}-")
    spec, engine, durability, shard, lifecycle = build_stack(workdir)
    rng = random.Random(seed)
    users = sorted(spec.users)
    perms = list(spec.permissions)

    def drive(count: int) -> None:
        for _ in range(count):
            shard.checked(rng.choice(users), *rng.choice(perms))

    drive(40)
    for _ in range(3):  # three full rollout cycles land in the WAL
        version = engine.config_version + 1
        lifecycle.stage(ConfigSet.from_spec(
            toggle_probe(engine.policy), version))
        rounds = 0
        while lifecycle.armed:
            drive(10)
            rounds += 1
            if rounds > STALL_GUARD:
                fail(f"replay seed {seed}: rollout v{version} stuck")
    drive(40)
    durability.wal.sync()
    final = engine.config_version
    if final != 4:
        fail(f"replay seed {seed}: expected v4 active, got v{final}")

    config = load_version(workdir, final)
    first = replay_wal(workdir, config)
    second = replay_wal(workdir, config)
    if not first.digest or first.digest != second.digest:
        fail(f"replay seed {seed}: digests diverged "
             f"({first.digest} vs {second.digest})")
    if first.mismatches:
        fail(f"replay seed {seed}: {len(first.mismatches)} replayed "
             f"decision(s) contradict the journaled live stream")
    if first.gaps or first.torn:
        fail(f"replay seed {seed}: gaps={first.gaps} "
             f"torn={first.torn}")

    # the CLI must reproduce the same digest from the same artifacts
    status = cli_main(["replay", workdir,
                       "--config-version", str(final),
                       "--expect-digest", first.digest])
    if status != 0:
        fail(f"replay seed {seed}: CLI replay broke determinism "
             f"(exit {status})")
    print(f"policy replay OK (seed {seed}): {len(first.decisions)} "
          f"decisions under v{final}, digest {first.digest[:16]}… "
          f"stable across two replays and the CLI")
    return 0


if __name__ == "__main__":
    if "--replay" in sys.argv[1:]:
        index = sys.argv.index("--replay")
        raise SystemExit(replay_main(int(sys.argv[index + 1])))
    raise SystemExit(main())
