"""B7 — GTRBAC temporal constraint overhead.

(a) periodic role enabling: N roles with daily windows; advance one
simulated week and count enable/disable transitions and wall time;
(b) per-user-role duration constraints: N concurrent activations with
countdowns draining as time advances.  The timed kernel advances one
simulated day over 50 windowed roles.
"""

import time

from benchmarks._harness import report

from repro import ActiveRBACEngine
from repro.gtrbac.constraints import DurationConstraint, EnablingWindow
from repro.gtrbac.periodic import PeriodicInterval
from repro.policy.spec import PolicySpec

DAY = 86400.0


def windowed_policy(roles: int) -> PolicySpec:
    spec = PolicySpec(name="windows")
    interval = PeriodicInterval.daily("08:00", "16:00")
    for index in range(roles):
        name = f"W{index:03d}"
        spec.add_role(name)
        spec.enabling_windows.append(EnablingWindow(name, interval))
    return spec


def test_b7_periodic_enabling(benchmark):
    rows = []
    for roles in (10, 50, 200):
        engine = ActiveRBACEngine(windowed_policy(roles))
        start = time.perf_counter()
        engine.advance_time(7 * DAY)
        elapsed = (time.perf_counter() - start) * 1e3
        transitions = len(engine.audit.by_kind("role.enable")) + \
            len(engine.audit.by_kind("role.disable"))
        rows.append((roles, transitions, f"{elapsed:.1f}",
                     f"{elapsed / max(transitions, 1):.3f}"))
        # exactness: 7 days x 2 boundaries x roles
        assert transitions == 7 * 2 * roles
    report(
        "B7a", "periodic role enabling over one simulated week",
        ("windowed roles", "transitions", "total ms", "ms/transition"),
        rows,
        notes="expected shape: transitions = 14 x roles exactly; cost "
              "linear in transitions (timer wheel)",
    )

    engine = ActiveRBACEngine(windowed_policy(50))
    benchmark(engine.advance_time, DAY)


def test_b7_duration_drain(benchmark):
    rows = []
    for activations in (10, 100, 500):
        spec = PolicySpec(name="durations")
        spec.add_role("Shift")
        spec.durations.append(DurationConstraint("Shift", 3600.0))
        for index in range(activations):
            user = f"u{index:04d}"
            spec.add_user(user)
            spec.add_assignment(user, "Shift")
        engine = ActiveRBACEngine(spec)
        for index in range(activations):
            sid = engine.create_session(f"u{index:04d}")
            engine.add_active_role(sid, "Shift")
        assert engine.model.active_user_count("Shift") == activations
        start = time.perf_counter()
        engine.advance_time(3600.0)
        elapsed = (time.perf_counter() - start) * 1e3
        remaining = engine.model.active_user_count("Shift")
        rows.append((activations, remaining, f"{elapsed:.1f}"))
        assert remaining == 0
    report(
        "B7b", "duration-constraint drain (all countdowns expire)",
        ("activations", "remaining after delta", "drain ms"), rows,
        notes="expected shape: every activation deactivated exactly at "
              "t+delta; linear drain",
    )

    spec = PolicySpec(name="one")
    spec.add_role("Shift")
    spec.durations.append(DurationConstraint("Shift", 60.0))
    spec.add_user("u")
    spec.add_assignment("u", "Shift")
    engine = ActiveRBACEngine(spec)
    sid = engine.create_session("u")

    def activate_and_expire():
        engine.add_active_role(sid, "Shift")
        engine.advance_time(60.0)

    benchmark(activate_and_expire)
