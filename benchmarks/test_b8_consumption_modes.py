"""B8 — ablation: Snoop consumption modes under bursty streams.

The same SEQUENCE(E1, E2) composite is driven with a bursty stream
(many initiators per terminator) under each parameter context.
Reported: detections produced, retained (leaked) initiator buffer size,
and time.  Expected shape: RECENT retains O(1) and detects once per
terminator; CHRONICLE/CONTINUOUS consume; UNRESTRICTED retains all
initiators and detects quadratically — which is exactly why the
generated authorization rules default to RECENT.  The timed kernel is
the RECENT-mode burst.
"""

import time

from benchmarks._harness import report

from repro.clock import TimerService, VirtualClock
from repro.events import ConsumptionMode, EventDetector

BURSTS = 50
BURST_SIZE = 20  # E1s per E2


def drive(mode: ConsumptionMode):
    detector = EventDetector(TimerService(VirtualClock()))
    detector.define_primitive("E1")
    detector.define_primitive("E2")
    node = detector.define_sequence("S", "E1", "E2", mode=mode)
    detections = []
    detector.subscribe("S", detections.append)
    start = time.perf_counter()
    for _ in range(BURSTS):
        for _ in range(BURST_SIZE):
            detector.raise_event("E1")
        detector.raise_event("E2")
    elapsed = (time.perf_counter() - start) * 1e3
    retained = len(node._initiators)
    return len(detections), retained, elapsed


def test_b8_consumption_mode_ablation(benchmark):
    expected_detections = {
        ConsumptionMode.RECENT: BURSTS,                    # 1/terminator
        ConsumptionMode.CHRONICLE: BURSTS,                 # FIFO pair
        ConsumptionMode.CONTINUOUS: BURSTS * BURST_SIZE,   # all windows
        ConsumptionMode.CUMULATIVE: BURSTS,                # folded
        # every E2 pairs with every buffered E1 (buffer keeps growing)
        ConsumptionMode.UNRESTRICTED: sum(
            BURST_SIZE * i for i in range(1, BURSTS + 1)),
    }
    rows = []
    for mode in ConsumptionMode:
        detections, retained, elapsed = drive(mode)
        ok = detections == expected_detections[mode]
        rows.append((mode.value, detections, retained,
                     f"{elapsed:.1f}", "yes" if ok else "NO"))
        assert ok, (mode, detections, expected_detections[mode])
    report(
        "B8", "consumption-mode ablation: bursty SEQ(E1,E2) stream "
              f"({BURSTS} bursts x {BURST_SIZE} initiators)",
        ("mode", "detections", "retained buffer", "ms",
         "matches semantics"),
        rows,
        notes="RECENT (the default for authorization rules) is O(1) "
              "memory; UNRESTRICTED shows the quadratic blow-up the "
              "default avoids",
    )

    benchmark(drive, ConsumptionMode.RECENT)
