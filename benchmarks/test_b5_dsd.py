"""B5 — dynamic SoD enforcement cost vs constraint load.

Activation latency as the number of DSD sets (and the number of sets
mentioning the activated role) grows.  Expected shape: the SoD
registry's role index makes the check proportional to the sets
*containing the role*, not the total number of sets.  The timed kernel
is one activate/drop cycle under 50 relevant DSD sets.
"""

import time

from benchmarks._harness import report

from repro import ActiveRBACEngine
from repro.policy.spec import PolicySpec


def build(relevant_sets: int, irrelevant_sets: int) -> ActiveRBACEngine:
    spec = PolicySpec(name="dsd-bench")
    spec.add_role("Hot")
    # partners for relevant sets (each {Hot, partner_i})
    for index in range(relevant_sets):
        spec.add_role(f"P{index:03d}")
        spec.add_dsd(f"rel{index}", {"Hot", f"P{index:03d}"}, 2)
    # unrelated sets
    for index in range(irrelevant_sets):
        spec.add_role(f"Q{index:03d}a").add_role(f"Q{index:03d}b")
        spec.add_dsd(f"irr{index}", {f"Q{index:03d}a", f"Q{index:03d}b"}, 2)
    spec.add_user("u")
    spec.add_assignment("u", "Hot")
    return ActiveRBACEngine(spec)


def cycle_latency(engine: ActiveRBACEngine, sid: str,
                  cycles: int = 200) -> float:
    start = time.perf_counter()
    for _ in range(cycles):
        engine.add_active_role(sid, "Hot")
        engine.drop_active_role(sid, "Hot")
    return (time.perf_counter() - start) / cycles * 1e6  # us


def test_b5_dsd_activation_cost(benchmark):
    rows = []
    for relevant, irrelevant in ((0, 0), (5, 0), (50, 0),
                                 (5, 500), (50, 500)):
        engine = build(relevant, irrelevant)
        sid = engine.create_session("u")
        rows.append((relevant, irrelevant,
                     f"{cycle_latency(engine, sid):.1f}"))
    report(
        "B5", "activate+drop latency vs DSD constraint load",
        ("sets w/ role", "unrelated sets", "us/cycle"),
        rows,
        notes="expected shape: cost tracks the sets containing the "
              "role; 500 unrelated sets are ~free (role index)",
    )

    engine = build(50, 0)
    sid = engine.create_session("u")

    def cycle():
        engine.add_active_role(sid, "Hot")
        engine.drop_active_role(sid, "Hot")

    benchmark(cycle)


def test_b5_dsd_denial_correctness(benchmark):
    """The n-of-m semantics at scale: with a 3-of-10 set, exactly two
    of the set may be active simultaneously."""
    spec = PolicySpec(name="nofm")
    members = [f"M{i}" for i in range(10)]
    for role in members:
        spec.add_role(role)
    spec.add_dsd("big", set(members), 3)
    spec.add_user("u")
    for role in members:
        spec.add_assignment("u", role)
    engine = ActiveRBACEngine(spec)
    sid = engine.create_session("u")
    engine.add_active_role(sid, members[0])
    engine.add_active_role(sid, members[1])
    from repro.errors import DsdViolationError
    denied = 0
    for role in members[2:]:
        try:
            engine.add_active_role(sid, role)
        except DsdViolationError:
            denied += 1
    assert denied == 8
    report("B5b", "n-of-m DSD at the boundary",
           ("set size", "cardinality n", "active allowed", "denied"),
           [(10, 3, 2, denied)],
           notes="paper §2: active in fewer than N of M exclusive roles")

    def boundary_attempt():
        try:
            engine.add_active_role(sid, members[5])
        except DsdViolationError:
            pass

    benchmark(boundary_attempt)
