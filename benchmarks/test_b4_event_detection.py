"""B4 — composite event detection throughput per operator.

Measures the Sentinel+ substrate alone: events/second through each
Snoop operator (the paper's §3 algebra) and scaling with event-graph
fan-out.  Expected shape: OR/SEQ/AND are O(1) per occurrence under the
RECENT context; APERIODIC pays per open window; fan-out (one primitive
feeding N composites) scales linearly.  The timed kernel is one
SEQUENCE detection.
"""

import time

from benchmarks._harness import report

from repro.clock import TimerService, VirtualClock
from repro.events import EventDetector

EVENTS = 2000


def build_detector():
    detector = EventDetector(TimerService(VirtualClock()))
    for name in ("E1", "E2", "E3"):
        detector.define_primitive(name)
    return detector


def drive(detector, stream, repeats=1):
    start = time.perf_counter()
    for _ in range(repeats):
        for name in stream:
            detector.raise_event(name)
    elapsed = time.perf_counter() - start
    return len(stream) * repeats / elapsed  # events/s


def test_b4_operator_throughput(benchmark):
    rows = []
    operators = [
        ("baseline (no composite)", lambda d: None,
         ["E1", "E2"] * (EVENTS // 2)),
        ("OR(E1,E2)", lambda d: d.define_or("X", "E1", "E2"),
         ["E1", "E2"] * (EVENTS // 2)),
        ("AND(E1,E2)", lambda d: d.define_and("X", "E1", "E2"),
         ["E1", "E2"] * (EVENTS // 2)),
        ("SEQ(E1,E2)", lambda d: d.define_sequence("X", "E1", "E2"),
         ["E1", "E2"] * (EVENTS // 2)),
        ("NOT(E1,E2,E3)", lambda d: d.define_not("X", "E1", "E2", "E3"),
         ["E1", "E3"] * (EVENTS // 2)),
        ("APERIODIC(E1,E2,E3)",
         lambda d: d.define_aperiodic("X", "E1", "E2", "E3"),
         ["E1"] + ["E2"] * (EVENTS - 2) + ["E3"]),
        ("A*(E1,E2,E3)",
         lambda d: d.define_aperiodic_star("X", "E1", "E2", "E3"),
         ["E1"] + ["E2"] * (EVENTS - 2) + ["E3"]),
    ]
    for label, define, stream in operators:
        detector = build_detector()
        define(detector)
        detections = []
        if "X" in detector:
            detector.subscribe("X", detections.append)
        rate = drive(detector, stream)
        rows.append((label, f"{rate / 1e3:.0f}k", len(detections)))
    report(
        "B4a", "per-operator throughput (2000-event streams)",
        ("operator", "events/s", "detections"),
        rows,
        notes="expected shape: all operators within a small factor of "
              "the bare-dispatch baseline under the RECENT context",
    )

    # fan-out scaling: one primitive feeding N OR nodes
    fanout_rows = []
    for fanout in (1, 4, 16, 64):
        detector = build_detector()
        for index in range(fanout):
            detector.define_or(f"X{index}", "E1", "E2")
        rate = drive(detector, ["E1"] * 500)
        fanout_rows.append((fanout, f"{rate / 1e3:.0f}k"))
    report(
        "B4b", "fan-out scaling: one primitive feeding N composites",
        ("fan-out", "events/s"), fanout_rows,
        notes="expected shape: throughput ~ 1/fan-out (linear work "
              "per subscriber)",
    )

    detector = build_detector()
    detector.define_sequence("S", "E1", "E2")

    def seq_pair():
        detector.raise_event("E1")
        detector.raise_event("E2")

    benchmark(seq_pair)


def test_b4_temporal_operator_exactness(benchmark):
    """PLUS/PERIODIC under bulk time advancement: N pending countdowns."""
    rows = []
    for pending in (10, 100, 1000):
        detector = build_detector()
        detector.define_plus("P", "E1", 100.0)
        fired = []
        detector.subscribe("P", fired.append)
        for _ in range(pending):
            detector.raise_event("E1")
        start = time.perf_counter()
        detector.advance_time(100.0)
        elapsed = time.perf_counter() - start
        rows.append((pending, len(fired), f"{elapsed * 1e3:.2f}"))
        assert len(fired) == pending
    report(
        "B4c", "PLUS countdown drain: N pending timers",
        ("pending", "fired", "drain ms"), rows,
        notes="expected shape: linear drain, every countdown fires "
              "exactly once at t+delta",
    )

    detector = build_detector()
    detector.define_plus("P", "E1", 10.0)

    def arm_and_fire():
        detector.raise_event("E1")
        detector.advance_time(10.0)

    benchmark(arm_and_fire)
