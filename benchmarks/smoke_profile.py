#!/usr/bin/env python3
"""Benchmark smoke: bound the pipeline's wrapper costs on the B3 hot path.

Runs the B3 check-access kernel (one session, one active role, repeated
``check_access``) on the same engine in two on/off comparisons:

* **observability** — hub enabled (metrics default-on) vs disabled;
  budget 10% (``OBS_OVERHEAD_BUDGET`` env var overrides);
* **fault containment** — ``rules.containment`` on (deadline probes +
  the fail-closed except path, the production default) vs off (the raw
  seed behaviour); the kernel is fault-free, so this measures the
  wrappers alone.  Budget 5% (``CONTAINMENT_OVERHEAD_BUDGET``);
* **write-ahead log** — a :class:`repro.wal.Durability` attached vs
  detached.  ``check_access`` commits nothing, so a fault-free B3
  check never appends — this comparison bounds the hook probes
  themselves and polices WAL work creeping onto the read path.
  Budget 8% (``WAL_OVERHEAD_BUDGET``).

Plus two *decision-plane* comparisons (``engine.kernel_enabled`` on vs
off, i.e. compiled PolicyKernel vs interpreted OWTE pipeline):

* **static-heavy workload** — pure repeated checks; the kernel must be
  at least 2x faster than the interpreted pipeline
  (``KERNEL_SPEEDUP_MIN``) or the compile is not paying for itself;
* **policy-mutation round** — grant + checks + revoke + checks; every
  mutation bumps the policy epoch and forces a lazy recompile, so this
  bounds the compile cost amortized over a realistic round.  The
  kernel may cost at most 5% over interpreted here
  (``KERNEL_MUTATION_OVERHEAD_BUDGET``).

Both kernel verdicts (and their raw numbers) are also written to
``benchmarks/results/BENCH_kernel.json`` for CI and EXPERIMENTS.md.
``--kernel-only`` skips the wrapper-cost legs and runs just the two
decision-plane comparisons.

Plus one *provenance* comparison (``engine.flight.enabled`` on vs off
with the kernel path live): the flight-recorder ring append on every
decision may cost at most 3% (``PROVENANCE_OVERHEAD_BUDGET``) over a
recorder-free check.  Written to
``benchmarks/results/BENCH_provenance.json``; ``--provenance-only``
runs just this leg (the CI gate).

Measurement methodology (shared machines drift by 2-3x mid-run, so a
naive all-enabled-then-all-disabled comparison measures the load shift,
not the instrumentation):

* **short rounds** — each timed round is ~50 checks (~1.5 ms), shorter
  than a scheduler quantum, so the per-state *minimum* comes from a
  genuinely unpreempted window;
* **interleaving** — states alternate every round, so both states
  sample the same load conditions across the run;
* **two estimators** — the min-vs-min gap and the median of adjacent
  per-pair gaps.  Both converge on the true gap; their disagreement is
  noise, so the smaller one is used (a real regression moves both);
* **one retry** — a failing verdict is re-measured once with double
  the rounds before failing the job.

Exit status 0 when every comparison is within budget, 1 otherwise.
Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_profile.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))  # for _harness

from _harness import profiled  # noqa: E402

from repro import ActiveRBACEngine  # noqa: E402
from repro.wal import Durability  # noqa: E402
from repro.workloads import EnterpriseShape, generate_enterprise  # noqa: E402

CHECKS = 50         # checkAccess calls per timed round (sub-quantum)
ROUNDS = 120        # alternating on/off round pairs
MUTATION_CHECKS = 200   # checks after each mutation in a mutation round
MUTATION_ROUNDS = 40    # alternating on/off mutation round pairs
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def build_engine() -> tuple[ActiveRBACEngine, str, str, str]:
    spec = generate_enterprise(EnterpriseShape(
        roles=100, users=100, tree_depth=2, tree_fanout=3, seed=13))
    engine = ActiveRBACEngine(spec)
    user, role = engine.policy.assignments[0]
    sid = engine.create_session(user)
    engine.add_active_role(sid, role)
    operation, obj = engine.policy.permissions[0]
    return engine, sid, operation, obj


def kernel(engine, sid, operation, obj, checks: int = CHECKS) -> None:
    for _ in range(checks):
        engine.check_access(sid, operation, obj)


def set_obs(engine, on: bool) -> None:
    engine.obs.enabled = on


def set_containment(engine, on: bool) -> None:
    engine.rules.containment = on


def set_kernel(engine, on: bool) -> None:
    engine.kernel_enabled = on


def set_flight(engine, on: bool) -> None:
    engine.flight.enabled = on


def timed_round(engine, sid, operation, obj, set_state, on: bool) -> float:
    """One short kernel round in the given state, in us/check."""
    set_state(engine, on)
    start = time.perf_counter_ns()
    kernel(engine, sid, operation, obj)
    return (time.perf_counter_ns() - start) / CHECKS / 1000


def measure_overhead(engine, sid, operation, obj, set_state,
                     rounds: int = ROUNDS) -> tuple[float, float, float]:
    """Interleaved rounds -> (on_us, off_us, overhead)."""
    timed_round(engine, sid, operation, obj, set_state, True)  # warm both
    timed_round(engine, sid, operation, obj, set_state, False)
    on_times, off_times = [], []
    for _ in range(rounds):
        on_times.append(
            timed_round(engine, sid, operation, obj, set_state, True))
        off_times.append(
            timed_round(engine, sid, operation, obj, set_state, False))
    set_state(engine, True)  # leave the engine in the production state
    base = min(off_times)
    gap_minmin = min(on_times) - base
    gap_paired = statistics.median(
        on - off for on, off in zip(on_times, off_times))
    gap = min(gap_minmin, gap_paired)
    return base + gap, base, gap / base


def check_budget(engine, sid, operation, obj, set_state,
                 label: str, budget: float) -> bool:
    """Measure one on/off comparison against its budget, retrying once."""
    for attempt, rounds in enumerate((ROUNDS, ROUNDS * 2)):
        on_us, off_us, overhead = measure_overhead(
            engine, sid, operation, obj, set_state, rounds)
        print(f"B3 checkAccess hot path [{label}]: on {on_us:.2f} "
              f"us/op, off {off_us:.2f} us/op -> overhead "
              f"{overhead:+.1%} (budget {budget:.0%})")
        if overhead <= budget:
            return True
        if attempt == 0:
            print("over budget; re-measuring with more rounds...")
    return False


def measure_kernel_speedup(engine, sid, operation, obj,
                           rounds: int = ROUNDS
                           ) -> tuple[float, float, float]:
    """Interleaved kernel-on/off rounds -> (on_us, off_us, speedup).

    Same two-estimator discipline as :func:`measure_overhead`, but the
    verdict is a *speedup* (off/on), so the conservative pick is the
    smaller estimate.
    """
    timed_round(engine, sid, operation, obj, set_kernel, True)  # warm
    timed_round(engine, sid, operation, obj, set_kernel, False)
    on_times, off_times = [], []
    for _ in range(rounds):
        on_times.append(
            timed_round(engine, sid, operation, obj, set_kernel, True))
        off_times.append(
            timed_round(engine, sid, operation, obj, set_kernel, False))
    set_kernel(engine, True)
    on_us, off_us = min(on_times), min(off_times)
    speedup_minmin = off_us / on_us
    speedup_paired = statistics.median(
        off / on for on, off in zip(on_times, off_times))
    return on_us, off_us, min(speedup_minmin, speedup_paired)


def _spare_grant(engine) -> tuple[str, str, str]:
    """A (role, operation, obj) the policy does not already grant, so a
    grant/revoke pair leaves the engine exactly where it started."""
    role = engine.policy.assignments[0][1]
    held = {(p.operation, p.obj)
            for p in engine.model.role_permissions(role)}
    for operation, obj in engine.policy.permissions:
        if (operation, obj) not in held:
            return role, operation, obj
    raise RuntimeError("no spare permission for the mutation round")


def timed_mutation_round(engine, sid, operation, obj, grant,
                         on: bool) -> float:
    """One policy-mutation round in the given kernel state, in us.

    grant -> checks -> revoke -> checks: each mutation bumps the policy
    epoch, so with the kernel on the first check after it pays a lazy
    recompile.  The round time therefore bounds compile cost amortized
    over a realistic mutate-then-serve cycle.
    """
    set_kernel(engine, on)
    g_role, g_op, g_obj = grant
    start = time.perf_counter_ns()
    engine.grant_permission(g_role, g_op, g_obj)
    kernel(engine, sid, operation, obj, MUTATION_CHECKS)
    engine.revoke_permission(g_role, g_op, g_obj)
    kernel(engine, sid, operation, obj, MUTATION_CHECKS)
    return (time.perf_counter_ns() - start) / 1000


def measure_mutation_overhead(engine, sid, operation, obj,
                              rounds: int = MUTATION_ROUNDS
                              ) -> tuple[float, float, float]:
    """Interleaved mutation rounds -> (on_us, off_us, overhead)."""
    grant = _spare_grant(engine)
    timed_mutation_round(engine, sid, operation, obj, grant, True)
    timed_mutation_round(engine, sid, operation, obj, grant, False)
    on_times, off_times = [], []
    for _ in range(rounds):
        on_times.append(timed_mutation_round(
            engine, sid, operation, obj, grant, True))
        off_times.append(timed_mutation_round(
            engine, sid, operation, obj, grant, False))
    set_kernel(engine, True)
    base = min(off_times)
    gap_minmin = min(on_times) - base
    gap_paired = statistics.median(
        on - off for on, off in zip(on_times, off_times))
    gap = min(gap_minmin, gap_paired)
    return base + gap, base, gap / base


def check_kernel(engine, sid, operation, obj,
                 speedup_min: float, mutation_budget: float) -> bool:
    """The two decision-plane verdicts + BENCH_kernel.json emission."""
    ok = True
    result: dict[str, object] = {
        "workload": "B3 checkAccess, 100 roles / 100 users, depth 2",
        "checks_per_round": CHECKS,
    }

    for attempt, rounds in enumerate((ROUNDS, ROUNDS * 2)):
        on_us, off_us, speedup = measure_kernel_speedup(
            engine, sid, operation, obj, rounds)
        print(f"B3 checkAccess hot path [policy kernel]: compiled "
              f"{on_us:.2f} us/op, interpreted {off_us:.2f} us/op -> "
              f"speedup {speedup:.2f}x (minimum {speedup_min:.1f}x)")
        if speedup >= speedup_min:
            break
        if attempt == 0:
            print("under the floor; re-measuring with more rounds...")
    else:
        print("FAIL: kernel speedup under the floor on a static-heavy "
              "workload", file=sys.stderr)
        ok = False
    result["static"] = {
        "kernel_us_per_check": round(on_us, 3),
        "interpreted_us_per_check": round(off_us, 3),
        "speedup": round(speedup, 2),
        "speedup_min": speedup_min,
        "pass": speedup >= speedup_min,
    }

    for attempt, rounds in enumerate((MUTATION_ROUNDS,
                                      MUTATION_ROUNDS * 2)):
        mut_on, mut_off, overhead = measure_mutation_overhead(
            engine, sid, operation, obj, rounds)
        print(f"policy-mutation round [policy kernel]: compiled "
              f"{mut_on:.0f} us, interpreted {mut_off:.0f} us -> "
              f"overhead {overhead:+.1%} "
              f"(budget {mutation_budget:.0%})")
        if overhead <= mutation_budget:
            break
        if attempt == 0:
            print("over budget; re-measuring with more rounds...")
    else:
        print("FAIL: kernel recompiles exceed the mutation-round "
              "budget", file=sys.stderr)
        ok = False
    result["mutation_round"] = {
        "checks_per_mutation": MUTATION_CHECKS,
        "kernel_us_per_round": round(mut_on, 1),
        "interpreted_us_per_round": round(mut_off, 1),
        "overhead": round(overhead, 4),
        "budget": mutation_budget,
        "pass": overhead <= mutation_budget,
    }

    result["kernel_build_us"] = round(engine.kernel().build_ns / 1000, 1)
    result["pass"] = ok
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_kernel.json"
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return ok


def check_provenance(engine, sid, operation, obj,
                     budget: float) -> bool:
    """Flight-recorder on/off on the kernel path + BENCH_provenance.json.

    The kernel fast path is the cheapest check in the system, so the
    flight-recorder tuple append is proportionally at its worst here —
    if it fits the budget on this path it fits everywhere.
    """
    set_kernel(engine, True)
    ok = True
    for attempt, rounds in enumerate((ROUNDS, ROUNDS * 2)):
        on_us, off_us, overhead = measure_overhead(
            engine, sid, operation, obj, set_flight, rounds)
        print(f"B3 checkAccess hot path [flight recorder]: on "
              f"{on_us:.2f} us/op, off {off_us:.2f} us/op -> overhead "
              f"{overhead:+.1%} (budget {budget:.0%})")
        if overhead <= budget:
            break
        if attempt == 0:
            print("over budget; re-measuring with more rounds...")
    else:
        print("FAIL: flight-recorder overhead exceeds the provenance "
              "budget", file=sys.stderr)
        ok = False
    result = {
        "workload": "B3 checkAccess, 100 roles / 100 users, depth 2, "
                    "kernel path",
        "checks_per_round": CHECKS,
        "flight_on_us_per_check": round(on_us, 3),
        "flight_off_us_per_check": round(off_us, 3),
        "overhead": round(overhead, 4),
        "budget": budget,
        "capacity": engine.flight.capacity,
        "pass": ok,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_provenance.json"
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernel-only", action="store_true",
                        help="run only the decision-plane comparisons "
                             "(kernel speedup + mutation-round budget)")
    parser.add_argument("--provenance-only", action="store_true",
                        help="run only the flight-recorder overhead "
                             "comparison on the kernel path")
    args = parser.parse_args(argv)
    obs_budget = float(os.environ.get("OBS_OVERHEAD_BUDGET", "0.10"))
    containment_budget = float(
        os.environ.get("CONTAINMENT_OVERHEAD_BUDGET", "0.05"))
    wal_budget = float(os.environ.get("WAL_OVERHEAD_BUDGET", "0.08"))
    speedup_min = float(os.environ.get("KERNEL_SPEEDUP_MIN", "2.0"))
    mutation_budget = float(
        os.environ.get("KERNEL_MUTATION_OVERHEAD_BUDGET", "0.05"))
    provenance_budget = float(
        os.environ.get("PROVENANCE_OVERHEAD_BUDGET", "0.03"))
    engine, sid, operation, obj = build_engine()

    if args.provenance_only:
        engine.obs.enabled = True
        ok = check_provenance(engine, sid, operation, obj,
                              provenance_budget)
        if ok:
            print("OK")
        return 0 if ok else 1

    if args.kernel_only:
        engine.obs.enabled = True
        ok = check_kernel(engine, sid, operation, obj,
                          speedup_min, mutation_budget)
        if ok:
            print("OK")
        return 0 if ok else 1

    engine.obs.enabled = True
    prof, _ = profiled(kernel, engine, sid, operation, obj,
                       registry=engine.obs.metrics,
                       label="B3 hot path (instrumented)")
    print(prof.report())
    print()

    ok = True
    if not check_budget(engine, sid, operation, obj, set_obs,
                        "obs hub", obs_budget):
        print("FAIL: instrumentation overhead exceeds budget",
              file=sys.stderr)
        ok = False

    # containment is measured with the hub in its default-on state so
    # the comparison isolates the containment wrappers alone
    engine.obs.enabled = True
    if not check_budget(engine, sid, operation, obj, set_containment,
                        "fault containment", containment_budget):
        print("FAIL: containment overhead exceeds budget", file=sys.stderr)
        ok = False

    # WAL: attached vs detached on the same engine.  The fault-free
    # check kernel commits nothing, so no records are appended — the
    # budget bounds the engine.wal hook probes and fails the job if
    # anyone ever puts an append on the check path.
    engine.obs.enabled = True
    wal_dir = tempfile.mkdtemp(prefix="smoke-wal-")
    durability = Durability(engine, wal_dir, batch_size=64)

    def set_wal(engine, on: bool) -> None:
        engine.wal = durability if on else None

    try:
        if not check_budget(engine, sid, operation, obj, set_wal,
                            "write-ahead log", wal_budget):
            print("FAIL: WAL overhead exceeds budget", file=sys.stderr)
            ok = False
    finally:
        durability.close()
        shutil.rmtree(wal_dir, ignore_errors=True)

    engine.obs.enabled = True
    if not check_kernel(engine, sid, operation, obj,
                        speedup_min, mutation_budget):
        ok = False

    engine.obs.enabled = True
    if not check_provenance(engine, sid, operation, obj,
                            provenance_budget):
        ok = False

    if ok:
        print("OK")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
