#!/usr/bin/env python3
"""Benchmark smoke: bound the pipeline's wrapper costs on the B3 hot path.

Runs the B3 check-access kernel (one session, one active role, repeated
``check_access``) on the same engine in two on/off comparisons:

* **observability** — hub enabled (metrics default-on) vs disabled;
  budget 10% (``OBS_OVERHEAD_BUDGET`` env var overrides);
* **fault containment** — ``rules.containment`` on (deadline probes +
  the fail-closed except path, the production default) vs off (the raw
  seed behaviour); the kernel is fault-free, so this measures the
  wrappers alone.  Budget 5% (``CONTAINMENT_OVERHEAD_BUDGET``);
* **write-ahead log** — a :class:`repro.wal.Durability` attached vs
  detached.  ``check_access`` commits nothing, so a fault-free B3
  check never appends — this comparison bounds the hook probes
  themselves and polices WAL work creeping onto the read path.
  Budget 8% (``WAL_OVERHEAD_BUDGET``).

Measurement methodology (shared machines drift by 2-3x mid-run, so a
naive all-enabled-then-all-disabled comparison measures the load shift,
not the instrumentation):

* **short rounds** — each timed round is ~50 checks (~1.5 ms), shorter
  than a scheduler quantum, so the per-state *minimum* comes from a
  genuinely unpreempted window;
* **interleaving** — states alternate every round, so both states
  sample the same load conditions across the run;
* **two estimators** — the min-vs-min gap and the median of adjacent
  per-pair gaps.  Both converge on the true gap; their disagreement is
  noise, so the smaller one is used (a real regression moves both);
* **one retry** — a failing verdict is re-measured once with double
  the rounds before failing the job.

Exit status 0 when every comparison is within budget, 1 otherwise.
Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_profile.py
"""

from __future__ import annotations

import os
import shutil
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))  # for _harness

from _harness import profiled  # noqa: E402

from repro import ActiveRBACEngine  # noqa: E402
from repro.wal import Durability  # noqa: E402
from repro.workloads import EnterpriseShape, generate_enterprise  # noqa: E402

CHECKS = 50         # checkAccess calls per timed round (sub-quantum)
ROUNDS = 120        # alternating on/off round pairs


def build_engine() -> tuple[ActiveRBACEngine, str, str, str]:
    spec = generate_enterprise(EnterpriseShape(
        roles=100, users=100, tree_depth=2, tree_fanout=3, seed=13))
    engine = ActiveRBACEngine(spec)
    user, role = engine.policy.assignments[0]
    sid = engine.create_session(user)
    engine.add_active_role(sid, role)
    operation, obj = engine.policy.permissions[0]
    return engine, sid, operation, obj


def kernel(engine, sid, operation, obj, checks: int = CHECKS) -> None:
    for _ in range(checks):
        engine.check_access(sid, operation, obj)


def set_obs(engine, on: bool) -> None:
    engine.obs.enabled = on


def set_containment(engine, on: bool) -> None:
    engine.rules.containment = on


def timed_round(engine, sid, operation, obj, set_state, on: bool) -> float:
    """One short kernel round in the given state, in us/check."""
    set_state(engine, on)
    start = time.perf_counter_ns()
    kernel(engine, sid, operation, obj)
    return (time.perf_counter_ns() - start) / CHECKS / 1000


def measure_overhead(engine, sid, operation, obj, set_state,
                     rounds: int = ROUNDS) -> tuple[float, float, float]:
    """Interleaved rounds -> (on_us, off_us, overhead)."""
    timed_round(engine, sid, operation, obj, set_state, True)  # warm both
    timed_round(engine, sid, operation, obj, set_state, False)
    on_times, off_times = [], []
    for _ in range(rounds):
        on_times.append(
            timed_round(engine, sid, operation, obj, set_state, True))
        off_times.append(
            timed_round(engine, sid, operation, obj, set_state, False))
    set_state(engine, True)  # leave the engine in the production state
    base = min(off_times)
    gap_minmin = min(on_times) - base
    gap_paired = statistics.median(
        on - off for on, off in zip(on_times, off_times))
    gap = min(gap_minmin, gap_paired)
    return base + gap, base, gap / base


def check_budget(engine, sid, operation, obj, set_state,
                 label: str, budget: float) -> bool:
    """Measure one on/off comparison against its budget, retrying once."""
    for attempt, rounds in enumerate((ROUNDS, ROUNDS * 2)):
        on_us, off_us, overhead = measure_overhead(
            engine, sid, operation, obj, set_state, rounds)
        print(f"B3 checkAccess hot path [{label}]: on {on_us:.2f} "
              f"us/op, off {off_us:.2f} us/op -> overhead "
              f"{overhead:+.1%} (budget {budget:.0%})")
        if overhead <= budget:
            return True
        if attempt == 0:
            print("over budget; re-measuring with more rounds...")
    return False


def main() -> int:
    obs_budget = float(os.environ.get("OBS_OVERHEAD_BUDGET", "0.10"))
    containment_budget = float(
        os.environ.get("CONTAINMENT_OVERHEAD_BUDGET", "0.05"))
    wal_budget = float(os.environ.get("WAL_OVERHEAD_BUDGET", "0.08"))
    engine, sid, operation, obj = build_engine()

    engine.obs.enabled = True
    prof, _ = profiled(kernel, engine, sid, operation, obj,
                       registry=engine.obs.metrics,
                       label="B3 hot path (instrumented)")
    print(prof.report())
    print()

    ok = True
    if not check_budget(engine, sid, operation, obj, set_obs,
                        "obs hub", obs_budget):
        print("FAIL: instrumentation overhead exceeds budget",
              file=sys.stderr)
        ok = False

    # containment is measured with the hub in its default-on state so
    # the comparison isolates the containment wrappers alone
    engine.obs.enabled = True
    if not check_budget(engine, sid, operation, obj, set_containment,
                        "fault containment", containment_budget):
        print("FAIL: containment overhead exceeds budget", file=sys.stderr)
        ok = False

    # WAL: attached vs detached on the same engine.  The fault-free
    # check kernel commits nothing, so no records are appended — the
    # budget bounds the engine.wal hook probes and fails the job if
    # anyone ever puts an append on the check path.
    engine.obs.enabled = True
    wal_dir = tempfile.mkdtemp(prefix="smoke-wal-")
    durability = Durability(engine, wal_dir, batch_size=64)

    def set_wal(engine, on: bool) -> None:
        engine.wal = durability if on else None

    try:
        if not check_budget(engine, sid, operation, obj, set_wal,
                            "write-ahead log", wal_budget):
            print("FAIL: WAL overhead exceeds budget", file=sys.stderr)
            ok = False
    finally:
        durability.close()
        shutil.rmtree(wal_dir, ignore_errors=True)

    if ok:
        print("OK")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
