#!/usr/bin/env python3
"""Benchmark smoke: bound instrumentation overhead on the B3 hot path.

Runs the B3 check-access kernel (one session, one active role, repeated
``check_access``) on the same engine in both observability states —
hub enabled (metrics default-on) and disabled — and asserts the
enabled/disabled overhead stays under the budget (default 10%,
``OBS_OVERHEAD_BUDGET`` env var overrides).

Measurement methodology (shared machines drift by 2-3x mid-run, so a
naive all-enabled-then-all-disabled comparison measures the load shift,
not the instrumentation):

* **short rounds** — each timed round is ~50 checks (~1.5 ms), shorter
  than a scheduler quantum, so the per-state *minimum* comes from a
  genuinely unpreempted window;
* **interleaving** — states alternate every round, so both states
  sample the same load conditions across the run;
* **two estimators** — the min-vs-min gap and the median of adjacent
  per-pair gaps.  Both converge on the true gap; their disagreement is
  noise, so the smaller one is used (a real regression moves both);
* **one retry** — a failing verdict is re-measured once with double
  the rounds before failing the job.

Exit status 0 when within budget, 1 otherwise.  Run from the repo
root::

    PYTHONPATH=src python benchmarks/smoke_profile.py
"""

from __future__ import annotations

import os
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))  # for _harness

from _harness import profiled  # noqa: E402

from repro import ActiveRBACEngine  # noqa: E402
from repro.workloads import EnterpriseShape, generate_enterprise  # noqa: E402

CHECKS = 50         # checkAccess calls per timed round (sub-quantum)
ROUNDS = 120        # alternating enabled/disabled round pairs


def build_engine() -> tuple[ActiveRBACEngine, str, str, str]:
    spec = generate_enterprise(EnterpriseShape(
        roles=100, users=100, tree_depth=2, tree_fanout=3, seed=13))
    engine = ActiveRBACEngine(spec)
    user, role = engine.policy.assignments[0]
    sid = engine.create_session(user)
    engine.add_active_role(sid, role)
    operation, obj = engine.policy.permissions[0]
    return engine, sid, operation, obj


def kernel(engine, sid, operation, obj, checks: int = CHECKS) -> None:
    for _ in range(checks):
        engine.check_access(sid, operation, obj)


def timed_round(engine, sid, operation, obj, enabled: bool) -> float:
    """One short kernel round in the given hub state, in us/check."""
    engine.obs.enabled = enabled
    start = time.perf_counter_ns()
    kernel(engine, sid, operation, obj)
    return (time.perf_counter_ns() - start) / CHECKS / 1000


def measure_overhead(engine, sid, operation, obj,
                     rounds: int = ROUNDS) -> tuple[float, float, float]:
    """Interleaved rounds -> (enabled_us, disabled_us, overhead)."""
    timed_round(engine, sid, operation, obj, True)    # warm both states
    timed_round(engine, sid, operation, obj, False)
    enabled, disabled = [], []
    for _ in range(rounds):
        enabled.append(timed_round(engine, sid, operation, obj, True))
        disabled.append(timed_round(engine, sid, operation, obj, False))
    base = min(disabled)
    gap_minmin = min(enabled) - base
    gap_paired = statistics.median(e - d for e, d in zip(enabled, disabled))
    gap = min(gap_minmin, gap_paired)
    return base + gap, base, gap / base


def main() -> int:
    budget = float(os.environ.get("OBS_OVERHEAD_BUDGET", "0.10"))
    engine, sid, operation, obj = build_engine()

    engine.obs.enabled = True
    prof, _ = profiled(kernel, engine, sid, operation, obj,
                       registry=engine.obs.metrics,
                       label="B3 hot path (instrumented)")
    print(prof.report())
    print()

    for attempt, rounds in enumerate((ROUNDS, ROUNDS * 2)):
        enabled_us, disabled_us, overhead = measure_overhead(
            engine, sid, operation, obj, rounds)
        print(f"B3 checkAccess hot path: instrumented {enabled_us:.2f} "
              f"us/op, bare {disabled_us:.2f} us/op -> overhead "
              f"{overhead:+.1%} (budget {budget:.0%})")
        if overhead <= budget:
            print("OK")
            return 0
        if attempt == 0:
            print("over budget; re-measuring with more rounds...")
    print("FAIL: instrumentation overhead exceeds budget", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
