"""R1-R9 — the paper's worked rules, executed end to end.

Each scenario from Sections 3-4 runs against a fresh engine and reports
its observed outcome next to the paper's stated behaviour.  The timed
kernel replays all nine scenarios.
"""

from benchmarks._harness import report

from repro import ActiveRBACEngine, parse_policy
from repro.clock import TimerService, VirtualClock
from repro.errors import (
    AccessDenied,
    ActivationDenied,
    CardinalityExceeded,
    DeactivationDenied,
    PrerequisiteNotMetError,
)
from repro.events import EventDetector
from repro.rules import RuleManager
from repro.rules.rule import Action, Condition, OWTERule


def rule1_simple_event():
    detector = EventDetector(TimerService(VirtualClock()))
    manager = RuleManager(detector)
    detector.define_primitive("vi")
    opened = []
    manager.add(OWTERule(
        name="R_1", event="vi",
        conditions=[Condition("checkaccess", lambda ctx:
                              ctx.get("user") == "Bob")],
        actions=[Action("open", lambda ctx: opened.append(1))],
        alt_actions=[Action("deny", lambda ctx: (_ for _ in ()).throw(
            AccessDenied("insufficient privileges")))],
    ))
    detector.raise_event("vi", user="Bob", file="patient.dat")
    denied = False
    try:
        detector.raise_event("vi", user="Mallory", file="patient.dat")
    except AccessDenied:
        denied = True
    return opened == [1] and denied


def rule2_plus_close():
    detector = EventDetector(TimerService(VirtualClock()))
    manager = RuleManager(detector)
    detector.define_primitive("E1")
    detector.define_plus("E2", "E1", 7200)
    closed = []
    manager.add(OWTERule(name="C_1", event="E2",
                         actions=[Action("Closefile",
                                         lambda ctx: closed.append(1))]))
    detector.raise_event("E1", user="Bob")
    detector.advance_time(7199)
    early = not closed
    detector.advance_time(1)
    return early and closed == [1]


def rule3_activation_variants():
    engine = ActiveRBACEngine.from_policy(parse_policy("""
    policy p { role R1; role Senior; user ok; user bad; user hier;
               hierarchy Senior > R1;
               assign ok to R1; assign hier to Senior; }"""))
    sid = engine.create_session("ok")
    engine.add_active_role(sid, "R1")
    hier_sid = engine.create_session("hier")
    engine.add_active_role(hier_sid, "R1")  # via AAR2 authorization
    bad_sid = engine.create_session("bad")
    try:
        engine.add_active_role(bad_sid, "R1")
        return False
    except ActivationDenied:
        return True


def rule4_cardinality():
    engine = ActiveRBACEngine.from_policy(parse_policy("""
    policy p { role R1 max_active_users 5;
               user u0; user u1; user u2; user u3; user u4; user u5;
               assign u0 to R1; assign u1 to R1; assign u2 to R1;
               assign u3 to R1; assign u4 to R1; assign u5 to R1; }"""))
    for i in range(5):
        engine.add_active_role(engine.create_session(f"u{i}"), "R1")
    try:
        engine.add_active_role(engine.create_session("u5"), "R1")
        return False
    except CardinalityExceeded:
        return True


def rule5_check_access():
    engine = ActiveRBACEngine.from_policy(parse_policy("""
    policy p { role Reader; user bob; assign bob to Reader;
               permission read on f; grant read on f to Reader; }"""))
    sid = engine.create_session("bob")
    before = engine.check_access(sid, "read", "f")
    engine.add_active_role(sid, "Reader")
    after = engine.check_access(sid, "read", "f")
    return (not before) and after


def rule6_disabling_sod():
    engine = ActiveRBACEngine.from_policy(parse_policy("""
    policy p { role Nurse; role Doctor;
               disabling_sod c roles Nurse, Doctor daily 10:00 to 17:00; }
    """))
    engine.advance_time(12 * 3600)
    engine.disable_role("Doctor")
    try:
        engine.disable_role("Nurse")
        return False
    except DeactivationDenied:
        return engine.model.is_role_enabled("Nurse")


def rule7_duration():
    engine = ActiveRBACEngine.from_policy(parse_policy("""
    policy p { role R3; user bob; assign bob to R3;
               duration R3 3600 for bob; }"""))
    sid = engine.create_session("bob")
    engine.add_active_role(sid, "R3")
    engine.advance_time(3599)
    still = "R3" in engine.model.session_roles(sid)
    engine.advance_time(1)
    return still and "R3" not in engine.model.session_roles(sid)


def rule8_post_condition():
    engine = ActiveRBACEngine.from_policy(parse_policy("""
    policy p { role SysAdmin; role SysAudit;
               require SysAudit when enabling SysAdmin; }"""))
    engine.model.set_role_enabled("SysAdmin", False)
    engine.model.set_role_enabled("SysAudit", False)
    engine.enable_role("SysAdmin")
    both = (engine.model.is_role_enabled("SysAdmin")
            and engine.model.is_role_enabled("SysAudit"))
    # rollback path
    engine.model.set_role_enabled("SysAdmin", False)
    engine.model.set_role_enabled("SysAudit", False)
    engine.rules.disable("ER.SysAudit")
    try:
        engine.enable_role("SysAdmin")
        return False
    except ActivationDenied:
        return both and not engine.model.is_role_enabled("SysAdmin")


def rule9_transaction():
    engine = ActiveRBACEngine.from_policy(parse_policy("""
    policy p { role Manager; role JuniorEmp; user boss; user kid;
               assign boss to Manager; assign kid to JuniorEmp;
               transaction JuniorEmp during Manager; }"""))
    kid_sid = engine.create_session("kid")
    try:
        engine.add_active_role(kid_sid, "JuniorEmp")
        return False
    except PrerequisiteNotMetError:
        pass
    boss_sid = engine.create_session("boss")
    engine.add_active_role(boss_sid, "Manager")
    engine.add_active_role(kid_sid, "JuniorEmp")
    engine.drop_active_role(boss_sid, "Manager")
    return "JuniorEmp" not in engine.model.session_roles(kid_sid)


SCENARIOS = [
    ("R1", "simple event + checkaccess (vi patient.dat)",
     rule1_simple_event, "allow Bob, deny others"),
    ("R2", "PLUS(E1, 2h) forced file close",
     rule2_plus_close, "close at exactly t+2h"),
    ("R3", "AddActiveRole via AAR1/AAR2",
     rule3_activation_variants, "assigned+senior ok, others denied"),
    ("R4", "cardinality: 5 users max in R1",
     rule4_cardinality, "6th activation denied"),
    ("R5", "checkAccess over active role set",
     rule5_check_access, "allow iff active role holds perm"),
    ("R6", "disabling-time SoD (Nurse/Doctor)",
     rule6_disabling_sod, "2nd disable denied in (I,P)"),
    ("R7", "per-user activation duration",
     rule7_duration, "deactivated at activation+delta"),
    ("R8", "post-condition CFD with rollback",
     rule8_post_condition, "both enabled or neither"),
    ("R9", "transaction-based activation window",
     rule9_transaction, "junior only inside manager window"),
]


def run_all():
    return [fn() for _id, _title, fn, _expected in SCENARIOS]


def test_paper_rules_scenarios(benchmark):
    outcomes = benchmark(run_all)
    rows = [
        (exp_id, title, expected, "REPRODUCED" if ok else "FAILED")
        for (exp_id, title, _fn, expected), ok
        in zip(SCENARIOS, outcomes)
    ]
    report("R1-R9", "paper worked rules, end to end",
           ("id", "scenario", "paper behaviour", "observed"), rows)
    assert all(outcomes)
