"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md §4 (F1,
R1-R9, B1-B9).  Besides the pytest-benchmark timing, each test prints
its series/table and writes it to ``benchmarks/results/<exp>.txt`` so
EXPERIMENTS.md can reference the measured rows.
"""

from __future__ import annotations

import pathlib
import time
from typing import Iterable, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(exp_id: str, title: str, header: Sequence[str],
           rows: Iterable[Sequence[object]],
           notes: str = "") -> str:
    """Render an aligned table, print it, persist it, and return it."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    header = tuple(str(cell) for cell in header)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows
        else len(header[i])
        for i in range(len(header))
    ]

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    lines = [f"[{exp_id}] {title}", fmt(header),
             fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    if notes:
        lines.append(f"note: {notes}")
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n")
    return text


def timed(fn, *args, **kwargs) -> tuple[float, object]:
    """(elapsed_seconds, result) of one call."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return (time.perf_counter() - start, result)


def profiled(fn, *args, registry=None, label: str = "",
             **kwargs) -> tuple[object, object]:
    """Run ``fn`` under an observability :class:`~repro.obs.Profiler`.

    Returns ``(profiler, result)``: the profiler carries wall time plus
    the delta of every metric series that moved (pass
    ``registry=engine.obs.metrics``), so a benchmark can report not
    just "how long" but "how many events/rule firings per iteration".
    """
    from repro.obs import Profiler

    profiler = Profiler(registry=registry,
                        label=label or getattr(fn, "__name__", "block"))
    with profiler:
        result = fn(*args, **kwargs)
    return profiler, result
