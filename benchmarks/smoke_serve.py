#!/usr/bin/env python3
"""Service-plane smoke: boot, load, gate, and shut down cleanly.

Two modes:

``python benchmarks/smoke_serve.py``
    The CI serve-smoke job.  It exercises the real deployment shape
    end to end:

    1. **boot** — spawn ``repro-rbac serve`` as a subprocess on an
       ephemeral port (``--port-file`` hands the bound port back),
       with a 2-shard / 10k-user synthetic fleet, WAL durability
       attached, and a pinned flight-recorder dump directory;
    2. **load** — run the ``loadgen`` CLI against it: a mixed
       check / batch / explain / metrics / health burst with a
       control-plane grant every 25th op (mid-run epoch swaps), gated
       on the p99 budget; the report lands in
       ``benchmarks/results/BENCH_serve.json``;
    3. **shutdown** — SIGTERM the server and assert the graceful exit
       contract: exit code 0, a ``shutdown:`` summary on stdout with
       ``drained: true``, every shard's WAL flushed on disk, and one
       flight-recorder dump per shard in the pinned directory.

``python benchmarks/smoke_serve.py --chaos``
    The CI chaos-serve job: the overload/fault resilience gates, in
    two legs, emitting ``benchmarks/results/BENCH_resilience.json``:

    * **leg A (network chaos + overload)** — boot a capacity-
      constrained server (small ``--max-inflight``), replay the
      seeded network-fault schedule (connection resets, slow-loris
      stalls, truncated bodies, garbage frames) through the chaos
      transport and require every fault answered fail-closed 4xx or
      by a clean close — zero hangs, zero 5xx, server alive after;
      then calibrate a closed-loop rate and offer ~2x open-loop,
      requiring sheds to be fast 503 + ``Retry-After``, admitted
      requests inside the p99 budget, and goodput above a floor;
    * **leg B (breaker + degraded mode)** — boot with
      ``--chaos-check`` arming a deterministic shard fault (after 10
      clean checks the next 3 raise TransientError), trip the
      breaker, and assert the degraded-mode contract: reads keep
      answering from the frozen published kernel epoch, cold callers
      and admin mutations are rejected fail-closed, ``/healthz``
      reports the open breaker, and the half-open probe recovers the
      shard after the cooldown.

Budgets (override via env for known-noisy runners):

* ``SERVE_P99_BUDGET_MS`` — smoke-mode overall p99 budget, default 150;
* ``SERVE_BOOT_TIMEOUT_S`` — seconds to wait for the port file,
  default 60;
* ``CHAOS_SEED`` — the fault-schedule seed the chaos-serve matrix
  varies, default 0;
* ``RESILIENCE_P99_BUDGET_MS`` — p99 budget for *admitted* requests
  under 2x overload, default 500;
* ``RESILIENCE_GOODPUT_MIN`` — goodput floor under overload as a
  fraction of the calibrated closed-loop rate, default 0.05.

Exit status 0 when every gate passes and the shutdowns are clean.
Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_serve.py [--chaos]
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"

SHARDS = 2
USERS = 10_000
ROLES = 50
SEED = 7
REQUESTS = int(os.environ.get("SERVE_SMOKE_REQUESTS", "3000"))
LEVELS = os.environ.get("SERVE_SMOKE_LEVELS", "1,8,32")
ADMIN_EVERY = 25
P99_BUDGET_MS = float(os.environ.get("SERVE_P99_BUDGET_MS", "150"))
BOOT_TIMEOUT_S = float(os.environ.get("SERVE_BOOT_TIMEOUT_S", "60"))

# -- chaos-mode knobs ---------------------------------------------------------
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
CHAOS_USERS = 2_000
CHAOS_ROLES = 20
CHAOS_NET_OPS = int(os.environ.get("CHAOS_NET_OPS", "300"))
CHAOS_CAL_OPS = int(os.environ.get("CHAOS_CAL_OPS", "600"))
CHAOS_OVERLOAD_OPS = int(os.environ.get("CHAOS_OVERLOAD_OPS", "1500"))
RESILIENCE_P99_BUDGET_MS = float(
    os.environ.get("RESILIENCE_P99_BUDGET_MS", "500"))
RESILIENCE_GOODPUT_MIN = float(
    os.environ.get("RESILIENCE_GOODPUT_MIN", "0.05"))
BREAKER_WARM = 10
BREAKER_FAILS = 3
BREAKER_COOLDOWN_S = 3.0


def fail(message: str) -> "None":
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def boot(workdir: pathlib.Path, *, shards: int, users: int, roles: int,
         seed: int, extra: list[str]) -> tuple[subprocess.Popen, int,
                                               pathlib.Path]:
    """Spawn ``repro-rbac serve`` and wait for its bound port."""
    port_file = workdir / "port.txt"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--synthetic", str(shards), "--users", str(users),
         "--roles", str(roles), "--seed", str(seed),
         "--port", "0", "--port-file", str(port_file), *extra],
        env=env, cwd=REPO, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while not port_file.exists():
        if server.poll() is not None:
            print(server.stdout.read())
            fail(f"server exited {server.returncode} before binding")
        if time.monotonic() > deadline:
            server.kill()
            server.communicate()
            fail(f"server did not bind within {BOOT_TIMEOUT_S}s")
        time.sleep(0.05)
    return server, int(port_file.read_text().strip()), port_file


def stop(server: subprocess.Popen, port_file: pathlib.Path,
         leg: str) -> str:
    """SIGTERM the server; assert the graceful-exit contract."""
    server.send_signal(signal.SIGTERM)
    try:
        out, _ = server.communicate(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()
    if server.returncode != 0:
        print(out)
        fail(f"{leg}: server exited {server.returncode} on SIGTERM")
    if port_file.exists():
        fail(f"{leg}: port file survived shutdown: {port_file}")
    summary_lines = [line for line in out.splitlines()
                     if line.startswith("shutdown: ")]
    if not summary_lines:
        print(out)
        fail(f"{leg}: no shutdown summary on stdout")
    summary = json.loads(summary_lines[-1].removeprefix("shutdown: "))
    if not summary["drained"]:
        fail(f"{leg}: shutdown did not drain: {summary}")
    return out


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.cli import main as cli_main

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    flight_dir = workdir / "flightrec"
    wal_dir = workdir / "wal"

    server, port, port_file = boot(
        workdir, shards=SHARDS, users=USERS, roles=ROLES, seed=SEED,
        extra=["--wal", str(wal_dir), "--flightrec-dir", str(flight_dir),
               "--drain-grace", "10"])
    try:
        print(f"server up on port {port} "
              f"({SHARDS} shards, {USERS} users)")

        bench_path = RESULTS / "BENCH_serve.json"
        status = cli_main([
            "loadgen", "--port", str(port),
            "--shards", str(SHARDS), "--users", str(USERS),
            "--roles", str(ROLES), "--seed", str(SEED),
            "--requests", str(REQUESTS), "--levels", LEVELS,
            "--admin-every", str(ADMIN_EVERY),
            "--out", str(bench_path),
            "--p99-budget-ms", str(P99_BUDGET_MS)])
        if status != 0:
            fail(f"loadgen gate failed (exit {status})")
        report = json.loads(bench_path.read_text())
        if report["admin_swaps"] < REQUESTS // ADMIN_EVERY // 2:
            fail(f"expected mid-run epoch swaps, saw "
                 f"{report['admin_swaps']}")

        out = stop(server, port_file, "smoke")
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()

    print(out)
    summary = json.loads(
        [line for line in out.splitlines()
         if line.startswith("shutdown: ")][-1].removeprefix("shutdown: "))
    if summary["wal_flushed"] < 0 or len(summary["flight_dumps"]) != SHARDS:
        fail(f"unexpected shutdown summary: {summary}")
    dumps = summary["flight_dumps"]
    if len(set(dumps.values())) != len(dumps):
        fail(f"shard flight dumps collided: {dumps}")
    for shard, dump in dumps.items():
        if not dump or not pathlib.Path(dump).is_file():
            fail(f"missing flight dump for {shard}: {dump}")
        if pathlib.Path(dump).parent != flight_dir:
            fail(f"dump for {shard} landed outside --flightrec-dir: "
                 f"{dump}")
    for index in range(SHARDS):
        wal_file = wal_dir / f"shard{index:02d}" / "wal.log"
        if not wal_file.exists():
            fail(f"missing WAL for shard{index:02d}")

    print(f"serve smoke OK: p50 {report['p50_us'] / 1000:.2f} ms, "
          f"p99 {report['p99_us'] / 1000:.2f} ms "
          f"(budget {P99_BUDGET_MS} ms), "
          f"{report['requests']} requests, "
          f"{report['admin_swaps']} epoch swaps, clean shutdown")
    return 0


# -- chaos mode ---------------------------------------------------------------


def chaos_leg_net_overload() -> dict:
    """Leg A: network-fault replay, then open-loop overload at ~2x."""
    import asyncio

    from repro.serve.loadgen import run_chaos, run_level, run_overload
    from repro.testing.faults import NetFaultPlan
    from repro.workloads import generate_fleet, generate_service_plan

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-serve-chaos-"))
    server, port, port_file = boot(
        workdir, shards=SHARDS, users=CHAOS_USERS, roles=CHAOS_ROLES,
        seed=SEED,
        extra=["--flightrec-dir", str(workdir / "flightrec"),
               "--max-inflight", "16", "--shard-concurrency", "8",
               "--request-timeout-ms", "500", "--drain-grace", "10"])
    try:
        print(f"[leg A] server up on port {port} "
              f"(max-inflight 16, 500ms budget)")
        fleet = generate_fleet(SHARDS, CHAOS_USERS, CHAOS_ROLES, SEED)

        # -- network chaos: seeded fault schedule, sequential replay --
        net_plan = NetFaultPlan(seed=CHAOS_SEED)
        chaos_ops = generate_service_plan(fleet, CHAOS_NET_OPS, seed=23)
        chaos = asyncio.run(run_chaos("127.0.0.1", port, chaos_ops,
                                      net_plan))
        print(f"[leg A] chaos: {chaos.to_dict()}")
        if not chaos.alive_after:
            fail("leg A: server dead after network chaos")
        if chaos.hung:
            fail(f"leg A: {chaos.hung} connection(s) hung under chaos")
        if chaos.server_5xx:
            fail(f"leg A: {chaos.server_5xx} faulted frame(s) "
                 f"answered 5xx (want fail-closed 4xx/close)")
        if not chaos.faults:
            fail(f"leg A: fault schedule dealt nothing "
                 f"(seed {CHAOS_SEED}, {CHAOS_NET_OPS} ops)")
        if not chaos.clean_ok:
            fail("leg A: no clean request survived the chaos replay")

        # -- calibrate: closed-loop rate below the admission limit ----
        cal_ops = generate_service_plan(fleet, CHAOS_CAL_OPS, seed=29)
        cal = asyncio.run(run_level("127.0.0.1", port, cal_ops, 8,
                                    seed=CHAOS_SEED))
        if not cal.requests or not cal.elapsed_s:
            fail("leg A: calibration produced no completed requests")
        cal_rps = cal.requests / cal.elapsed_s
        print(f"[leg A] calibrated {cal_rps:.0f} req/s closed-loop "
              f"(concurrency 8)")

        # -- overload: offer ~2x the calibrated rate, open loop -------
        target_rps = cal_rps * 2
        over_ops = generate_service_plan(fleet, CHAOS_OVERLOAD_OPS,
                                         seed=31)
        # max_outstanding bounds the client-side connection pileup:
        # admitted-latency percentiles should describe the server's
        # triage, not an unbounded accept-backlog queue on the client
        overload = asyncio.run(run_overload("127.0.0.1", port, over_ops,
                                            target_rps,
                                            max_outstanding=256))
        print(f"[leg A] overload: {overload.to_dict()}")
        if overload.hung:
            fail(f"leg A: {overload.hung} hung request(s) under "
                 f"overload (zero-hang gate)")
        if overload.retry_after_missing:
            fail(f"leg A: {overload.retry_after_missing} shed 503(s) "
                 f"missing Retry-After")
        if not overload.shed:
            fail(f"leg A: 2x overload ({target_rps:.0f} rps offered) "
                 f"shed nothing — admission control never engaged")
        if not overload.goodput:
            fail("leg A: zero goodput under overload")
        p99_ms = overload.p(0.99) / 1000
        if p99_ms > RESILIENCE_P99_BUDGET_MS:
            fail(f"leg A: admitted p99 {p99_ms:.1f} ms over the "
                 f"{RESILIENCE_P99_BUDGET_MS} ms budget")
        floor = cal_rps * RESILIENCE_GOODPUT_MIN
        if overload.goodput_rps < floor:
            fail(f"leg A: goodput {overload.goodput_rps:.0f} rps "
                 f"under the floor {floor:.0f} rps "
                 f"({RESILIENCE_GOODPUT_MIN:.2f}x calibrated)")

        stop(server, port_file, "leg A")
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()
    return {
        "net_chaos": chaos.to_dict(),
        "calibration": {"concurrency": 8, "ops": cal.requests,
                        "rps": round(cal_rps, 1)},
        "overload": overload.to_dict(),
        "overload_p99_ms": round(p99_ms, 2),
    }


def chaos_leg_breaker() -> dict:
    """Leg B: trip a shard breaker, assert degraded mode + recovery."""
    import asyncio

    from repro.serve.loadgen import HttpClient
    from repro.workloads import generate_fleet

    users = 200
    roles = 10
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-serve-brk-"))
    server, port, port_file = boot(
        workdir, shards=SHARDS, users=users, roles=roles, seed=SEED,
        extra=["--flightrec-dir", str(workdir / "flightrec"),
               "--chaos-check",
               f"shard00:{BREAKER_WARM}:{BREAKER_FAILS}",
               "--breaker-threshold", str(BREAKER_FAILS),
               "--breaker-cooldown", str(BREAKER_COOLDOWN_S),
               "--request-timeout-ms", "2000", "--drain-grace", "10"])

    # candidate (user, operation, object) triples that the policy
    # grants, derived offline from the same seeded fleet the server
    # built — the warm phase must find at least one kernel-path grant
    spec = generate_fleet(SHARDS, users, roles, SEED)["shard00"]
    by_role: dict[str, tuple[str, str]] = {}
    for role, operation, obj in spec.grants:
        by_role.setdefault(role, (operation, obj))
    candidates = []
    seen_users = set()
    for user, role in spec.assignments:
        if role in by_role and user not in seen_users:
            seen_users.add(user)
            operation, obj = by_role[role]
            candidates.append((user, operation, obj))
        if len(candidates) == BREAKER_WARM:
            break
    if len(candidates) < BREAKER_WARM:
        fail(f"leg B: only {len(candidates)} grantable users in the "
             f"seeded fleet (need {BREAKER_WARM})")

    async def drive() -> dict:
        client = HttpClient("127.0.0.1", port)

        async def check(user: str, operation: str, obj: str):
            return await client.request(
                "POST", "/v1/check",
                {"user": user, "domain": "shard00",
                 "operation": operation, "object": obj})

        # -- warm: exactly BREAKER_WARM clean checks ------------------
        golden = None
        for user, operation, obj in candidates:
            status, payload = await check(user, operation, obj)
            if status != 200:
                fail(f"leg B: warm check got {status}: {payload}")
            if golden is None and payload.get("allowed") \
                    and payload.get("path") == "kernel":
                golden = (user, operation, obj, payload["epoch"])
        if golden is None:
            fail("leg B: no warm check granted via the kernel path")
        user, operation, obj, epoch = golden

        # -- fault window: BREAKER_FAILS TransientErrors trip it ------
        for index in range(BREAKER_FAILS):
            status, payload = await check(user, operation, obj)
            if status != 503:
                fail(f"leg B: faulted check {index + 1} answered "
                     f"{status}, want 503: {payload}")
            if "retry-after" not in client.last_headers:
                fail("leg B: faulted 503 missing Retry-After")

        # -- degraded reads from the frozen published epoch -----------
        status, payload = await check(user, operation, obj)
        if status != 200 or payload.get("path") != "degraded":
            fail(f"leg B: expected degraded read, got {status}: "
                 f"{payload}")
        if not payload.get("allowed"):
            fail(f"leg B: degraded read lost the warm grant: {payload}")
        if payload.get("epoch") != epoch:
            fail(f"leg B: degraded epoch {payload.get('epoch')} != "
                 f"frozen epoch {epoch}")
        cold = next(u for u in sorted(spec.users) if u not in seen_users)
        status, payload = await check(cold, "read", "obj")
        if status != 200 or payload.get("allowed") \
                or payload.get("path") != "degraded":
            fail(f"leg B: cold caller not denied fail-closed in "
                 f"degraded mode: {status} {payload}")

        # -- admin mutations rejected fail-closed ---------------------
        status, payload = await client.request(
            "POST", "/v1/admin",
            {"domain": "shard00", "op": "grant",
             "args": {"role": spec.assignments[0][1],
                      "operation": operation, "object": obj}})
        if status != 503 or payload.get("error") != "breaker":
            fail(f"leg B: admin during outage got {status}: {payload}")
        if "retry-after" not in client.last_headers:
            fail("leg B: admin breaker 503 missing Retry-After")

        # -- health + metrics report the open breaker -----------------
        status, health = await client.request("GET", "/healthz")
        overload_report = health["shards"]["shard00"]["serve"]["overload"]
        if status != 503 or health["status"] != "degraded" \
                or overload_report["breaker"] != "open":
            fail(f"leg B: healthz hid the open breaker: {status} "
                 f"{health.get('serve')}")
        if "shard00" not in health["serve"]["breakers_open"]:
            fail(f"leg B: breakers_open missing shard00: "
                 f"{health['serve']}")
        status, text = await client.request("GET", "/metrics")
        if 'repro_serve_breaker_state{shard="shard00"} 2' not in text:
            fail("leg B: /metrics does not report the open breaker")
        if 'repro_serve_degraded_total{shard="shard00"}' not in text:
            fail("leg B: /metrics missing the degraded-serve counter")

        # -- recovery: the half-open probe closes the breaker ---------
        await asyncio.sleep(BREAKER_COOLDOWN_S + 0.3)
        status, payload = await check(user, operation, obj)
        if status != 200 or not payload.get("allowed") \
                or payload.get("path") == "degraded":
            fail(f"leg B: post-cooldown probe did not recover: "
                 f"{status} {payload}")
        status, health = await client.request("GET", "/healthz")
        overload_report = health["shards"]["shard00"]["serve"]["overload"]
        if status != 200 or overload_report["breaker"] != "closed":
            fail(f"leg B: breaker did not close after recovery: "
                 f"{status} {overload_report}")
        await client.close()
        return {"frozen_epoch": epoch,
                "breaker_trips": overload_report["breaker_trips"],
                "degraded_served": overload_report["degraded_served"]}

    try:
        print(f"[leg B] server up on port {port} (chaos-check "
              f"shard00:{BREAKER_WARM}:{BREAKER_FAILS})")
        outcome = asyncio.run(drive())
        print(f"[leg B] breaker tripped, degraded served, recovered: "
              f"{outcome}")
        stop(server, port_file, "leg B")
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()
    return {"warm": BREAKER_WARM, "fails": BREAKER_FAILS,
            "cooldown_s": BREAKER_COOLDOWN_S, **outcome}


def chaos_main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.serve.loadgen import write_json

    leg_a = chaos_leg_net_overload()
    leg_b = chaos_leg_breaker()
    payload = {"seed": CHAOS_SEED, "mode": "resilience",
               **leg_a, "breaker": leg_b}
    bench_path = RESULTS / "BENCH_resilience.json"
    write_json(payload, str(bench_path))
    print(f"serve chaos OK (seed {CHAOS_SEED}): "
          f"{leg_a['net_chaos']['failclosed_4xx']} faults fail-closed, "
          f"shed rate {leg_a['overload']['shed_rate']:.2f} with "
          f"goodput {leg_a['overload']['goodput_rps']:.0f} rps, "
          f"breaker degraded+recovered; report at {bench_path}")
    return 0


if __name__ == "__main__":
    if "--chaos" in sys.argv[1:]:
        raise SystemExit(chaos_main())
    raise SystemExit(main())
