#!/usr/bin/env python3
"""Service-plane smoke: boot, load, gate, and shut down cleanly.

The CI serve-smoke job runs this script.  It exercises the real
deployment shape end to end:

1. **boot** — spawn ``repro-rbac serve`` as a subprocess on an
   ephemeral port (``--port-file`` hands the bound port back), with a
   2-shard / 10k-user synthetic fleet, WAL durability attached, and a
   pinned flight-recorder dump directory;
2. **load** — run the ``loadgen`` CLI against it: a mixed
   check / batch / explain / metrics / health burst with a
   control-plane grant every 25th op (mid-run epoch swaps), gated on
   the p99 budget; the report lands in
   ``benchmarks/results/BENCH_serve.json``;
3. **shutdown** — SIGTERM the server and assert the graceful exit
   contract: exit code 0, a ``shutdown:`` summary on stdout with
   ``drained: true``, every shard's WAL flushed on disk, and one
   flight-recorder dump per shard in the pinned directory.

Budgets (override via env for known-noisy runners):

* ``SERVE_P99_BUDGET_MS`` — overall p99 latency budget, default 50;
* ``SERVE_BOOT_TIMEOUT_S`` — seconds to wait for the port file,
  default 60.

Exit status 0 when the load gate passes and the shutdown is clean.
Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_serve.py
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"

SHARDS = 2
USERS = 10_000
ROLES = 50
SEED = 7
REQUESTS = int(os.environ.get("SERVE_SMOKE_REQUESTS", "3000"))
LEVELS = os.environ.get("SERVE_SMOKE_LEVELS", "1,8,32")
ADMIN_EVERY = 25
P99_BUDGET_MS = float(os.environ.get("SERVE_P99_BUDGET_MS", "150"))
BOOT_TIMEOUT_S = float(os.environ.get("SERVE_BOOT_TIMEOUT_S", "60"))


def fail(message: str) -> "None":
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.cli import main as cli_main

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    port_file = workdir / "port.txt"
    flight_dir = workdir / "flightrec"
    wal_dir = workdir / "wal"

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--synthetic", str(SHARDS), "--users", str(USERS),
         "--roles", str(ROLES), "--seed", str(SEED),
         "--port", "0", "--port-file", str(port_file),
         "--wal", str(wal_dir), "--flightrec-dir", str(flight_dir),
         "--drain-grace", "10"],
        env=env, cwd=REPO, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    try:
        deadline = time.monotonic() + BOOT_TIMEOUT_S
        while not port_file.exists():
            if server.poll() is not None:
                print(server.stdout.read())
                fail(f"server exited {server.returncode} before binding")
            if time.monotonic() > deadline:
                fail(f"server did not bind within {BOOT_TIMEOUT_S}s")
            time.sleep(0.05)
        port = int(port_file.read_text().strip())
        print(f"server up on port {port} "
              f"({SHARDS} shards, {USERS} users)")

        bench_path = RESULTS / "BENCH_serve.json"
        status = cli_main([
            "loadgen", "--port", str(port),
            "--shards", str(SHARDS), "--users", str(USERS),
            "--roles", str(ROLES), "--seed", str(SEED),
            "--requests", str(REQUESTS), "--levels", LEVELS,
            "--admin-every", str(ADMIN_EVERY),
            "--out", str(bench_path),
            "--p99-budget-ms", str(P99_BUDGET_MS)])
        if status != 0:
            fail(f"loadgen gate failed (exit {status})")
        report = json.loads(bench_path.read_text())
        if report["admin_swaps"] < REQUESTS // ADMIN_EVERY // 2:
            fail(f"expected mid-run epoch swaps, saw "
                 f"{report['admin_swaps']}")

        server.send_signal(signal.SIGTERM)
        out, _ = server.communicate(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()

    print(out)
    if server.returncode != 0:
        fail(f"server exited {server.returncode} on SIGTERM")
    summary_lines = [line for line in out.splitlines()
                     if line.startswith("shutdown: ")]
    if not summary_lines:
        fail("no shutdown summary on stdout")
    summary = json.loads(summary_lines[-1].removeprefix("shutdown: "))
    if not summary["drained"]:
        fail(f"shutdown did not drain: {summary}")
    if summary["wal_flushed"] < 0 or len(summary["flight_dumps"]) != SHARDS:
        fail(f"unexpected shutdown summary: {summary}")
    dumps = summary["flight_dumps"]
    if len(set(dumps.values())) != len(dumps):
        fail(f"shard flight dumps collided: {dumps}")
    for shard, dump in dumps.items():
        if not dump or not pathlib.Path(dump).is_file():
            fail(f"missing flight dump for {shard}: {dump}")
        if pathlib.Path(dump).parent != flight_dir:
            fail(f"dump for {shard} landed outside --flightrec-dir: "
                 f"{dump}")
    for index in range(SHARDS):
        wal_file = wal_dir / f"shard{index:02d}" / "wal.log"
        if not wal_file.exists():
            fail(f"missing WAL for shard{index:02d}")

    print(f"serve smoke OK: p50 {report['p50_us'] / 1000:.2f} ms, "
          f"p99 {report['p99_us'] / 1000:.2f} ms "
          f"(budget {P99_BUDGET_MS} ms), "
          f"{report['requests']} requests, "
          f"{report['admin_swaps']} epoch swaps, clean shutdown")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
