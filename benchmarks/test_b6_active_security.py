"""B6 — active security: detection exactness and monitoring overhead.

(a) detection latency in *events*: the alert fires on exactly the
threshold-th denial inside the window, never earlier or later;
(b) overhead: denial-path cost with 0 / 1 / 10 threshold policies
installed.  The timed kernel is one denied checkAccess under one
policy.
"""

import time

from benchmarks._harness import report

from repro import ActiveRBACEngine, parse_policy
from repro.security.monitor import ThresholdPolicy

BASE_POLICY = """
policy fortress {
  role Admin;
  user mallory; user alice;
  permission read on secret;
  grant read on secret to Admin;
}
"""


def build(policies: int, threshold: int = 5) -> ActiveRBACEngine:
    engine = ActiveRBACEngine.from_policy(parse_policy(BASE_POLICY))
    for index in range(policies):
        engine.monitor.add_policy(ThresholdPolicy(
            name=f"p{index}", threshold=threshold, window=3600.0,
            group_by="user"))
    return engine


def test_b6_detection_exactness(benchmark):
    rows = []
    for threshold in (2, 5, 20):
        engine = build(1, threshold)
        sid = engine.create_session("mallory")
        denials_until_alert = 0
        while not engine.monitor.alerts:
            engine.check_access(sid, "read", "secret")
            denials_until_alert += 1
            assert denials_until_alert <= threshold + 1, "overshot"
        rows.append((threshold, denials_until_alert,
                     "exact" if denials_until_alert == threshold
                     else "WRONG"))
    report(
        "B6a", "events-to-alert vs configured threshold",
        ("threshold", "denials to alert", "verdict"), rows,
        notes="expected shape: alert on exactly the threshold-th "
              "denial within the window",
    )
    assert all(row[2] == "exact" for row in rows)

    engine = build(1, threshold=10**9)  # never alerts: measure the path
    sid = engine.create_session("mallory")
    benchmark(engine.check_access, sid, "read", "secret")


def test_b6_monitoring_overhead(benchmark):
    rows = []
    for policies in (0, 1, 10):
        engine = build(policies, threshold=10**9)
        sid = engine.create_session("mallory")
        count = 300
        start = time.perf_counter()
        for _ in range(count):
            engine.check_access(sid, "read", "secret")
        per_op = (time.perf_counter() - start) / count * 1e6
        rows.append((policies, f"{per_op:.1f}"))
    report(
        "B6b", "denied checkAccess cost vs installed threshold policies",
        ("policies", "us/denial"), rows,
        notes="expected shape: small linear cost per policy on the "
              "denial path only",
    )

    engine = build(10, threshold=10**9)
    sid = engine.create_session("mallory")
    benchmark(engine.check_access, sid, "read", "secret")


def test_b6_countermeasure_latency(benchmark):
    """Time from threshold breach to completed countermeasures (rules
    disabled + user locked), measured over the whole burst."""
    rows = []
    for burst in (3, 10):
        engine = ActiveRBACEngine.from_policy(parse_policy(BASE_POLICY))
        engine.monitor.add_policy(ThresholdPolicy(
            name="lockdown", threshold=burst, window=3600.0,
            group_by="user", lock_users=True,
            disable_rule_tags=ThresholdPolicy.tags(
                {"kind": "checkAccess"})))
        sid = engine.create_session("mallory")
        start = time.perf_counter()
        for _ in range(burst):
            engine.check_access(sid, "read", "secret")
        elapsed = (time.perf_counter() - start) * 1e3
        locked = "mallory" in engine.locked_users
        ca_disabled = not engine.rules.get("CA.checkAccess").enabled
        rows.append((burst, f"{elapsed:.2f}",
                     "yes" if locked and ca_disabled else "NO"))
    report(
        "B6c", "burst-to-countermeasure latency",
        ("burst size", "total ms", "countermeasures applied"), rows,
        notes="lock + rule-disable complete synchronously within the "
              "denial that trips the threshold",
    )
    assert all(row[2] == "yes" for row in rows)

    def full_cycle():
        engine = ActiveRBACEngine.from_policy(parse_policy(BASE_POLICY))
        engine.monitor.add_policy(ThresholdPolicy(
            name="lockdown", threshold=3, window=3600.0,
            group_by="user", lock_users=True))
        sid = engine.create_session("mallory")
        for _ in range(3):
            engine.check_access(sid, "read", "secret")

    benchmark(full_cycle)
