"""B3 — enforcement overhead: active OWTE engine vs direct baseline.

The cost of routing every checkAccess through the event detector and
the generated CA rule, versus the hand-coded inline check, across
enterprise sizes and hierarchy depths.  Expected shape: both engines
are roughly O(active roles x hierarchy), decisions identical, the
active engine paying a small constant factor for event dispatch + rule
firing.  The timed kernel is one active-engine checkAccess.
"""

import time

from benchmarks._harness import report

from repro import ActiveRBACEngine, DirectRBACEngine
from repro.workloads import EnterpriseShape, generate_enterprise

SWEEP = ((20, 2), (100, 2), (100, 4), (300, 3))
CHECKS = 300


def prepare(engines_spec):
    """Build both engines, open a session with one active role, and
    return (engine, session, op, obj) tuples plus the probe set."""
    prepared = []
    for engine in engines_spec:
        user, role = engine.policy.assignments[0]
        sid = engine.create_session(user)
        engine.add_active_role(sid, role)
        operation, obj = engine.policy.permissions[0]
        prepared.append((engine, sid, operation, obj))
    return prepared


def measure(engine, sid, operation, obj, checks=CHECKS) -> float:
    """Best-of-3 mean microseconds per checkAccess (GC-noise robust)."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(checks):
            engine.check_access(sid, operation, obj)
        best = min(best, (time.perf_counter() - start) / checks * 1e6)
    return best


def test_b3_check_access_latency(benchmark):
    rows = []
    for roles, depth in SWEEP:
        spec = generate_enterprise(EnterpriseShape(
            roles=roles, users=roles, tree_depth=depth, tree_fanout=3,
            seed=13))
        active = ActiveRBACEngine(spec)
        direct = DirectRBACEngine(spec)
        (_a, a_sid, op, obj), (_d, d_sid, _op, _obj) = prepare(
            [active, direct])
        # compiled decision plane vs the full interpreted OWTE pipeline
        active.kernel_enabled = True
        kernel_us = measure(active, a_sid, op, obj)
        active.kernel_enabled = False
        interp_us = measure(active, a_sid, op, obj)
        active.kernel_enabled = True
        direct_us = measure(direct, d_sid, op, obj)
        agree = all(
            active.check_access(a_sid, operation, target)
            == direct.check_access(d_sid, operation, target)
            for operation, target in spec.permissions[:50]
        )
        rows.append((roles, depth, f"{kernel_us:.1f}",
                     f"{interp_us:.1f}", f"{direct_us:.1f}",
                     f"{interp_us / kernel_us:.2f}x",
                     "yes" if agree else "NO"))
    report(
        "B3", "checkAccess latency: compiled kernel vs interpreted "
              "OWTE vs direct baseline",
        ("roles", "depth", "kernel us/op", "interp us/op",
         "direct us/op", "speedup", "decisions agree"),
        rows,
        notes="expected shape: identical decisions; the interpreted "
              "path pays event dispatch + rule firing, the compiled "
              "kernel answers static checks from interned bitsets",
    )
    assert all(row[-1] == "yes" for row in rows)

    spec = generate_enterprise(EnterpriseShape(roles=100, users=100,
                                               seed=13))
    engine = ActiveRBACEngine(spec)
    (_e, sid, op, obj), = prepare([engine])
    benchmark(engine.check_access, sid, op, obj)


def test_b3_activation_latency(benchmark):
    """Companion sweep: activate+drop latency through the AAR->CC rule
    cascade vs the baseline's inline path."""
    rows = []
    for roles, depth in SWEEP:
        spec = generate_enterprise(EnterpriseShape(
            roles=roles, users=roles, tree_depth=depth, tree_fanout=3,
            seed=13))
        active = ActiveRBACEngine(spec)
        direct = DirectRBACEngine(spec)
        user, role = spec.assignments[0]
        results = {}
        for label, engine in (("active", active), ("direct", direct)):
            sid = engine.create_session(user)
            start = time.perf_counter()
            for _ in range(CHECKS):
                engine.add_active_role(sid, role)
                engine.drop_active_role(sid, role)
            results[label] = ((time.perf_counter() - start)
                              / CHECKS * 1e6)
        rows.append((roles, depth, f"{results['active']:.1f}",
                     f"{results['direct']:.1f}",
                     f"{results['active'] / results['direct']:.2f}x"))
    report(
        "B3b", "activate+drop latency: active (AAR->CC cascade) vs "
               "direct baseline",
        ("roles", "depth", "active us/cycle", "direct us/cycle",
         "overhead"),
        rows,
        notes="the active path crosses two generated rules plus the "
              "roleActivated/roleDeactivated cascade events",
    )

    spec = generate_enterprise(EnterpriseShape(roles=100, users=100,
                                               seed=13))
    engine = ActiveRBACEngine(spec)
    user, role = spec.assignments[0]
    sid = engine.create_session(user)

    def cycle():
        engine.add_active_role(sid, role)
        engine.drop_active_role(sid, role)

    benchmark(cycle)
