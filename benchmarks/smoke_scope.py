#!/usr/bin/env python3
"""Benchmark smoke: scoped S-A-O-C checks stay on the kernel fast path.

Builds a synthetic enterprise (50 roles / 100 users) and layers a
multi-org scope tree on it — 12 orgs x 12 collections x 8 resources,
1308 scopes — with scoped grants over the org/collection anchors and
org-bounded assignments, so the containment closure implies millions of
user-scope-role triples without materialising any.

Three verdicts:

* **overhead** — interleaved flat-vs-scoped rounds on the same engine
  and session.  A scoped check resolves the scope and walks the
  ancestor-closure bitsets on top of the flat decision; it may cost at
  most ``SCOPE_OVERHEAD_BUDGET`` (default 1.0, i.e. scoped <= 2x flat)
  over the flat check;
* **kernel path** — the policy is static during measurement, so every
  check (flat and scoped) must be answered by the compiled kernel: the
  fallback decision counter may not move;
* **containment** — for a role granted at an org anchor, *every* one of
  the anchor's descendants must grant and every non-descendant must
  deny; for a role granted at a leaf resource, every strict ancestor
  (including the platform root, i.e. the flat call) must deny.  The
  sweep covers all 1308 scopes.

Raw numbers go to ``benchmarks/results/BENCH_scope.json``.  Same
measurement methodology as ``smoke_profile.py``: short sub-quantum
rounds, interleaved states, min-vs-min and paired-median estimators
(smaller wins), one retry with doubled rounds.

Exit status 0 when every verdict passes, 1 otherwise.  Run from the
repo root::

    PYTHONPATH=src python benchmarks/smoke_scope.py
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))  # noqa: the _harness dir

from repro import ActiveRBACEngine  # noqa: E402
from repro.workloads import (  # noqa: E402
    EnterpriseShape,
    add_scoped_layer,
    generate_enterprise,
)

CHECKS = 50     # checkAccess calls per timed round (sub-quantum)
ROUNDS = 120    # alternating flat/scoped round pairs
ORGS = 12
COLLECTIONS = 12
RESOURCES = 8
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

ANCHOR_ORG = "org00"        # the org-anchored containment probe
LEAF_SCOPE = "org01/col00/res00"  # the leaf-anchored reverse probe


def build() -> tuple[ActiveRBACEngine, list[str], dict[str, str]]:
    spec = generate_enterprise(EnterpriseShape(
        roles=50, users=100, seed=13))
    scopes = add_scoped_layer(
        spec, orgs=ORGS, collections_per_org=COLLECTIONS,
        resources_per_collection=RESOURCES, scoped_grants_per_role=2,
        scoped_assignment_fraction=0.5, extra_scoped_assignments=100,
        seed=17)

    operation, obj = spec.permissions[0]
    # three probe roles with exactly one grant each, so the sweep's
    # expected verdict is a pure function of scope containment
    spec.add_role("BenchFlat")
    spec.add_role("BenchOrg")
    spec.add_role("BenchLeaf")
    spec.add_grant("BenchFlat", operation, obj)
    spec.add_scoped_grant("BenchOrg", operation, obj, ANCHOR_ORG)
    spec.add_scoped_grant("BenchLeaf", operation, obj, LEAF_SCOPE)
    spec.add_user("benchflat")
    spec.add_user("benchorg")
    spec.add_user("benchleaf")
    spec.add_assignment("benchflat", "BenchFlat")
    spec.add_assignment("benchorg", "BenchOrg")
    spec.add_assignment("benchleaf", "BenchLeaf")

    engine = ActiveRBACEngine(spec)
    sids = {}
    for user, role in (("benchflat", "BenchFlat"),
                       ("benchorg", "BenchOrg"),
                       ("benchleaf", "BenchLeaf")):
        sid = engine.create_session(user)
        engine.add_active_role(sid, role)
        sids[user] = sid
    probe = {"operation": operation, "obj": obj, **sids}
    return engine, scopes, probe


def timed_round(engine, sid, operation, obj,
                scope: str | None) -> float:
    """One short check round against the given scope, in us/check."""
    start = time.perf_counter_ns()
    for _ in range(CHECKS):
        engine.check_access(sid, operation, obj, scope=scope)
    return (time.perf_counter_ns() - start) / CHECKS / 1000


def measure_overhead(engine, sid, operation, obj, scope: str,
                     rounds: int = ROUNDS) -> tuple[float, float, float]:
    """Interleaved flat/scoped rounds -> (scoped_us, flat_us, overhead)."""
    timed_round(engine, sid, operation, obj, scope)   # warm both paths
    timed_round(engine, sid, operation, obj, None)
    scoped_times, flat_times = [], []
    for _ in range(rounds):
        scoped_times.append(
            timed_round(engine, sid, operation, obj, scope))
        flat_times.append(
            timed_round(engine, sid, operation, obj, None))
    base = min(flat_times)
    gap_minmin = min(scoped_times) - base
    gap_paired = statistics.median(
        scoped - flat for scoped, flat in zip(scoped_times, flat_times))
    gap = min(gap_minmin, gap_paired)
    return base + gap, base, gap / base


def check_containment(engine, scopes: list[str],
                      probe: dict[str, str]) -> tuple[bool, dict]:
    """Ancestor => every descendant; leaf grant => no ancestor.

    Sweeps every scope in the tree for both probe roles and counts the
    verdicts against the containment-implied expectation.
    """
    operation, obj = probe["operation"], probe["obj"]
    org_sid, leaf_sid = probe["benchorg"], probe["benchleaf"]
    wrong: list[str] = []
    descendants = 0
    for scope in scopes:
        in_org = scope == ANCHOR_ORG or scope.startswith(ANCHOR_ORG + "/")
        descendants += in_org
        if engine.check_access(org_sid, operation, obj,
                               scope=scope) is not in_org:
            wrong.append(f"org-anchored grant at {scope!r}: "
                         f"expected {in_org}")
        in_leaf = scope == LEAF_SCOPE or scope.startswith(LEAF_SCOPE + "/")
        if engine.check_access(leaf_sid, operation, obj,
                               scope=scope) is not in_leaf:
            wrong.append(f"leaf-anchored grant at {scope!r}: "
                         f"expected {in_leaf}")
    # the reverse direction, stated flat: a grant below the root never
    # satisfies the root-scope (flat) check
    if engine.check_access(org_sid, operation, obj):
        wrong.append("org-anchored grant satisfied a flat check")
    if engine.check_access(leaf_sid, operation, obj):
        wrong.append("leaf-anchored grant satisfied a flat check")
    for line in wrong[:10]:
        print(f"FAIL containment: {line}", file=sys.stderr)
    detail = {
        "scopes_swept": len(scopes),
        "org_descendants_granted": descendants,
        "violations": len(wrong),
        "pass": not wrong,
    }
    print(f"containment sweep: {len(scopes)} scopes x 2 probes, "
          f"{descendants} descendants of {ANCHOR_ORG!r} granted, "
          f"{len(wrong)} violation(s)")
    return not wrong, detail


def main() -> int:
    budget = float(os.environ.get("SCOPE_OVERHEAD_BUDGET", "1.0"))
    engine, scopes, probe = build()
    operation, obj = probe["operation"], probe["obj"]
    sid = probe["benchflat"]
    deep = f"{ANCHOR_ORG}/col00/res00"
    stats = engine.kernel().stats()
    print(f"scope tree: {stats['scopes']} scopes interned, "
          f"{stats['scoped_grants']} scoped grant rows (closure-folded), "
          f"{stats['scope_limited_assignments']} bounded assignments")
    assert len(scopes) >= 1000, "the sweep must cover >= 1k scopes"

    ok = True
    fallbacks = engine.obs.kernel_decisions.labels("fallback")
    before = fallbacks.value

    for attempt, rounds in enumerate((ROUNDS, ROUNDS * 2)):
        scoped_us, flat_us, overhead = measure_overhead(
            engine, sid, operation, obj, deep, rounds)
        print(f"checkAccess hot path [scoped vs flat]: scoped "
              f"{scoped_us:.2f} us/op, flat {flat_us:.2f} us/op -> "
              f"overhead {overhead:+.1%} (budget {budget:.0%})")
        if overhead <= budget:
            break
        if attempt == 0:
            print("over budget; re-measuring with more rounds...")
    else:
        print("FAIL: scoped-check overhead exceeds the budget",
              file=sys.stderr)
        ok = False

    contained, containment = check_containment(engine, scopes, probe)
    ok = contained and ok

    fallback_delta = fallbacks.value - before
    if fallback_delta:
        print(f"FAIL: {fallback_delta} check(s) left the kernel fast "
              f"path on a static policy", file=sys.stderr)
        ok = False
    else:
        print("kernel path: 0 fallbacks across measurement and sweep")

    result = {
        "workload": f"scoped checkAccess, 50 roles / 100 users, "
                    f"{ORGS}x{COLLECTIONS}x{RESOURCES} scope tree",
        "checks_per_round": CHECKS,
        "scopes": len(scopes),
        "scoped_grant_rows": stats["scoped_grants"],
        "scope_limited_assignments": stats["scope_limited_assignments"],
        "scope_closure_bits": stats["scope_closure_bits"],
        "scoped_us_per_check": round(scoped_us, 3),
        "flat_us_per_check": round(flat_us, 3),
        "overhead": round(overhead, 4),
        "budget": budget,
        "kernel_fallbacks": fallback_delta,
        "containment": containment,
        "pass": ok,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_scope.json"
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    if ok:
        print("OK")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
