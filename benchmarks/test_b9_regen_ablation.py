"""B9 — ablation: incremental vs full regeneration crossover.

DESIGN.md calls out incremental (tag-keyed) regeneration as a design
choice; the alternative is rebuilding the whole pool on any change.  We
change a growing fraction of a 200-role policy and time both
strategies.  Expected shape: incremental wins while the changed
fraction is small and converges to full-regeneration cost as the
fraction approaches 1 (its bookkeeping makes it slightly worse at
100%).  The timed kernel regenerates 10% of roles incrementally.
"""

import time

from benchmarks._harness import report

from repro import ActiveRBACEngine
from repro.gtrbac.constraints import DurationConstraint
from repro.synthesis.regenerate import full_regeneration, regenerate_roles
from repro.workloads import EnterpriseShape, generate_enterprise

ROLES = 200


def build() -> ActiveRBACEngine:
    spec = generate_enterprise(EnterpriseShape(
        roles=ROLES, users=50, seed=21))
    return ActiveRBACEngine(spec)


def change_fraction(engine: ActiveRBACEngine, fraction: float) -> set[str]:
    """Give the first N roles a duration constraint (a policy change
    touching each of them)."""
    changed = sorted(engine.policy.roles)[:max(1, int(ROLES * fraction))]
    for role in changed:
        engine.policy.durations.append(DurationConstraint(role, 3600.0))
    return set(changed)


def test_b9_incremental_vs_full_crossover(benchmark):
    full_regeneration(build())  # warm caches so row 1 isn't inflated
    rows = []
    for fraction in (0.01, 0.05, 0.25, 0.5, 1.0):
        incremental_engine = build()
        changed = change_fraction(incremental_engine, fraction)
        start = time.perf_counter()
        incr_report = regenerate_roles(incremental_engine, changed)
        incr_ms = (time.perf_counter() - start) * 1e3

        full_engine = build()
        change_fraction(full_engine, fraction)
        start = time.perf_counter()
        full_report = full_regeneration(full_engine)
        full_ms = (time.perf_counter() - start) * 1e3

        # both strategies converge to the same pool
        assert ({rule.name for rule in incremental_engine.rules}
                == {rule.name for rule in full_engine.rules})
        rows.append((
            f"{fraction:.0%}", len(changed),
            incr_report.rules_touched, f"{incr_ms:.1f}",
            full_report.rules_touched, f"{full_ms:.1f}",
            f"{full_ms / incr_ms:.1f}x" if incr_ms else "-",
        ))
    report(
        "B9", "regeneration strategy vs changed policy fraction "
              f"({ROLES} roles)",
        ("changed", "roles", "incr rules", "incr ms",
         "full rules", "full ms", "full/incr"),
        rows,
        notes="expected shape: incremental wins at small fractions and "
              "converges to full-regeneration cost as fraction -> 1; "
              "resulting pools are identical either way",
    )

    engine = build()
    changed = change_fraction(engine, 0.10)
    benchmark(regenerate_roles, engine, changed)
