"""B2 — policy change: regeneration vs simulated manual editing.

The paper's §5 maintainability argument: a policy change (the
day-doctor shift) is one high-level edit plus regeneration, while in
"current systems" an administrator hand-edits low-level descriptors —
cost growing with the pool and error-prone.  We apply the same change
(give one role an enabling window) at several enterprise sizes and
compare (a) incremental regeneration, (b) full regeneration, (c) the
manual-edit cost model.  The timed kernel is one incremental
regeneration at 200 roles.
"""

from benchmarks._harness import report, timed

from repro import ActiveRBACEngine
from repro.gtrbac.periodic import PeriodicInterval
from repro.synthesis.regenerate import (
    PolicyEditor,
    full_regeneration,
    simulate_manual_edit,
)
from repro.workloads import EnterpriseShape, generate_enterprise

SWEEP = (20, 50, 200, 500)
SHIFT = PeriodicInterval.daily("09:00", "17:00")


def build(roles: int) -> ActiveRBACEngine:
    spec = generate_enterprise(EnterpriseShape(
        roles=roles, users=roles, seed=7))
    return ActiveRBACEngine(spec)


def target_role(engine: ActiveRBACEngine) -> str:
    return sorted(engine.policy.roles)[0]


def test_b2_policy_change_strategies(benchmark):
    rows = []
    for roles in SWEEP:
        engine = build(roles)
        role = target_role(engine)
        manual = simulate_manual_edit(engine, {role})
        editor = PolicyEditor(engine)
        incr_time, incr_report = timed(
            editor.set_enabling_window, role, SHIFT)
        full_time, full_report = timed(full_regeneration, engine)
        rows.append((
            roles, len(engine.rules),
            incr_report.rules_touched, f"{incr_time * 1e3:.2f}",
            len(full_report.added_rules), f"{full_time * 1e3:.1f}",
            manual.rules_scanned, f"{manual.expected_errors:.2f}",
        ))
    report(
        "B2", "one shift change: incremental vs full vs manual",
        ("roles", "pool", "incr rules", "incr ms",
         "full rules", "full ms", "manual scan", "manual E[err]"),
        rows,
        notes="expected shape: incremental touches O(1) rules at any "
              "pool size; full regen and manual scanning grow with the "
              "pool (paper §5)",
    )

    # shape assertions: incremental is pool-size independent, the
    # others are not
    engine = build(500)
    editor = PolicyEditor(engine)
    incr = editor.set_enabling_window(target_role(engine), SHIFT)
    assert incr.rules_touched <= 10
    manual = simulate_manual_edit(engine, {target_role(engine)})
    assert manual.rules_scanned == len(engine.rules) > 1000

    big = build(200)
    big_editor = PolicyEditor(big)
    benchmark(big_editor.set_enabling_window, target_role(big), SHIFT)
