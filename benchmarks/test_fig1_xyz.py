"""F1 — Figure 1 / Section 5: enterprise XYZ, specification to rules.

Regenerates the paper's only figure: the access-specification graph for
enterprise XYZ (role nodes with flags, hierarchy edges, the dashed
static-SoD edge, child->parent subscriber pointers) and the rule
inventory generated from it.  The timed kernel is the full pipeline:
parse -> validate -> model -> rule generation.
"""

from benchmarks._harness import report

from repro import ActiveRBACEngine, PolicyGraph, parse_policy

XYZ = """
policy XYZ {
  role Clerk; role PC; role PM; role AC; role AM;
  hierarchy PM > PC > Clerk;
  hierarchy AM > AC > Clerk;
  ssd PurchaseApproval roles PC, AC;
  permission create on purchase_order;
  permission approve on purchase_order;
  grant create on purchase_order to PC;
  grant approve on purchase_order to AC;
  user bob; user carol;
  assign bob to PM;
  assign carol to AM;
}
"""


def build_engine():
    return ActiveRBACEngine.from_policy(parse_policy(XYZ))


def test_fig1_xyz_specification_to_rules(benchmark):
    spec = parse_policy(XYZ)
    graph = PolicyGraph(spec)

    # -- structural assertions: the graph IS Figure 1 -----------------------
    assert set(graph.nodes) == {"Clerk", "PC", "PM", "AC", "AM"}
    assert graph.node("PC").subscribers == ["PM"]
    assert graph.node("AC").subscribers == ["AM"]
    assert sorted(graph.node("Clerk").subscribers) == ["AC", "PC"]
    assert graph.node("PC").ssd_partners == ["AC"]
    assert graph.node("PM").flags.get("static_sod_inherited")
    assert graph.effective_ssd_partners("PM") == {"AC"}

    engine = benchmark(build_engine)

    rows = []
    for role in sorted(graph.nodes):
        node = graph.node(role)
        role_rules = sorted(
            rule.name for rule in
            engine.rules.by_tags(**{f"role:{role}": "1"}))
        flags = ",".join(sorted(k for k, v in node.flags.items() if v))
        rows.append((role, flags or "-",
                     ",".join(node.subscribers) or "-",
                     len(role_rules),
                     ",".join(role_rules)))
    report(
        "F1", "enterprise XYZ: role nodes, flags and generated rules",
        ("role", "flags", "parents", "#rules", "rules"),
        rows,
        notes=f"total pool = {len(engine.rules)} rules "
              f"({engine.rules.summary()})",
    )
    # the paper: PC has static SoD and hierarchy -> AAR2 template
    assert "AAR2.PC" in engine.rules
