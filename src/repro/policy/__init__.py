"""High-level policy specification: spec objects, DSL, graph, validator.

The paper's RBAC Manager lets administrators specify enterprise access
control policies at a high level; the system instantiates them into an
access-specification graph (Figure 1) from which OWTE rules are
generated.  This package reproduces that pipeline minus the GUI:

* :mod:`repro.policy.spec` — :class:`~repro.policy.spec.PolicySpec`,
  the complete declarative policy (what the GUI's widgets collect);
* :mod:`repro.policy.dsl` — a textual policy language that parses to a
  :class:`~repro.policy.spec.PolicySpec` (the GUI substitute);
* :mod:`repro.policy.graph` — the access-specification graph: role
  nodes with relationship flags and child->parent subscriber pointers,
  exactly as Figure 1 describes;
* :mod:`repro.policy.validator` — consistency checking (the paper's
  "advanced consistency checking mechanisms" future work, §5).
"""

from repro.policy.dsl import parse_policy
from repro.policy.graph import PolicyGraph, RoleNode
from repro.policy.spec import PolicySpec, RoleSpec, UserSpec, build_model
from repro.policy.validator import validate_policy

__all__ = [
    "PolicyGraph",
    "PolicySpec",
    "RoleNode",
    "RoleSpec",
    "UserSpec",
    "build_model",
    "parse_policy",
    "validate_policy",
]
