"""Policy specification objects: the declarative enterprise policy.

A :class:`PolicySpec` is everything an administrator states about an
enterprise's access control — roles, users, hierarchy, SoD sets,
permissions, and every extension constraint — with **no** rules, events
or other "low level semantic descriptors" in it.  The DSL parses into
one; the access-specification graph is derived from one; the rule
generator consumes the graph; regeneration diffs two of them.

:func:`build_model` loads the static state (element sets and relations)
into an :class:`~repro.rbac.model.RBACModel` — used identically by the
active engine and the direct baseline, which is what makes their
decisions comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.extensions.cfd import (
    PostConditionDependency,
    PrerequisiteRole,
    TransactionActivation,
)
from repro.extensions.context import ContextConstraint
from repro.extensions.privacy import ObjectPolicy
from repro.gtrbac.constraints import (
    DisablingTimeSoD,
    DurationConstraint,
    EnablingWindow,
)
from repro.rbac.model import RBACModel
from repro.security.monitor import ThresholdPolicy


@dataclass(frozen=True)
class UserSpec:
    """A declared user. ``max_active_roles`` is scenario 1's specialized
    cardinality ("Jane at most five active roles")."""

    name: str
    max_active_roles: int | None = None


@dataclass(frozen=True)
class RoleSpec:
    """A declared role (one node of Figure 1).

    ``max_active_users`` is scenario 2's localized cardinality
    ("Programmer activated by at most five users at a time").
    """

    name: str
    max_active_users: int | None = None


@dataclass(frozen=True)
class SodSetSpec:
    """A declared SSD or DSD set: name, member roles, cardinality n."""

    name: str
    roles: frozenset[str]
    cardinality: int = 2


@dataclass
class PolicySpec:
    """The complete high-level policy for one enterprise.

    Mutable on purpose: policy *change* (the paper's day-doctor shift
    example) is an edit to this object followed by regeneration.
    """

    name: str = "policy"
    users: dict[str, UserSpec] = field(default_factory=dict)
    roles: dict[str, RoleSpec] = field(default_factory=dict)
    #: (senior, junior) immediate inheritance edges
    hierarchy: list[tuple[str, str]] = field(default_factory=list)
    ssd: dict[str, SodSetSpec] = field(default_factory=dict)
    dsd: dict[str, SodSetSpec] = field(default_factory=dict)
    #: (operation, object) registered permissions
    permissions: list[tuple[str, str]] = field(default_factory=list)
    #: (role, operation, object) grants
    grants: list[tuple[str, str, str]] = field(default_factory=list)
    #: (user, role) assignments
    assignments: list[tuple[str, str]] = field(default_factory=list)
    #: (scope, parent-or-None) S-A-O-C scope declarations, parents first
    scopes: list[tuple[str, str | None]] = field(default_factory=list)
    #: (role, operation, object, scope) grants effective in the
    #: scope's subtree only
    scoped_grants: list[tuple[str, str, str, str]] = field(
        default_factory=list)
    #: (user, role, scope) assignments bounded to the scope's subtree
    #: (the UA pair is implied; it is NOT repeated in ``assignments``)
    scoped_assignments: list[tuple[str, str, str]] = field(
        default_factory=list)
    #: (home_role, host_domain, host_role) federation role maps — the
    #: config-set form of ``Federation.add_mapping`` / CLI ``--map``
    federation_maps: list[tuple[str, str, str]] = field(
        default_factory=list)
    # -- extension constraints ------------------------------------------------
    prerequisites: list[PrerequisiteRole] = field(default_factory=list)
    post_conditions: list[PostConditionDependency] = field(
        default_factory=list)
    transactions: list[TransactionActivation] = field(default_factory=list)
    durations: list[DurationConstraint] = field(default_factory=list)
    enabling_windows: list[EnablingWindow] = field(default_factory=list)
    disabling_sod: list[DisablingTimeSoD] = field(default_factory=list)
    context_constraints: list[ContextConstraint] = field(
        default_factory=list)
    #: (purpose, parent-or-None) declarations, parents first
    purposes: list[tuple[str, str | None]] = field(default_factory=list)
    object_policies: list[ObjectPolicy] = field(default_factory=list)
    threshold_policies: list[ThresholdPolicy] = field(default_factory=list)
    hierarchy_limited: bool = False

    # -- convenience builders ----------------------------------------------------

    def add_role(self, name: str, max_active_users: int | None = None
                 ) -> "PolicySpec":
        self.roles[name] = RoleSpec(name, max_active_users)
        return self

    def add_user(self, name: str, max_active_roles: int | None = None
                 ) -> "PolicySpec":
        self.users[name] = UserSpec(name, max_active_roles)
        return self

    def add_hierarchy(self, senior: str, junior: str) -> "PolicySpec":
        self.hierarchy.append((senior, junior))
        return self

    def add_ssd(self, name: str, roles: set[str] | frozenset[str],
                cardinality: int = 2) -> "PolicySpec":
        self.ssd[name] = SodSetSpec(name, frozenset(roles), cardinality)
        return self

    def add_dsd(self, name: str, roles: set[str] | frozenset[str],
                cardinality: int = 2) -> "PolicySpec":
        self.dsd[name] = SodSetSpec(name, frozenset(roles), cardinality)
        return self

    def add_grant(self, role: str, operation: str, obj: str) -> "PolicySpec":
        if (operation, obj) not in self.permissions:
            self.permissions.append((operation, obj))
        self.grants.append((role, operation, obj))
        return self

    def add_assignment(self, user: str, role: str) -> "PolicySpec":
        self.assignments.append((user, role))
        return self

    def add_scope(self, name: str,
                  parent: str | None = None) -> "PolicySpec":
        """Declare a scope (parents must be declared first)."""
        self.scopes.append((name, parent))
        return self

    def add_scoped_grant(self, role: str, operation: str, obj: str,
                         scope: str) -> "PolicySpec":
        if (operation, obj) not in self.permissions:
            self.permissions.append((operation, obj))
        self.scoped_grants.append((role, operation, obj, scope))
        return self

    def add_scoped_assignment(self, user: str, role: str,
                              scope: str) -> "PolicySpec":
        self.scoped_assignments.append((user, role, scope))
        return self

    def add_federation_map(self, home_role: str, host_domain: str,
                           host_role: str) -> "PolicySpec":
        self.federation_maps.append((home_role, host_domain, host_role))
        return self

    # -- per-role derived properties (the Figure 1 node flags) --------------------

    def role_in_hierarchy(self, role: str) -> bool:
        return any(role in edge for edge in self.hierarchy)

    def role_in_ssd(self, role: str) -> bool:
        return any(role in s.roles for s in self.ssd.values())

    def role_in_dsd(self, role: str) -> bool:
        return any(role in s.roles for s in self.dsd.values())

    def role_constraints_summary(self, role: str) -> dict[str, bool]:
        """The flag vector stored in a Figure 1 role node."""
        return {
            "hierarchy": self.role_in_hierarchy(role),
            "static_sod": self.role_in_ssd(role),
            "dynamic_sod": self.role_in_dsd(role),
            "cardinality": self.roles[role].max_active_users is not None,
            "temporal": any(
                d.role == role for d in self.durations
            ) or any(
                w.role == role for w in self.enabling_windows
            ) or any(
                role in s.roles for s in self.disabling_sod
            ),
            "cfd": any(
                p.role == role for p in self.prerequisites
            ) or any(
                role in (p.trigger_role, p.required_role)
                for p in self.post_conditions
            ) or any(
                role in (t.dependent_role, t.anchor_role)
                for t in self.transactions
            ),
            "context": any(
                c.role == role for c in self.context_constraints
            ),
        }

    def clone(self) -> "PolicySpec":
        """Deep-enough copy for regeneration diffs (descriptors are
        immutable, containers are copied)."""
        return replace(
            self,
            users=dict(self.users),
            roles=dict(self.roles),
            hierarchy=list(self.hierarchy),
            ssd=dict(self.ssd),
            dsd=dict(self.dsd),
            permissions=list(self.permissions),
            grants=list(self.grants),
            assignments=list(self.assignments),
            scopes=list(self.scopes),
            scoped_grants=list(self.scoped_grants),
            scoped_assignments=list(self.scoped_assignments),
            federation_maps=list(self.federation_maps),
            prerequisites=list(self.prerequisites),
            post_conditions=list(self.post_conditions),
            transactions=list(self.transactions),
            durations=list(self.durations),
            enabling_windows=list(self.enabling_windows),
            disabling_sod=list(self.disabling_sod),
            context_constraints=list(self.context_constraints),
            purposes=list(self.purposes),
            object_policies=list(self.object_policies),
            threshold_policies=list(self.threshold_policies),
        )


def build_model(spec: PolicySpec) -> RBACModel:
    """Load a spec's static state into a fresh :class:`RBACModel`.

    Order matters and mirrors the standard's dependencies: element sets,
    then hierarchy, then SoD sets, then grants/assignments (assignment
    SSD checks see the final hierarchy).
    """
    model = RBACModel(hierarchy_limited=spec.hierarchy_limited)
    for role in spec.roles.values():
        model.add_role(role.name, role.max_active_users)
    for user in spec.users.values():
        model.add_user(user.name, user.max_active_roles)
    for name, parent in spec.scopes:
        model.add_scope(name, parent)
    for senior, junior in spec.hierarchy:
        model.add_inheritance(senior, junior)
    for sod in spec.ssd.values():
        model.create_ssd_set(sod.name, sod.roles, sod.cardinality)
    for sod in spec.dsd.values():
        model.create_dsd_set(sod.name, sod.roles, sod.cardinality)
    for operation, obj in spec.permissions:
        model.add_permission(operation, obj)
    for role, operation, obj in spec.grants:
        model.grant_permission(role, operation, obj)
    for role, operation, obj, scope in spec.scoped_grants:
        model.grant_permission(role, operation, obj, scope=scope)
    for user, role in spec.assignments:
        model.assign_user(user, role)
    # scoped assignments: the UA pair is committed flat first (SSD
    # checks included), then immediately bounded — the pair never
    # serves a check between the two calls since build_model runs
    # before any session exists
    for user, role, scope in spec.scoped_assignments:
        if role not in model.assigned_roles(user):
            model.assign_user(user, role)
        model.limit_assignment_scope(user, role, scope)
    return model
