"""A textual policy language (the RBAC Manager GUI substitute).

The paper's administrators specify enterprise policies by drag-n-drop in
the RBAC Manager widget toolkit; the GUI is only a front-end that builds
the access-specification graph.  This module provides an equivalent
front-end as a small declarative language parsed by a hand-written
lexer + recursive-descent parser into a
:class:`~repro.policy.spec.PolicySpec`.

Grammar (one statement per ``;``-terminated line, ``#`` comments)::

    policy <name> {
      limited_hierarchy ;
      role <name> [ max_active_users <n> ] ;
      user <name> [ max_active_roles <n> ] ;
      hierarchy A > B > C ;                       # chain of seniority
      ssd <name> roles A, B [, C...] [cardinality <n>] ;
      dsd <name> roles A, B [, C...] [cardinality <n>] ;
      permission <op> on <object> ;
      grant <op> on <object> to <role> [ in <scope> ] ;
      assign <user> to <role> [ in <scope> ] ;
      scope <name> [ under <parent> ] ;            # S-A-O-C scope tree
      federate <home_role> to <host_domain> as <host_role> ;
      prerequisite <role> requires <role> ;
      require <role> when enabling <role> ;        # post-condition CFD
      transaction <role> during <role> ;           # Rule 9
      duration <role> <seconds> [for <user>] ;     # Rule 7
      enable <role> daily <hh:mm> to <hh:mm> ;     # GTRBAC window
      disabling_sod <name> roles A, B [,...] daily <hh:mm> to <hh:mm> ;
      context <role> requires <var> <op> <value> [for access] ;
      purpose <name> [under <parent>] ;
      object_policy <op> on <object> for <purpose> [obliges <name>,...] ;
      threshold <name> event <accessDenied|activationDenied>
                [group_by <param>|global] count <n> window <seconds>
                [lock_user] [deactivate A, B] [lockout <seconds>] ;
    }

Identifiers may contain letters, digits, ``_``, ``-`` and ``.``
(object names like ``patient.dat``); arbitrary text goes in double
quotes.  Example::

    policy XYZ {
      role Clerk; role PC; role PM; role AC; role AM;
      hierarchy PM > PC > Clerk;
      hierarchy AM > AC > Clerk;
      ssd PurchaseApproval roles PC, AC;
    }
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import CalendarExpressionError, PolicySyntaxError
from repro.events.calendar import parse_time_of_day
from repro.extensions.cfd import (
    PostConditionDependency,
    PrerequisiteRole,
    TransactionActivation,
)
from repro.extensions.context import ContextConstraint, ContextOp
from repro.extensions.privacy import ObjectPolicy
from repro.gtrbac.constraints import (
    DisablingTimeSoD,
    DurationConstraint,
    EnablingWindow,
)
from repro.gtrbac.periodic import PeriodicInterval
from repro.policy.spec import PolicySpec
from repro.security.monitor import ThresholdPolicy

# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>\d+(?:\.\d+)?(?!['\w.:]))
  | (?P<time>\d{1,2}:\d{2}(?::\d{2})?)
  | (?P<word>[A-Za-z_][\w.\-]*)
  | (?P<op>==|!=|<=|>=|[{};,><])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "string" | "number" | "time" | "word" | "op" | "eof"
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise PolicySyntaxError(
                f"unexpected character {source[pos]!r}", line, column)
        kind = match.lastgroup or ""
        text = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, line, pos - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

_CONTEXT_OPS = {op.value: op for op in ContextOp}


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -----------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _next(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> Exception:
        token = token or self._peek()
        return PolicySyntaxError(message, token.line, token.column)

    def _expect_op(self, text: str) -> Token:
        token = self._next()
        if token.kind != "op" or token.text != text:
            raise self._error(f"expected {text!r}, got {token.text!r}",
                              token)
        return token

    def _expect_word(self, *expected: str) -> Token:
        token = self._next()
        if token.kind != "word":
            raise self._error(
                f"expected identifier, got {token.text!r}", token)
        if expected and token.text not in expected:
            raise self._error(
                f"expected one of {expected}, got {token.text!r}", token)
        return token

    def _ident(self) -> str:
        token = self._next()
        if token.kind == "word":
            return token.text
        if token.kind == "string":
            return token.text[1:-1]
        raise self._error(f"expected a name, got {token.text!r}", token)

    def _number(self) -> float:
        token = self._next()
        if token.kind != "number":
            raise self._error(f"expected a number, got {token.text!r}",
                              token)
        return float(token.text)

    def _time(self) -> str:
        token = self._next()
        if token.kind not in ("time", "number"):
            raise self._error(
                f"expected a clock time (HH:MM), got {token.text!r}",
                token)
        return token.text

    def _at_word(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "word" and token.text == text

    def _eat_word(self, text: str) -> bool:
        if self._at_word(text):
            self._next()
            return True
        return False

    def _semicolon(self) -> None:
        self._expect_op(";")

    def _name_list(self) -> list[str]:
        names = [self._ident()]
        while self._peek().kind == "op" and self._peek().text == ",":
            self._next()
            names.append(self._ident())
        return names

    # -- grammar --------------------------------------------------------------------

    def parse(self) -> PolicySpec:
        self._expect_word("policy")
        spec = PolicySpec(name=self._ident())
        self._expect_op("{")
        while not (self._peek().kind == "op" and self._peek().text == "}"):
            if self._peek().kind == "eof":
                raise self._error("unterminated policy block: missing '}'")
            self._statement(spec)
        self._expect_op("}")
        trailing = self._peek()
        if trailing.kind != "eof":
            raise self._error(
                f"unexpected input after policy block: {trailing.text!r}",
                trailing)
        return spec

    def _statement(self, spec: PolicySpec) -> None:
        keyword = self._expect_word()
        handler = getattr(self, f"_stmt_{keyword.text}", None)
        if handler is None:
            raise self._error(
                f"unknown statement keyword {keyword.text!r}", keyword)
        try:
            handler(spec)
        except PolicySyntaxError:
            raise
        except (ValueError, CalendarExpressionError) as exc:
            # descriptor constructors validate their arguments (e.g. a
            # non-positive duration); surface those as located syntax
            # errors rather than bare ValueErrors
            raise self._error(str(exc), keyword) from exc

    # each _stmt_* consumes through the terminating ';'

    def _stmt_limited_hierarchy(self, spec: PolicySpec) -> None:
        spec.hierarchy_limited = True
        self._semicolon()

    def _stmt_role(self, spec: PolicySpec) -> None:
        name = self._ident()
        max_users: int | None = None
        if self._eat_word("max_active_users"):
            max_users = int(self._number())
        spec.add_role(name, max_users)
        self._semicolon()

    def _stmt_user(self, spec: PolicySpec) -> None:
        name = self._ident()
        max_roles: int | None = None
        if self._eat_word("max_active_roles"):
            max_roles = int(self._number())
        spec.add_user(name, max_roles)
        self._semicolon()

    def _stmt_hierarchy(self, spec: PolicySpec) -> None:
        chain = [self._ident()]
        while self._peek().kind == "op" and self._peek().text == ">":
            self._next()
            chain.append(self._ident())
        if len(chain) < 2:
            raise self._error("hierarchy needs at least 'senior > junior'")
        for senior, junior in zip(chain, chain[1:]):
            spec.add_hierarchy(senior, junior)
        self._semicolon()

    def _sod_body(self) -> tuple[list[str], int]:
        self._expect_word("roles")
        roles = self._name_list()
        cardinality = 2
        if self._eat_word("cardinality"):
            cardinality = int(self._number())
        return roles, cardinality

    def _stmt_ssd(self, spec: PolicySpec) -> None:
        name = self._ident()
        roles, cardinality = self._sod_body()
        spec.add_ssd(name, set(roles), cardinality)
        self._semicolon()

    def _stmt_dsd(self, spec: PolicySpec) -> None:
        name = self._ident()
        roles, cardinality = self._sod_body()
        spec.add_dsd(name, set(roles), cardinality)
        self._semicolon()

    def _stmt_permission(self, spec: PolicySpec) -> None:
        operation = self._ident()
        self._expect_word("on")
        obj = self._ident()
        if (operation, obj) not in spec.permissions:
            spec.permissions.append((operation, obj))
        self._semicolon()

    def _stmt_grant(self, spec: PolicySpec) -> None:
        operation = self._ident()
        self._expect_word("on")
        obj = self._ident()
        self._expect_word("to")
        role = self._ident()
        if self._eat_word("in"):
            spec.add_scoped_grant(role, operation, obj, self._ident())
        else:
            spec.add_grant(role, operation, obj)
        self._semicolon()

    def _stmt_assign(self, spec: PolicySpec) -> None:
        user = self._ident()
        self._expect_word("to")
        role = self._ident()
        if self._eat_word("in"):
            spec.add_scoped_assignment(user, role, self._ident())
        else:
            spec.add_assignment(user, role)
        self._semicolon()

    def _stmt_scope(self, spec: PolicySpec) -> None:
        name = self._ident()
        parent: str | None = None
        if self._eat_word("under"):
            parent = self._ident()
        spec.add_scope(name, parent)
        self._semicolon()

    def _stmt_federate(self, spec: PolicySpec) -> None:
        home_role = self._ident()
        self._expect_word("to")
        host_domain = self._ident()
        self._expect_word("as")
        host_role = self._ident()
        spec.add_federation_map(home_role, host_domain, host_role)
        self._semicolon()

    def _stmt_prerequisite(self, spec: PolicySpec) -> None:
        role = self._ident()
        self._expect_word("requires")
        prerequisite = self._ident()
        spec.prerequisites.append(PrerequisiteRole(role, prerequisite))
        self._semicolon()

    def _stmt_require(self, spec: PolicySpec) -> None:
        required = self._ident()
        self._expect_word("when")
        self._expect_word("enabling")
        trigger = self._ident()
        spec.post_conditions.append(
            PostConditionDependency(trigger, required))
        self._semicolon()

    def _stmt_transaction(self, spec: PolicySpec) -> None:
        dependent = self._ident()
        self._expect_word("during")
        anchor = self._ident()
        spec.transactions.append(TransactionActivation(dependent, anchor))
        self._semicolon()

    def _stmt_duration(self, spec: PolicySpec) -> None:
        role = self._ident()
        delta = self._number()
        user: str | None = None
        if self._eat_word("for"):
            user = self._ident()
        spec.durations.append(DurationConstraint(role, delta, user))
        self._semicolon()

    def _daily_interval(self) -> PeriodicInterval:
        self._expect_word("daily")
        start = self._time()
        self._expect_word("to")
        end = self._time()
        days = None
        if self._eat_word("on"):
            from repro.gtrbac.periodic import parse_days
            days = parse_days(self._name_list())
        return PeriodicInterval(parse_time_of_day(start),
                                parse_time_of_day(end), days=days)

    def _stmt_enable(self, spec: PolicySpec) -> None:
        role = self._ident()
        interval = self._daily_interval()
        spec.enabling_windows.append(EnablingWindow(role, interval))
        self._semicolon()

    def _stmt_disabling_sod(self, spec: PolicySpec) -> None:
        name = self._ident()
        self._expect_word("roles")
        roles = self._name_list()
        interval = self._daily_interval()
        spec.disabling_sod.append(
            DisablingTimeSoD(name, frozenset(roles), interval))
        self._semicolon()

    def _stmt_context(self, spec: PolicySpec) -> None:
        role = self._ident()
        self._expect_word("requires")
        variable = self._ident()
        op_token = self._next()
        if op_token.text not in _CONTEXT_OPS:
            raise self._error(
                f"expected a comparison operator, got {op_token.text!r}",
                op_token)
        value_token = self._next()
        value: object
        if value_token.kind == "number":
            value = float(value_token.text)
        elif value_token.kind == "string":
            value = value_token.text[1:-1]
        elif value_token.kind == "word":
            value = value_token.text
        else:
            raise self._error(
                f"expected a value, got {value_token.text!r}", value_token)
        applies_to = "activate"
        if self._eat_word("for"):
            what = self._expect_word("access", "activation")
            applies_to = "access" if what.text == "access" else "activate"
        spec.context_constraints.append(ContextConstraint(
            role=role, variable=variable,
            op=_CONTEXT_OPS[op_token.text], value=value,
            applies_to=applies_to))
        self._semicolon()

    def _stmt_purpose(self, spec: PolicySpec) -> None:
        name = self._ident()
        parent: str | None = None
        if self._eat_word("under"):
            parent = self._ident()
        spec.purposes.append((name, parent))
        self._semicolon()

    def _stmt_object_policy(self, spec: PolicySpec) -> None:
        operation = self._ident()
        self._expect_word("on")
        obj = self._ident()
        self._expect_word("for")
        purpose = self._ident()
        obligations: tuple[str, ...] = ()
        if self._eat_word("obliges"):
            obligations = tuple(self._name_list())
        spec.object_policies.append(
            ObjectPolicy(obj, operation, purpose, obligations))
        self._semicolon()

    def _stmt_threshold(self, spec: PolicySpec) -> None:
        name = self._ident()
        event = "accessDenied"
        group_by: str | None = "user"
        count = 5
        window = 60.0
        lock_users = False
        deactivate: tuple[str, ...] = ()
        lockout: float | None = None
        while not (self._peek().kind == "op" and self._peek().text == ";"):
            if self._eat_word("event"):
                event = self._ident()
            elif self._eat_word("group_by"):
                value = self._ident()
                group_by = None if value == "global" else value
            elif self._eat_word("count"):
                count = int(self._number())
            elif self._eat_word("window"):
                window = self._number()
            elif self._eat_word("lock_user"):
                lock_users = True
            elif self._eat_word("deactivate"):
                deactivate = tuple(self._name_list())
            elif self._eat_word("lockout"):
                lockout = self._number()
            else:
                raise self._error(
                    f"unknown threshold option {self._peek().text!r}")
        spec.threshold_policies.append(ThresholdPolicy(
            name=name, event=event, group_by=group_by, threshold=count,
            window=window, lock_users=lock_users,
            deactivate_roles=deactivate, lockout_duration=lockout))
        self._semicolon()


def parse_policy(source: str) -> PolicySpec:
    """Parse policy text into a :class:`~repro.policy.spec.PolicySpec`.

    Raises :class:`~repro.errors.PolicySyntaxError` with line/column on
    malformed input.  The result is *not* validated; run
    :func:`~repro.policy.validator.validate_policy` (or use
    ``ActiveRBACEngine.from_policy``) for consistency checking.
    """
    return _Parser(tokenize(source)).parse()


_BARE_WORD_RE = re.compile(r"[A-Za-z_][\w.\-]*\Z")


def _q(name: str) -> str:
    """Quote an identifier the lexer cannot read bare (e.g. scope
    paths containing ``/``)."""
    return name if _BARE_WORD_RE.fullmatch(name) else f'"{name}"'


def render_policy(spec: PolicySpec) -> str:
    """Serialize a spec back to DSL text (round-trip tested).

    Only statements the DSL can express are rendered; the output parses
    to an equivalent spec.
    """
    lines = [f"policy {spec.name} {{"]
    if spec.hierarchy_limited:
        lines.append("  limited_hierarchy;")
    for role in spec.roles.values():
        extra = (f" max_active_users {role.max_active_users}"
                 if role.max_active_users is not None else "")
        lines.append(f"  role {role.name}{extra};")
    for user in spec.users.values():
        extra = (f" max_active_roles {user.max_active_roles}"
                 if user.max_active_roles is not None else "")
        lines.append(f"  user {user.name}{extra};")
    for scope, parent in spec.scopes:
        suffix = f" under {_q(parent)}" if parent else ""
        lines.append(f"  scope {_q(scope)}{suffix};")
    for senior, junior in spec.hierarchy:
        lines.append(f"  hierarchy {senior} > {junior};")
    for sod in spec.ssd.values():
        roles = ", ".join(sorted(sod.roles))
        lines.append(f"  ssd {sod.name} roles {roles} "
                     f"cardinality {sod.cardinality};")
    for sod in spec.dsd.values():
        roles = ", ".join(sorted(sod.roles))
        lines.append(f"  dsd {sod.name} roles {roles} "
                     f"cardinality {sod.cardinality};")
    for operation, obj in spec.permissions:
        lines.append(f"  permission {operation} on {obj};")
    for role, operation, obj in spec.grants:
        lines.append(f"  grant {operation} on {obj} to {role};")
    for role, operation, obj, scope in spec.scoped_grants:
        lines.append(
            f"  grant {operation} on {obj} to {role} in {_q(scope)};")
    for user, role in spec.assignments:
        lines.append(f"  assign {user} to {role};")
    for user, role, scope in spec.scoped_assignments:
        lines.append(f"  assign {user} to {role} in {_q(scope)};")
    for home_role, host_domain, host_role in spec.federation_maps:
        lines.append(
            f"  federate {home_role} to {host_domain} as {host_role};")
    for pre in spec.prerequisites:
        lines.append(f"  prerequisite {pre.role} requires "
                     f"{pre.prerequisite};")
    for post in spec.post_conditions:
        lines.append(f"  require {post.required_role} when enabling "
                     f"{post.trigger_role};")
    for txn in spec.transactions:
        lines.append(f"  transaction {txn.dependent_role} during "
                     f"{txn.anchor_role};")
    for duration in spec.durations:
        suffix = f" for {duration.user}" if duration.user else ""
        lines.append(f"  duration {duration.role} "
                     f"{duration.delta:g}{suffix};")

    def tod(seconds: float) -> str:
        seconds = int(seconds)
        return f"{seconds // 3600:02d}:{(seconds % 3600) // 60:02d}"

    def days_suffix(interval) -> str:
        if interval.days is None:
            return ""
        from repro.gtrbac.periodic import DAY_NAMES
        names = ", ".join(DAY_NAMES[d] for d in sorted(interval.days))
        return f" on {names}"

    for window in spec.enabling_windows:
        lines.append(
            f"  enable {window.role} daily "
            f"{tod(window.interval.start_tod)} to "
            f"{tod(window.interval.end_tod)}"
            f"{days_suffix(window.interval)};")
    for sod in spec.disabling_sod:
        roles = ", ".join(sorted(sod.roles))
        lines.append(
            f"  disabling_sod {sod.name} roles {roles} daily "
            f"{tod(sod.interval.start_tod)} to "
            f"{tod(sod.interval.end_tod)}"
            f"{days_suffix(sod.interval)};")
    for constraint in spec.context_constraints:
        value = constraint.value
        rendered = (f'"{value}"' if isinstance(value, str) else f"{value:g}")
        suffix = " for access" if constraint.applies_to == "access" else ""
        lines.append(
            f"  context {constraint.role} requires {constraint.variable} "
            f"{constraint.op.value} {rendered}{suffix};")
    for purpose, parent in spec.purposes:
        suffix = f" under {parent}" if parent else ""
        lines.append(f"  purpose {purpose}{suffix};")
    for object_policy in spec.object_policies:
        suffix = ""
        if object_policy.obligations:
            suffix = " obliges " + ", ".join(object_policy.obligations)
        lines.append(
            f"  object_policy {object_policy.operation} on "
            f"{object_policy.obj} for {object_policy.purpose}{suffix};")
    for threshold in spec.threshold_policies:
        parts = [f"  threshold {threshold.name} event {threshold.event}"]
        parts.append("group_by " + (threshold.group_by or "global"))
        parts.append(f"count {threshold.threshold}")
        parts.append(f"window {threshold.window:g}")
        if threshold.lock_users:
            parts.append("lock_user")
        if threshold.deactivate_roles:
            parts.append("deactivate "
                         + ", ".join(threshold.deactivate_roles))
        if threshold.lockout_duration is not None:
            parts.append(f"lockout {threshold.lockout_duration:g}")
        lines.append(" ".join(parts) + ";")
    lines.append("}")
    return "\n".join(lines)
