"""Policy consistency checking.

"Currently, we assume that the policies specified using NIST RBAC and
others do not have inconsistencies, but we are in the process of
developing advanced consistency checking mechanisms" (paper §5).  This
module is that future-work item, implemented: every check returns a
human-readable issue string; :func:`validate_policy` aggregates them and
(optionally) raises :class:`~repro.errors.PolicyValidationError`.

Checks:

* referential integrity — every name a relation mentions is declared;
* hierarchy is a partial order (no cycles; limited-mode fan-out);
* SSD/DSD sets are well-formed (cardinality bounds) and SSD sets are
  consistent with the hierarchy (a role and its senior cannot be forced
  apart — the senior is always authorized for the junior);
* assignments do not violate SSD (including inherited authorization);
* CFD sanity — prerequisite/transaction/post-condition graphs acyclic,
  no role is its own partner;
* temporal sanity — positive durations, non-empty disabling-SoD sets,
  at most one enabling window per role;
* privacy — object policies reference declared purposes.
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.errors import PolicyValidationError
from repro.policy.spec import PolicySpec


def _find_cycle(edges: list[tuple[str, str]]) -> list[str] | None:
    """Return one cycle (as a node list) in the directed graph, if any."""
    graph: dict[str, list[str]] = defaultdict(list)
    indegree: dict[str, int] = defaultdict(int)
    nodes: set[str] = set()
    for src, dst in edges:
        graph[src].append(dst)
        indegree[dst] += 1
        nodes.update((src, dst))
    queue = deque(n for n in nodes if indegree[n] == 0)
    seen = 0
    while queue:
        node = queue.popleft()
        seen += 1
        for neighbour in graph[node]:
            indegree[neighbour] -= 1
            if indegree[neighbour] == 0:
                queue.append(neighbour)
    if seen == len(nodes):
        return None
    # Some cycle exists; walk from any remaining node to exhibit one.
    remaining = [n for n in nodes if indegree[n] > 0]
    start = remaining[0]
    path, visited = [start], {start}
    node = start
    while True:
        node = next(n for n in graph[node] if indegree[n] > 0)
        if node in visited:
            return path[path.index(node):] + [node]
        visited.add(node)
        path.append(node)


def _juniors_inclusive(role: str,
                       down: dict[str, set[str]]) -> set[str]:
    result = {role}
    queue = deque(down.get(role, ()))
    while queue:
        node = queue.popleft()
        if node in result:
            continue
        result.add(node)
        queue.extend(down.get(node, ()))
    return result


def validate_policy(spec: PolicySpec,
                    raise_on_error: bool = False) -> list[str]:
    """Check a policy for inconsistencies; returns the issue list.

    With ``raise_on_error=True`` a non-empty issue list raises
    :class:`~repro.errors.PolicyValidationError`.
    """
    issues: list[str] = []
    roles = set(spec.roles)
    users = set(spec.users)

    def known_role(role: str, where: str) -> bool:
        if role not in roles:
            issues.append(f"{where} references undeclared role {role!r}")
            return False
        return True

    def known_user(user: str, where: str) -> bool:
        if user not in users:
            issues.append(f"{where} references undeclared user {user!r}")
            return False
        return True

    # -- hierarchy -------------------------------------------------------------
    down: dict[str, set[str]] = defaultdict(set)
    for senior, junior in spec.hierarchy:
        known_role(senior, "hierarchy")
        known_role(junior, "hierarchy")
        if senior == junior:
            issues.append(f"hierarchy self-loop on role {senior!r}")
        down[senior].add(junior)
    cycle = _find_cycle(spec.hierarchy)
    if cycle:
        issues.append(
            "hierarchy contains a cycle: " + " -> ".join(cycle)
        )
    if spec.hierarchy_limited:
        for senior, juniors in down.items():
            if len(juniors) > 1:
                issues.append(
                    f"limited hierarchy violated: role {senior!r} has "
                    f"{len(juniors)} immediate descendants "
                    f"{sorted(juniors)}"
                )

    # -- SoD sets -----------------------------------------------------------------
    for sod in spec.ssd.values():
        for role in sod.roles:
            known_role(role, f"SSD set {sod.name!r}")
        if not 2 <= sod.cardinality <= len(sod.roles):
            issues.append(
                f"SSD set {sod.name!r}: cardinality {sod.cardinality} "
                f"outside [2, {len(sod.roles)}]"
            )
    for sod in spec.dsd.values():
        for role in sod.roles:
            known_role(role, f"DSD set {sod.name!r}")
        if not 2 <= sod.cardinality <= len(sod.roles):
            issues.append(
                f"DSD set {sod.name!r}: cardinality {sod.cardinality} "
                f"outside [2, {len(sod.roles)}]"
            )

    # SSD vs hierarchy: any single role authorized for >= n set members
    # makes the constraint unsatisfiable for every user of that role.
    if not cycle:
        for sod in spec.ssd.values():
            for role in roles:
                covered = _juniors_inclusive(role, down) & sod.roles
                if len(covered) >= sod.cardinality:
                    issues.append(
                        f"SSD set {sod.name!r} conflicts with the "
                        f"hierarchy: role {role!r} alone is authorized "
                        f"for {sorted(covered)}"
                    )

    # -- assignments vs SSD ----------------------------------------------------------
    assigned: dict[str, set[str]] = defaultdict(set)
    for user, role in spec.assignments:
        ok = known_user(user, "assignment") & known_role(role, "assignment")
        if ok:
            assigned[user].add(role)
    # scoped assignments commit the UA pair too (then bound it), so
    # they participate in the SSD feasibility check identically
    for user, role, _scope in spec.scoped_assignments:
        if user in users and role in roles:
            assigned[user].add(role)
    if not cycle:
        for user, direct in assigned.items():
            authorized: set[str] = set()
            for role in direct:
                authorized |= _juniors_inclusive(role, down)
            for sod in spec.ssd.values():
                overlap = authorized & sod.roles
                if len(overlap) >= sod.cardinality:
                    issues.append(
                        f"assignments of user {user!r} violate SSD set "
                        f"{sod.name!r}: authorized for {sorted(overlap)}"
                    )

    # -- grants ----------------------------------------------------------------------
    declared_perms = set(spec.permissions)
    for role, operation, obj in spec.grants:
        known_role(role, "grant")
        if (operation, obj) not in declared_perms:
            issues.append(
                f"grant to {role!r} references undeclared permission "
                f"({operation!r}, {obj!r})"
            )

    # -- scopes ---------------------------------------------------------------------
    from repro.rbac.scopes import SCOPE_ROOT
    declared_scopes: set[str] = set()
    for scope, parent in spec.scopes:
        if scope == SCOPE_ROOT:
            issues.append(
                f"scope declaration uses the reserved root name "
                f"{SCOPE_ROOT!r}")
            continue
        if scope in declared_scopes:
            issues.append(f"duplicate scope declaration {scope!r}")
        if (parent is not None and parent != SCOPE_ROOT
                and parent not in declared_scopes):
            issues.append(
                f"scope {scope!r} references undeclared parent "
                f"{parent!r} (parents must be declared first)")
        declared_scopes.add(scope)

    def known_scope(scope: str, where: str) -> None:
        if scope not in declared_scopes:
            issues.append(
                f"{where} references undeclared scope {scope!r}")

    for role, operation, obj, scope in spec.scoped_grants:
        known_role(role, "scoped grant")
        known_scope(scope, f"scoped grant to {role!r}")
        if (operation, obj) not in declared_perms:
            issues.append(
                f"scoped grant to {role!r} references undeclared "
                f"permission ({operation!r}, {obj!r})"
            )
    for user, role, scope in spec.scoped_assignments:
        known_user(user, "scoped assignment")
        known_role(role, "scoped assignment")
        known_scope(scope, f"scoped assignment of {user!r}")

    # -- federation role maps ---------------------------------------------------------
    for home_role, host_domain, host_role in spec.federation_maps:
        known_role(home_role, f"federation map to {host_domain!r}")

    # -- control-flow dependencies ------------------------------------------------------
    for pre in spec.prerequisites:
        known_role(pre.role, "prerequisite")
        known_role(pre.prerequisite, "prerequisite")
    pre_cycle = _find_cycle([
        (p.role, p.prerequisite) for p in spec.prerequisites
    ])
    if pre_cycle:
        issues.append(
            "prerequisite roles form a cycle: " + " -> ".join(pre_cycle)
        )
    for post in spec.post_conditions:
        known_role(post.trigger_role, "post-condition")
        known_role(post.required_role, "post-condition")
    for txn in spec.transactions:
        known_role(txn.dependent_role, "transaction activation")
        known_role(txn.anchor_role, "transaction activation")
    txn_cycle = _find_cycle([
        (t.dependent_role, t.anchor_role) for t in spec.transactions
    ])
    if txn_cycle:
        issues.append(
            "transaction-activation anchors form a cycle: "
            + " -> ".join(txn_cycle)
        )

    # -- temporal --------------------------------------------------------------------------
    for duration in spec.durations:
        known_role(duration.role, "duration constraint")
        if duration.user is not None:
            known_user(duration.user, "duration constraint")
    window_roles: set[str] = set()
    for window in spec.enabling_windows:
        known_role(window.role, "enabling window")
        if window.role in window_roles:
            issues.append(
                f"role {window.role!r} has multiple enabling windows; "
                "only one is supported (the last declaration wins)"
            )
        window_roles.add(window.role)
    for sod in spec.disabling_sod:
        for role in sod.roles:
            known_role(role, f"disabling-time SoD {sod.name!r}")

    # -- context / privacy -------------------------------------------------------------------
    for constraint in spec.context_constraints:
        known_role(constraint.role, "context constraint")
    declared_purposes = {p for p, _parent in spec.purposes}
    for purpose, parent in spec.purposes:
        if parent is not None and parent not in declared_purposes:
            issues.append(
                f"purpose {purpose!r} references undeclared parent "
                f"{parent!r}"
            )
    for object_policy in spec.object_policies:
        if object_policy.purpose not in declared_purposes:
            issues.append(
                f"object policy for {object_policy.obj!r} references "
                f"undeclared purpose {object_policy.purpose!r}"
            )

    # -- assignments reference users with cardinality sanity -------------------------------
    for user_spec in spec.users.values():
        if (user_spec.max_active_roles is not None
                and user_spec.max_active_roles < 1):
            issues.append(
                f"user {user_spec.name!r}: max_active_roles must be >= 1"
            )
    for role_spec in spec.roles.values():
        if (role_spec.max_active_users is not None
                and role_spec.max_active_users < 1):
            issues.append(
                f"role {role_spec.name!r}: max_active_users must be >= 1"
            )

    if issues and raise_on_error:
        raise PolicyValidationError(issues)
    return issues
