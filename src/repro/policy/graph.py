"""The access-specification graph: Figure 1's data structure.

"All the nodes represent an instance of entity R (i.e., roles) ...
Flags corresponding to relationships (i.e., hierarchy, static SoD
relations, and active security constraints) are stored in the node ...
Parent nodes are connected to the child nodes when there is a
hierarchical relationship and static SoD constraints are represented as
a dashed line between two nodes.  Each node has an internal subscriber
list that is used to point to the parent node.  This pointer allow the
child nodes to identify their parent nodes when the list of authorized
users is required.  On the other hand, constraints can be propagated in
a bottom up manner using the pointers." (paper §5)

A :class:`PolicyGraph` is derived from a :class:`~repro.policy.spec.PolicySpec`
(the system generates the pointers; users never specify them).  It is
the structure the rule generator conceptually walks; we keep it explicit
both for fidelity and because its rendering *is* the reproduction of
Figure 1 (see ``benchmarks/test_fig1_xyz.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.policy.spec import PolicySpec


@dataclass
class RoleNode:
    """One role node with its relationship flags and subscriber list."""

    name: str
    #: relationship flags, exactly the Figure 1 set plus the extension
    #: families this reproduction supports
    flags: dict[str, bool] = field(default_factory=dict)
    #: child -> parent subscriber pointers ("internal subscriber list")
    subscribers: list[str] = field(default_factory=list)
    #: immediate children (parent -> child solid edges)
    children: list[str] = field(default_factory=list)
    #: dashed static-SoD edges incident to this node
    ssd_partners: list[str] = field(default_factory=list)

    def describe(self) -> str:
        set_flags = sorted(k for k, v in self.flags.items() if v)
        parts = [f"node {self.name}"]
        if set_flags:
            parts.append("flags={" + ", ".join(set_flags) + "}")
        if self.subscribers:
            parts.append("parents->" + ",".join(sorted(self.subscribers)))
        if self.ssd_partners:
            parts.append("ssd--" + ",".join(sorted(self.ssd_partners)))
        return " ".join(parts)


class PolicyGraph:
    """The instantiated policy: role nodes, edges, flags, pointers."""

    def __init__(self, spec: PolicySpec) -> None:
        self.spec = spec
        self.nodes: dict[str, RoleNode] = {}
        self._build()

    def _build(self) -> None:
        spec = self.spec
        for name in spec.roles:
            self.nodes[name] = RoleNode(
                name=name, flags=spec.role_constraints_summary(name))
        for senior, junior in spec.hierarchy:
            # solid edge parent -> child; subscriber pointer child -> parent
            if senior in self.nodes and junior in self.nodes:
                self.nodes[senior].children.append(junior)
                self.nodes[junior].subscribers.append(senior)
        for sod in spec.ssd.values():
            members = sorted(sod.roles)
            for role in members:
                if role not in self.nodes:
                    continue
                partners = [m for m in members if m != role]
                self.nodes[role].ssd_partners.extend(partners)
        # propagate SSD flags bottom-up along the subscriber pointers:
        # "PM inherits the static SoD constraints from PC" (paper §5)
        changed = True
        while changed:
            changed = False
            for node in self.nodes.values():
                if not node.flags.get("static_sod"):
                    continue
                for parent in node.subscribers:
                    parent_node = self.nodes[parent]
                    if not parent_node.flags.get("static_sod_inherited"):
                        parent_node.flags["static_sod_inherited"] = True
                        changed = True

    # -- queries ---------------------------------------------------------------

    def node(self, name: str) -> RoleNode:
        return self.nodes[name]

    def roots(self) -> list[str]:
        """Roles with no parents (hierarchy tops)."""
        return sorted(
            name for name, node in self.nodes.items() if not node.subscribers
        )

    def effective_ssd_partners(self, role: str) -> set[str]:
        """SSD partners including those inherited from juniors: a user
        of ``role`` is authorized for all its juniors, so their SSD
        partners constrain ``role`` too (enterprise XYZ: PM inherits
        PC's conflict with AC)."""
        partners: set[str] = set(self.nodes[role].ssd_partners)
        for junior in self._juniors(role):
            partners.update(self.nodes[junior].ssd_partners)
        partners.discard(role)
        return partners

    def _juniors(self, role: str) -> set[str]:
        result: set[str] = set()
        stack = list(self.nodes[role].children)
        while stack:
            node = stack.pop()
            if node in result:
                continue
            result.add(node)
            stack.extend(self.nodes[node].children)
        return result

    def render(self) -> str:
        """A textual rendering of the Figure 1 graph."""
        lines = [f"policy {self.spec.name!r}: "
                 f"{len(self.nodes)} role node(s)"]
        for name in sorted(self.nodes):
            lines.append("  " + self.nodes[name].describe())
        edges = [f"{s} -> {j}" for s, j in sorted(self.spec.hierarchy)]
        if edges:
            lines.append("  hierarchy edges: " + "; ".join(edges))
        for sod in self.spec.ssd.values():
            lines.append(
                f"  ssd {sod.name}: {{" + ", ".join(sorted(sod.roles))
                + f"}} n={sod.cardinality} (dashed)")
        return "\n".join(lines)
