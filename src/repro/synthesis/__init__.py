"""Automatic synthesis of OWTE rules from high-level policy.

"OWTE rules are **not** created manually by administrators" (paper
§4.3): the generator instantiates the policy into events and rules —
the paper's Section 5 pipeline (policy graph -> rule pool) — and the
regeneration module re-derives only the affected rules when the policy
changes (the day-doctor shift example).

* :mod:`repro.synthesis.templates` — one builder per rule shape the
  paper shows (AAR1..AAR4, CC, DAR, ER/DR, TSOD, ASEC, the globalized
  administrative and checkAccess rules);
* :mod:`repro.synthesis.generator` — orchestrates event definition and
  rule generation per role, with tag-based attribution for regeneration;
* :mod:`repro.synthesis.regenerate` — policy editing + incremental
  regeneration, plus the full-regeneration and simulated-manual-editing
  comparators used by benchmarks B2/B9.
"""

from repro.synthesis.generator import RuleGenerator
from repro.synthesis.regenerate import (
    PolicyEditor,
    RegenerationReport,
    full_regeneration,
    regenerate_roles,
    simulate_manual_edit,
)
from repro.synthesis.verify import (
    Finding,
    Severity,
    render_findings,
    verify_rule_pool,
)

__all__ = [
    "Finding",
    "PolicyEditor",
    "RegenerationReport",
    "RuleGenerator",
    "Severity",
    "full_regeneration",
    "regenerate_roles",
    "render_findings",
    "simulate_manual_edit",
    "verify_rule_pool",
]
