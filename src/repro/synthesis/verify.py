"""Static verification of a generated rule pool.

The paper's future work (§7): "the generated rules should be
verified".  This module implements that pass: given an engine, it
checks structural well-formedness of the pool and its event graph
without firing anything.

Checks (each yields a :class:`Finding` with severity ``error`` or
``warning``):

* **dangling events** — a rule subscribed to an event the detector does
  not define (it can never fire);
* **orphan role events** — a defined per-role request event
  (``addActiveRole.R`` / ``addSessionRole.R`` / ``dropActiveRole.R``)
  with *no* enabled rule: requests on it would fail closed, which is
  intended only under an active-security lockout;
* **duplicate handlers** — two enabled rules with THEN branches on the
  same commit event for the same role (double-commit risk);
* **cascade cycles** — a cycle in the static rule-cascade graph
  (rule A's actions raise an event that triggers rule B whose actions
  raise A's event, ...): at runtime this would hit the cascade-depth
  limit;
* **disabled rules** — informational: rules currently disabled (e.g.
  by active security), listed so administrators can review lockouts;
* **tag hygiene** — a rule tagged ``role:X`` where X is not in the
  policy (stale attribution after a role deletion).

Static cascade edges are derived from rule *names and events* following
the generator's conventions plus an optional per-rule ``raises`` tag
(comma-separated event names) for hand-written rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import ActiveRBACEngine


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One verification finding."""

    severity: Severity
    check: str
    subject: str
    message: str

    def describe(self) -> str:
        return f"[{self.severity.value}] {self.check}({self.subject}): " \
               f"{self.message}"


#: events the generator's rule actions are known to raise, keyed by the
#: rule-name prefix (static approximation of the THEN closures)
_KNOWN_RAISES = {
    "AAR": lambda role: [f"addSessionRole.{role}"],
    "CC": lambda role: [f"roleActivated.{role}"],
    "DAR": lambda role: [f"roleDeactivated.{role}"],
    "ER": lambda role: [f"roleEnabled.{role}"],
    "DR": lambda role: [f"roleDisabled.{role}"],
}


def _static_raises(rule) -> list[str]:
    """Events a rule's actions may raise (static approximation)."""
    explicit = rule.tags.get("raises")
    if explicit:
        return [name.strip() for name in explicit.split(",") if name.strip()]
    prefix, _, remainder = rule.name.partition(".")
    prefix = prefix.rstrip("0123456789")  # AAR1 -> AAR
    builder = _KNOWN_RAISES.get(prefix)
    if builder is None or not remainder:
        return []
    role = remainder.split(".")[0]
    return builder(role)


def verify_rule_pool(engine: "ActiveRBACEngine") -> list[Finding]:
    """Run every static check; returns findings (empty = clean)."""
    findings: list[Finding] = []
    findings.extend(_check_dangling_events(engine))
    findings.extend(_check_orphan_role_events(engine))
    findings.extend(_check_duplicate_commits(engine))
    findings.extend(_check_cascade_cycles(engine))
    findings.extend(_check_disabled_rules(engine))
    findings.extend(_check_tag_hygiene(engine))
    return findings


def errors_only(findings: Iterable[Finding]) -> list[Finding]:
    return [f for f in findings if f.severity is Severity.ERROR]


def render_findings(findings: Iterable[Finding]) -> str:
    findings = list(findings)
    if not findings:
        return "rule pool verification: clean"
    lines = [f"rule pool verification: {len(findings)} finding(s)"]
    lines.extend("  " + finding.describe() for finding in findings)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------

def _check_dangling_events(engine) -> list[Finding]:
    findings = []
    for rule in engine.rules:
        if rule.event not in engine.detector:
            findings.append(Finding(
                Severity.ERROR, "dangling-event", rule.name,
                f"subscribed to undefined event {rule.event!r}; the "
                f"rule can never fire"))
    return findings


_REQUEST_PREFIXES = ("addActiveRole.", "addSessionRole.",
                     "dropActiveRole.")


def _check_orphan_role_events(engine) -> list[Finding]:
    findings = []
    for event in engine.detector.names():
        if not event.startswith(_REQUEST_PREFIXES):
            continue
        handlers = [rule for rule in engine.rules.rules_for_event(event)
                    if rule.enabled]
        if not handlers:
            findings.append(Finding(
                Severity.WARNING, "orphan-request-event", event,
                "no enabled rule handles this request event; requests "
                "will fail closed"))
    return findings


def _check_duplicate_commits(engine) -> list[Finding]:
    findings = []
    for event in engine.detector.names():
        if not event.startswith("addSessionRole."):
            continue
        committers = [
            rule for rule in engine.rules.rules_for_event(event)
            if rule.enabled and rule.tags.get("kind") == "commit"
        ]
        if len(committers) > 1:
            names = ", ".join(rule.name for rule in committers)
            findings.append(Finding(
                Severity.ERROR, "duplicate-commit", event,
                f"{len(committers)} commit rules on one commit event "
                f"({names}): activations would double-commit"))
    return findings


def _check_cascade_cycles(engine) -> list[Finding]:
    # build the static event -> event cascade graph through rules
    graph: dict[str, set[str]] = {}
    for rule in engine.rules:
        if not rule.enabled:
            continue
        targets = [event for event in _static_raises(rule)
                   if event in engine.detector]
        if targets:
            graph.setdefault(rule.event, set()).update(targets)
    # also follow composite-event edges (child feeding parent)
    for child, parent in engine.detector.graph_edges():
        graph.setdefault(child, set()).add(parent)

    findings = []
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[str, int] = {}

    def visit(node: str, path: list[str]) -> None:
        color[node] = GREY
        path.append(node)
        for succ in sorted(graph.get(node, ())):
            state = color.get(succ, WHITE)
            if state == GREY:
                cycle = path[path.index(succ):] + [succ]
                findings.append(Finding(
                    Severity.ERROR, "cascade-cycle", succ,
                    "static cascade cycle: " + " -> ".join(cycle)))
            elif state == WHITE:
                visit(succ, path)
        path.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color.get(node, WHITE) == WHITE:
            visit(node, [])
    return findings


def _check_disabled_rules(engine) -> list[Finding]:
    return [
        Finding(Severity.INFO, "disabled-rule", rule.name,
                "rule is currently disabled")
        for rule in engine.rules if not rule.enabled
    ]


def _check_tag_hygiene(engine) -> list[Finding]:
    findings = []
    known_roles = set(engine.policy.roles)
    for rule in engine.rules:
        for key in rule.tags:
            if key.startswith("role:"):
                role = key[len("role:"):]
                if role not in known_roles:
                    findings.append(Finding(
                        Severity.WARNING, "stale-role-tag", rule.name,
                        f"tagged for role {role!r} which is not in the "
                        f"policy"))
    return findings
