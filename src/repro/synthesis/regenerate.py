"""Policy change and rule regeneration.

"When there is a change in the policy ... it can be easily changed in
the high level specification and the corresponding rules can be
regenerated ... With current systems and models it is a cumbersome
process as all the low level semantic descriptions have to be changed
manually.  When there are thousands of rules, it is highly error prone
to change them manually." (paper §5)

Three strategies are implemented — they are the subjects of benchmarks
B2 and B9:

* :func:`regenerate_roles` — **incremental**: retire and re-derive only
  the rules of the changed roles (closing over cross-role rules via
  their ``role:*`` tags);
* :func:`full_regeneration` — rebuild the entire pool from the policy;
* :func:`simulate_manual_edit` — a cost model of an administrator
  hand-editing rules in a pool (scan + edit + error probability), the
  comparison point for the paper's maintainability argument.

:class:`PolicyEditor` is the administrator-facing API: each method is
one high-level policy change (the day-doctor shift change is
``set_enabling_window``), updating the spec/model and triggering
incremental regeneration, and returning a :class:`RegenerationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.extensions.cfd import (
    PostConditionDependency,
    PrerequisiteRole,
    TransactionActivation,
)
from repro.extensions.context import ContextConstraint
from repro.gtrbac.constraints import (
    DisablingTimeSoD,
    DurationConstraint,
    EnablingWindow,
)
from repro.gtrbac.periodic import PeriodicInterval

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import ActiveRBACEngine


@dataclass
class RegenerationReport:
    """What one regeneration touched."""

    seed_roles: set[str] = field(default_factory=set)
    affected_roles: set[str] = field(default_factory=set)
    removed_rules: list[str] = field(default_factory=list)
    added_rules: list[str] = field(default_factory=list)

    @property
    def rules_touched(self) -> int:
        return len(set(self.removed_rules) | set(self.added_rules))

    def describe(self) -> str:
        return (f"regenerated {sorted(self.affected_roles)}: "
                f"-{len(self.removed_rules)} / +{len(self.added_rules)} "
                f"rule(s)")


def affected_roles(engine: "ActiveRBACEngine",
                   seeds: Iterable[str]) -> set[str]:
    """Close a seed role set over cross-role rules.

    A rule tagged with several ``role:*`` keys (disabling-time SoD,
    post-condition CFD, transaction anchors) ties its roles together:
    removing it for one role requires regenerating the others too.
    """
    affected = set(seeds)
    frontier = set(seeds)
    while frontier:
        role = frontier.pop()
        for rule in engine.rules.by_tags(**{f"role:{role}": "1"}):
            for key in rule.tags:
                if key.startswith("role:"):
                    other = key[len("role:"):]
                    if other not in affected:
                        affected.add(other)
                        frontier.add(other)
    return affected


def regenerate_roles(engine: "ActiveRBACEngine",
                     seeds: Iterable[str]) -> RegenerationReport:
    """Incrementally regenerate the rules of the seed roles (plus any
    cross-role partners)."""
    report = RegenerationReport(seed_roles=set(seeds))
    report.affected_roles = affected_roles(engine, report.seed_roles)
    for role in sorted(report.affected_roles):
        report.removed_rules.extend(engine.generator.remove_role_rules(role))
    for role in sorted(report.affected_roles):
        if role in engine.policy.roles:
            report.added_rules.extend(
                engine.generator.generate_role_rules(role))
    engine.audit.record("admin.regenerate",
                        roles=sorted(report.affected_roles),
                        removed=len(report.removed_rules),
                        added=len(report.added_rules))
    # rule churn already bumps the manager version (one leg of the
    # kernel validity triple); dropping the kernel here makes the
    # recompile-on-regeneration contract explicit
    engine.invalidate_kernel()
    return report


def regenerate_diff(engine: "ActiveRBACEngine",
                    diff: "ConfigDiff") -> RegenerationReport:
    """Regenerate exactly what a config diff requires — nothing more.

    Earlier callers seeded :func:`regenerate_roles` with *every* role a
    policy change mentioned, so a push that only moved grants or
    assignments (decision-time model state, not rule shape) still
    churned rules — and rule churn resets the quarantine and counter
    state riding on each :class:`~repro.rules.rule.OWTERule` object.
    The config differ computes the **rule-relevant** role set
    (``diff.regen_seeds``: surviving roles whose generated rule inputs
    changed, plus brand-new roles); this entry point regenerates that
    seed set (closed over cross-role partners as usual) and leaves
    every other rule object untouched — identity, fault counters and
    quarantine flags survive the deployment.

    Roles the diff removed must already be retired (the lifecycle's
    apply step removes their rules/events before static state moves);
    an empty seed set is a no-op report, with no version churn at all.
    """
    seeds = diff.regen_seeds & set(engine.policy.roles)
    if not seeds:
        return RegenerationReport()
    return regenerate_roles(engine, seeds)


def full_regeneration(engine: "ActiveRBACEngine") -> RegenerationReport:
    """Rebuild the whole pool from the policy (the naive strategy)."""
    report = RegenerationReport(seed_roles=set(engine.policy.roles))
    report.affected_roles = set(engine.policy.roles)
    for role in sorted(engine.policy.roles):
        report.removed_rules.extend(engine.generator.remove_role_rules(role))
    for role in sorted(engine.policy.roles):
        report.added_rules.extend(engine.generator.generate_role_rules(role))
    engine.invalidate_kernel()
    return report


@dataclass
class ManualEditEstimate:
    """Cost model of an administrator editing rules by hand (B2).

    The administrator must *find* the rules to change among the whole
    pool (``rules_scanned``), edit each (``rules_edited``), and has a
    per-edit error probability; ``expected_errors`` is the expectation.
    The paper's point is qualitative ("highly error prone"); this model
    makes the scaling comparable on a chart.
    """

    pool_size: int
    rules_scanned: int
    rules_edited: int
    error_rate_per_edit: float

    @property
    def expected_errors(self) -> float:
        return self.rules_edited * self.error_rate_per_edit

    @property
    def effort_units(self) -> float:
        """Scan effort (1 unit per rule read) + edit effort (10 units
        per rule changed): a simple, stated cost model."""
        return self.rules_scanned + 10.0 * self.rules_edited


def simulate_manual_edit(engine: "ActiveRBACEngine",
                         seeds: Iterable[str],
                         error_rate_per_edit: float = 0.05
                         ) -> ManualEditEstimate:
    """Estimate the manual cost of the change that
    :func:`regenerate_roles` would perform automatically."""
    roles = affected_roles(engine, set(seeds))
    to_edit = {
        rule.name
        for role in roles
        for rule in engine.rules.by_tags(**{f"role:{role}": "1"})
    }
    return ManualEditEstimate(
        pool_size=len(engine.rules),
        rules_scanned=len(engine.rules),
        rules_edited=len(to_edit),
        error_rate_per_edit=error_rate_per_edit,
    )


class PolicyEditor:
    """High-level policy changes with automatic incremental regeneration.

    Every method edits the engine's :class:`~repro.policy.spec.PolicySpec`
    (and the model where the change has static state), then regenerates
    the affected roles' rules, returning the report.
    """

    def __init__(self, engine: "ActiveRBACEngine") -> None:
        self.engine = engine

    # -- temporal ------------------------------------------------------------

    def set_enabling_window(self, role: str, interval: PeriodicInterval
                            ) -> RegenerationReport:
        """Change a role's shift (the paper's day-doctor example)."""
        policy = self.engine.policy
        policy.enabling_windows = [
            w for w in policy.enabling_windows if w.role != role
        ]
        policy.enabling_windows.append(EnablingWindow(role, interval))
        return regenerate_roles(self.engine, {role})

    def clear_enabling_window(self, role: str) -> RegenerationReport:
        policy = self.engine.policy
        policy.enabling_windows = [
            w for w in policy.enabling_windows if w.role != role
        ]
        self.engine.model.set_role_enabled(role, True)
        return regenerate_roles(self.engine, {role})

    def set_duration(self, role: str, delta: float,
                     user: str | None = None) -> RegenerationReport:
        policy = self.engine.policy
        policy.durations = [
            d for d in policy.durations
            if not (d.role == role and d.user == user)
        ]
        policy.durations.append(DurationConstraint(role, delta, user))
        return regenerate_roles(self.engine, {role})

    def clear_duration(self, role: str,
                       user: str | None = None) -> RegenerationReport:
        policy = self.engine.policy
        policy.durations = [
            d for d in policy.durations
            if not (d.role == role and d.user == user)
        ]
        return regenerate_roles(self.engine, {role})

    def add_disabling_sod(self, constraint: DisablingTimeSoD
                          ) -> RegenerationReport:
        self.engine.policy.disabling_sod.append(constraint)
        return regenerate_roles(self.engine, set(constraint.roles))

    def remove_disabling_sod(self, name: str) -> RegenerationReport:
        policy = self.engine.policy
        doomed = [c for c in policy.disabling_sod if c.name == name]
        policy.disabling_sod = [
            c for c in policy.disabling_sod if c.name != name
        ]
        roles: set[str] = set()
        for constraint in doomed:
            roles |= constraint.roles
        return regenerate_roles(self.engine, roles)

    # -- control-flow dependencies -----------------------------------------------

    def add_prerequisite(self, role: str, prerequisite: str
                         ) -> RegenerationReport:
        self.engine.policy.prerequisites.append(
            PrerequisiteRole(role, prerequisite))
        return regenerate_roles(self.engine, {role})

    def add_post_condition(self, trigger_role: str, required_role: str
                           ) -> RegenerationReport:
        self.engine.policy.post_conditions.append(
            PostConditionDependency(trigger_role, required_role))
        return regenerate_roles(self.engine, {trigger_role, required_role})

    def add_transaction(self, dependent_role: str, anchor_role: str
                        ) -> RegenerationReport:
        self.engine.policy.transactions.append(
            TransactionActivation(dependent_role, anchor_role))
        return regenerate_roles(self.engine, {dependent_role, anchor_role})

    # -- cardinality ----------------------------------------------------------------

    def set_role_cardinality(self, role: str, max_users: int | None
                             ) -> RegenerationReport:
        policy = self.engine.policy
        policy.add_role(role, max_users)
        self.engine.model.roles[role].max_active_users = max_users
        return regenerate_roles(self.engine, {role})

    def set_user_max_roles(self, user: str, max_roles: int | None) -> None:
        """Specialized per-user cardinality: evaluated through a model
        lookup in the CC rules, so no regeneration is needed."""
        self.engine.policy.add_user(user, max_roles)
        self.engine.model.users[user].max_active_roles = max_roles

    # -- context ---------------------------------------------------------------------

    def add_context_constraint(self, constraint: ContextConstraint
                               ) -> RegenerationReport:
        self.engine.policy.context_constraints.append(constraint)
        return regenerate_roles(self.engine, {constraint.role})
