"""Rule templates: builders for every rule shape in the paper.

Each function builds one :class:`~repro.rules.rule.OWTERule` (or a small
set) for a concrete role/constraint, closing over the engine.  Condition
and action description strings deliberately mirror the paper's rule
listings (``user IN userL``, ``checkAssignedR1(user) IS TRUE``,
``addSessionRoleR1(sessionId)``) so that ``rule.render()`` reproduces
the paper's figures.

Naming scheme (deterministic, so regeneration can dedupe):

==================  =========================================================
``AAR<v>.<role>``    activation rule; v = 1 core, 2 hierarchy, 3 DSD,
                     4 DSD+hierarchy (the paper's four variants)
``CC.<role>``        cardinality + commit rule (paper Rule 4's CC_1)
``DAR.<role>``       deactivation rule
``ER.<role>``        role enabling (with post-condition CFD rollback)
``DR.<role>``        role disabling (with disabling-time SoD)
``TSOD.<role>``      duration expiry deactivation (paper Rule 7's TSOD_2)
``TSOD.<role>.<u>``  per-user duration variant (specialized)
``ASEC.<role>``      transaction-anchor cleanup (paper Rule 9's cascade)
``GR.*`` / ``CA.*``  globalized administrative / checkAccess rules
==================  =========================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import (

    ActivationDenied,
    AdministrationError,
    CardinalityExceeded,
    DeactivationDenied,
    DsdViolationError,
    DuplicateEntityError,
    OperationDenied,
    PrerequisiteNotMetError,
    ReproError,
    RoleNotEnabledError,
    SecurityLockout,
    SsdViolationError,
    UnknownRoleError,
    UnknownSessionError,
    UnknownUserError,
)
from repro.rules.rule import (
    Action,
    Condition,
    EvalClass,
    Granularity,
    OWTERule,
    RuleClass,
    RuleContext,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import ActiveRBACEngine


def role_tags(*roles: str, kind: str = "") -> dict[str, str]:
    """Attribution tags: one ``role:<name>`` key per involved role.

    Regeneration removes rules by any single involved role's tag, which
    is how a change to one role also retires cross-role rules.
    """
    tags = {f"role:{name}": "1" for name in roles}
    if kind:
        tags["kind"] = kind
    return tags


# Map the first failing can_activate reason to the typed denial the
# paper's ELSE clauses raise.
_ACTIVATION_ERRORS = {
    "dynamic SoD violation": DsdViolationError,
    "Maximum Number of Roles Reached": CardinalityExceeded,
    "role not enabled": RoleNotEnabledError,
    "prerequisite role not active": PrerequisiteNotMetError,
    "anchor role not activated": PrerequisiteNotMetError,
    "user locked by active security": SecurityLockout,
}


def activation_error(reason: str, rule: str) -> ActivationDenied:
    error_cls = _ACTIVATION_ERRORS.get(reason, ActivationDenied)
    return error_cls(reason or "Access Denied Cannot Activate", rule=rule)


def _deny_activation(engine: "ActiveRBACEngine", rule_name: str,
                     ctx: RuleContext) -> None:
    """Shared ELSE body for activation rules: emit the denial event for
    the security monitor, then raise the typed error."""
    session_id = ctx.get("sessionId")
    role = ctx.get("role")
    allowed, reason = engine.can_activate(session_id, role)
    if allowed:  # race-free in this single-threaded substrate; defensive
        reason = "Access Denied Cannot Activate"
    engine.detector.raise_event(
        "activationDenied", user=ctx.get("user"), role=role,
        sessionId=session_id, reason=reason,
    )
    engine.audit.record("decision.deny", category="activation", role=role,
                        session=session_id, reason=reason)
    raise activation_error(reason, rule_name)


# ===========================================================================
# activation rules: AAR1..AAR4 (paper Rule 3) + CC commit (paper Rule 4)
# ===========================================================================

def build_activation_rule(engine: "ActiveRBACEngine", role: str,
                          in_hierarchy: bool, in_dsd: bool,
                          has_prerequisites: bool, is_dependent: bool,
                          has_context: bool) -> OWTERule:
    """The AAR rule for one role, variant chosen by its relationships.

    AAR1: core; AAR2: + hierarchies (checkAuthorization instead of
    checkAssigned); AAR3: + dynamic SoD; AAR4: both (paper §4.3.1).
    """
    variant = {(False, False): 1, (True, False): 2,
               (False, True): 3, (True, True): 4}[(in_hierarchy, in_dsd)]
    name = f"AAR{variant}.{role}"
    model = engine.model

    conditions = [
        Condition("user IN userL",
                  lambda ctx: model.is_user(ctx.get("user"))),
        Condition("user NOT locked",
                  lambda ctx: not engine.is_user_locked(ctx.get("user"))),
        Condition("sessionId IN sessionL",
                  lambda ctx: model.is_session(ctx.get("sessionId"))),
        Condition("sessionId IN checkUserSessions(user)",
                  lambda ctx: model.owns_session(ctx.get("user"),
                                                 ctx.get("sessionId"))),
        Condition(f"{role} NOT IN checkSessionRoles(user)",
                  lambda ctx: not model.is_active_in_session(
                      ctx.get("sessionId"), role)),
        Condition(f"roleEnabled{role} IS TRUE",
                  lambda ctx: model.is_role_enabled(role)),
    ]
    if in_hierarchy:
        conditions.append(Condition(
            f"checkAuthorization{role}(user) IS TRUE",
            lambda ctx: model.is_authorized(ctx.get("user"), role)))
    else:
        conditions.append(Condition(
            f"checkAssigned{role}(user) IS TRUE",
            lambda ctx: model.is_assigned(ctx.get("user"), role)))
    if in_dsd:
        conditions.append(Condition(
            f"checkDynamicSoDSet(user, {role}) IS TRUE",
            lambda ctx: model.dsd_allows_activation(
                ctx.get("sessionId"), role)))
    if has_prerequisites:
        conditions.append(Condition(
            f"prerequisiteRoles({role}) active in session",
            lambda ctx: engine.prerequisites_ok(ctx.get("sessionId"),
                                                role)))
    if is_dependent:
        conditions.append(Condition(
            f"anchorRole({role}) currently activated",
            lambda ctx: engine.transaction_anchor_ok(role)))
    if has_context:
        conditions.append(Condition(
            f"contextConstraints({role}, activate) satisfied",
            lambda ctx: engine.activation_context_ok(role)))

    def then_cascade(ctx: RuleContext) -> None:
        ctx.raise_event(f"addSessionRole.{role}", **ctx.params)

    def else_deny(ctx: RuleContext) -> None:
        _deny_activation(engine, name, ctx)

    return OWTERule(
        name=name,
        event=f"addActiveRole.{role}",
        conditions=conditions,
        actions=[Action(f"addSessionRole{role}(sessionId)", then_cascade)],
        alt_actions=[Action('raise error "Access Denied Cannot Activate"',
                            else_deny)],
        classification=RuleClass.ACTIVITY_CONTROL,
        granularity=Granularity.LOCALIZED,
        tags=role_tags(role, kind="activation"),
    )


def build_commit_rule(engine: "ActiveRBACEngine", role: str,
                      max_active_users: int | None) -> OWTERule:
    """The CC rule: cardinality gate + commit + post-commit cascades.

    Mirrors paper Rule 4: the AAR rule's THEN invoked
    ``addSessionRole<R>`` which raised this rule's event; here the
    cardinality counters are checked and the activation committed.
    """
    name = f"CC.{role}"
    conditions = []
    if max_active_users is not None:
        conditions.append(Condition(
            f"Cardinality{role}(INCR) <= {max_active_users}",
            lambda ctx: engine.role_cardinality_ok(role, ctx.get("user"))))
    conditions.append(Condition(
        "activeRoleCount(user) < maxActiveRoles(user)",
        lambda ctx: engine.user_cardinality_ok(ctx.get("user"), role)))

    def commit(ctx: RuleContext) -> None:
        session_id = ctx.get("sessionId")
        user = ctx.get("user")
        activation_id = ctx.get("activationId")
        engine.commit_activation(session_id, role, activation_id)
        delta = engine.duration_for(role, user)
        if delta is not None:
            per_user = any(
                d.role == role and d.user == user
                for d in engine.policy.durations
            )
            event = (f"durationStart.{role}.{user}" if per_user
                     else f"durationStart.{role}")
            ctx.raise_event(event, sessionId=session_id, role=role,
                            user=user, activationId=activation_id)
        ctx.raise_event(f"roleActivated.{role}", **ctx.params)

    def else_deny(ctx: RuleContext) -> None:
        engine.detector.raise_event(
            "activationDenied", user=ctx.get("user"), role=role,
            sessionId=ctx.get("sessionId"),
            reason="Maximum Number of Roles Reached",
        )
        engine.audit.record("decision.deny", category="cardinality", role=role,
                            session=ctx.get("sessionId"))
        raise CardinalityExceeded("Maximum Number of Roles Reached",
                                  rule=name)

    return OWTERule(
        name=name,
        event=f"addSessionRole.{role}",
        conditions=conditions,
        actions=[Action(f"activate {role} in session", commit)],
        alt_actions=[Action(
            'raise error "Maximum Number of Roles Reached"', else_deny)],
        classification=RuleClass.ACTIVITY_CONTROL,
        granularity=Granularity.LOCALIZED,
        tags=role_tags(role, kind="commit"),
    )


def build_deactivation_rule(engine: "ActiveRBACEngine",
                            role: str) -> OWTERule:
    """The DAR rule: validate and commit a deactivation."""
    name = f"DAR.{role}"
    model = engine.model
    conditions = [
        Condition("sessionId IN sessionL",
                  lambda ctx: model.is_session(ctx.get("sessionId"))),
        Condition("sessionId IN checkUserSessions(user)",
                  lambda ctx: model.owns_session(ctx.get("user"),
                                                 ctx.get("sessionId"))),
        Condition(f"{role} IN checkSessionRoles(user)",
                  lambda ctx: model.is_active_in_session(
                      ctx.get("sessionId"), role)),
    ]

    def commit(ctx: RuleContext) -> None:
        engine.commit_deactivation(ctx.get("sessionId"), role)

    def else_deny(ctx: RuleContext) -> None:
        raise DeactivationDenied(
            f"role {role!r} is not active in session "
            f"{ctx.get('sessionId')!r}", rule=name,
        )

    return OWTERule(
        name=name,
        event=f"dropActiveRole.{role}",
        conditions=conditions,
        actions=[Action(f"removeSessionRole{role}(sessionId)", commit)],
        alt_actions=[Action('raise error "Cannot Deactivate"', else_deny)],
        classification=RuleClass.ACTIVITY_CONTROL,
        granularity=Granularity.LOCALIZED,
        tags=role_tags(role, kind="deactivation"),
    )


# ===========================================================================
# role enabling/disabling: ER (with post-condition CFD) and DR (with
# disabling-time SoD) — paper Rules 6 and 8
# ===========================================================================

def build_enable_rule(engine: "ActiveRBACEngine", role: str,
                      required_partners: list[str]) -> OWTERule:
    """ER rule.  ``required_partners`` are the post-condition CFD
    partners (paper Rule 8): enabling this role must also enable each
    partner, atomically — on partner failure this role is re-disabled
    and the request denied."""
    name = f"ER.{role}"
    involved = [role, *required_partners]

    def enable(ctx: RuleContext) -> None:
        model = engine.model
        if model.is_role_enabled(role):
            return  # idempotent; also breaks CFD cycles
        engine.commit_role_enabled(role, True)
        ctx.raise_event(f"roleEnabled.{role}", role=role)
        for partner in required_partners:
            if model.is_role_enabled(partner):
                continue
            failure: ReproError | None = None
            try:
                ctx.raise_event(f"enableRole.{partner}", role=partner)
            except ReproError as exc:
                failure = exc
            if failure is not None or not model.is_role_enabled(partner):
                # paper Rule 8's CFD_2 ELSE: disable the trigger role
                engine.commit_role_enabled(role, False)
                raise ActivationDenied(
                    f"Cannot Activate {role}: required role "
                    f"{partner!r} could not be enabled", rule=name,
                ) from failure

    return OWTERule(
        name=name,
        event=f"enableRole.{role}",
        actions=[Action(f"enableRole{role}()" + "".join(
            f" && enableRole{p}()" for p in required_partners), enable)],
        classification=RuleClass.ACTIVITY_CONTROL,
        granularity=Granularity.LOCALIZED,
        tags=role_tags(*involved, kind="enable"),
    )


def build_disable_rule(engine: "ActiveRBACEngine", role: str,
                       sod_partner_roles: list[str]) -> OWTERule:
    """DR rule.  The W clause enforces every disabling-time SoD set the
    role belongs to (paper Rule 6's TSOD_1: inside the interval, deny
    when a partner is already disabled)."""
    name = f"DR.{role}"
    conditions = []
    if sod_partner_roles:
        partners = ", ".join(sorted(sod_partner_roles))
        conditions.append(Condition(
            f"checkActive({partners}) IS TRUE within (I, P)",
            lambda ctx: engine.disabling_sod_ok(role)))

    def disable(ctx: RuleContext) -> None:
        if not engine.model.is_role_enabled(role):
            return  # idempotent
        engine.commit_role_enabled(role, False)
        ctx.raise_event(f"roleDisabled.{role}", role=role)

    def else_deny(ctx: RuleContext) -> None:
        raise DeactivationDenied(
            f"Denied as partner role Already Disabled (disabling-time "
            f"SoD on {role!r})", rule=name,
        )

    return OWTERule(
        name=name,
        event=f"disableRole.{role}",
        conditions=conditions,
        actions=[Action(f"disableRole{role}()", disable)],
        alt_actions=[Action(
            'raise error "Denied as partner Already Disabled"',
            else_deny)],
        classification=RuleClass.ACTIVITY_CONTROL,
        granularity=Granularity.LOCALIZED,
        tags=role_tags(role, *sod_partner_roles, kind="disable"),
    )


# ===========================================================================
# temporal rules: duration expiry (paper Rule 7's TSOD_2)
# ===========================================================================

def build_duration_rule(engine: "ActiveRBACEngine", role: str,
                        user: str | None) -> OWTERule:
    """TSOD rule on the PLUS event: deactivate when the countdown
    expires, unless the activation already ended (activation-id guard).
    """
    suffix = f".{user}" if user else ""
    name = f"TSOD.{role}{suffix}"

    def still_current(ctx: RuleContext) -> bool:
        key = (ctx.get("sessionId"), role)
        return engine.current_activation.get(key) == ctx.get("activationId")

    def deactivate(ctx: RuleContext) -> None:
        engine.audit.record("temporal.duration_expired", role=role,
                            session=ctx.get("sessionId"))
        engine.commit_deactivation(ctx.get("sessionId"), role)

    return OWTERule(
        name=name,
        event=f"durationExpired.{role}{suffix}",
        conditions=[Condition("activation still current", still_current)],
        actions=[Action(f"deactivateRole{role}(sessionId)", deactivate)],
        classification=RuleClass.ACTIVITY_CONTROL,
        granularity=(Granularity.SPECIALIZED if user
                     else Granularity.LOCALIZED),
        tags=role_tags(role, kind="duration"),
    )


# ===========================================================================
# transaction-anchor cleanup (paper Rule 9's ASEC_2 cascade)
# ===========================================================================

def build_anchor_cleanup_rule(engine: "ActiveRBACEngine", anchor: str,
                              dependents: list[str]) -> OWTERule:
    """When the last activation of the anchor role ends, deactivate
    every dependent role everywhere (Rule 9: deactivating Manager
    deactivates JuniorEmp and closes the activation window)."""
    name = f"ASEC.{anchor}"

    def anchor_gone(ctx: RuleContext) -> bool:
        return engine.model.active_user_count(anchor) == 0

    def cleanup(ctx: RuleContext) -> None:
        for dependent in dependents:
            dropped = engine.force_deactivate_role(dependent)
            if dropped:
                engine.audit.record(
                    "security.anchor_cleanup", anchor=anchor,
                    dependent=dependent, sessions=dropped,
                )

    return OWTERule(
        name=name,
        event=f"roleDeactivated.{anchor}",
        conditions=[Condition(f"activeUserCount({anchor}) == 0",
                              anchor_gone)],
        actions=[Action(
            "deactivate " + ", ".join(dependents), cleanup)],
        classification=RuleClass.ACTIVE_SECURITY,
        granularity=Granularity.LOCALIZED,
        tags=role_tags(anchor, *dependents, kind="anchor"),
    )


# ===========================================================================
# globalized administrative rules (paper scenario 3) and checkAccess
# (paper Rule 5's CA_1)
# ===========================================================================

def build_create_session_rule(engine: "ActiveRBACEngine") -> OWTERule:
    name = "GR.createSession"
    model = engine.model
    conditions = [
        Condition("user IN userL",
                  lambda ctx: model.is_user(ctx.get("user"))),
        Condition("user NOT locked",
                  lambda ctx: not engine.is_user_locked(ctx.get("user"))),
        Condition("sessionId NOT IN sessionL",
                  lambda ctx: not model.is_session(ctx.get("sessionId"))),
    ]

    def commit(ctx: RuleContext) -> None:
        engine.commit_session(ctx.get("sessionId"), ctx.get("user"))

    def else_deny(ctx: RuleContext) -> None:
        user = ctx.get("user")
        if not model.is_user(user):
            raise UnknownUserError(str(user))
        if engine.is_user_locked(user):
            raise SecurityLockout(
                f"user {user!r} is locked by active security", rule=name)
        raise DuplicateEntityError(
            f"session {ctx.get('sessionId')!r} already exists")

    return OWTERule(
        name=name, event="createSession",
        conditions=conditions,
        actions=[Action("createSession(user, sessionId)", commit)],
        alt_actions=[Action('raise error "Cannot Create Session"',
                            else_deny)],
        classification=RuleClass.ADMINISTRATIVE,
        granularity=Granularity.GLOBALIZED,
        tags={"scope": "global", "kind": "session"},
    )


def build_delete_session_rule(engine: "ActiveRBACEngine") -> OWTERule:
    name = "GR.deleteSession"

    def commit(ctx: RuleContext) -> None:
        engine.commit_session_delete(ctx.get("sessionId"))

    def else_deny(ctx: RuleContext) -> None:
        raise UnknownSessionError(str(ctx.get("sessionId")))

    return OWTERule(
        name=name, event="deleteSession",
        conditions=[Condition(
            "sessionId IN sessionL",
            lambda ctx: engine.model.is_session(ctx.get("sessionId")))],
        actions=[Action("deleteSession(sessionId)", commit)],
        alt_actions=[Action('raise error "Unknown Session"', else_deny)],
        classification=RuleClass.ADMINISTRATIVE,
        granularity=Granularity.GLOBALIZED,
        tags={"scope": "global", "kind": "session"},
    )


def build_assign_user_rule(engine: "ActiveRBACEngine") -> OWTERule:
    """The globalized user-role assignment rule (paper scenario 3: one
    rule invoked with different parameters for every assignment)."""
    name = "GR.assignUser"
    model = engine.model
    conditions = [
        Condition("user IN userL",
                  lambda ctx: model.is_user(ctx.get("user"))),
        Condition("role IN roleL",
                  lambda ctx: ctx.get("role") in model.roles),
        Condition("role NOT IN assignedRoles(user)",
                  lambda ctx: not model.is_assigned(ctx.get("user"),
                                                    ctx.get("role"))),
        Condition("checkStaticSoD(user, role) IS TRUE",
                  lambda ctx: model.ssd_allows_assignment(
                      ctx.get("user"), ctx.get("role"))),
    ]

    def commit(ctx: RuleContext) -> None:
        engine.commit_assignment(ctx.get("user"), ctx.get("role"))

    def else_deny(ctx: RuleContext) -> None:
        user, role = ctx.get("user"), ctx.get("role")
        if not model.is_user(user):
            raise UnknownUserError(str(user))
        if role not in model.roles:
            raise UnknownRoleError(str(role))
        if model.is_assigned(user, role):
            raise AdministrationError(
                f"user {user!r} is already assigned to role {role!r}")
        raise SsdViolationError(
            f"assigning {role!r} to {user!r} violates a static SoD "
            f"constraint", user=str(user))

    return OWTERule(
        name=name, event="assignUser",
        conditions=conditions,
        actions=[Action("assignUser(user, role)", commit)],
        alt_actions=[Action('raise error "Cannot Assign"', else_deny)],
        classification=RuleClass.ADMINISTRATIVE,
        granularity=Granularity.GLOBALIZED,
        tags={"scope": "global", "kind": "assignment"},
    )


def build_deassign_user_rule(engine: "ActiveRBACEngine") -> OWTERule:
    name = "GR.deassignUser"
    model = engine.model
    conditions = [
        Condition("user IN userL",
                  lambda ctx: model.is_user(ctx.get("user"))),
        Condition("role IN roleL",
                  lambda ctx: ctx.get("role") in model.roles),
        Condition("role IN assignedRoles(user)",
                  lambda ctx: model.is_assigned(ctx.get("user"),
                                                ctx.get("role"))),
    ]

    def commit(ctx: RuleContext) -> None:
        engine.commit_deassignment(ctx.get("user"), ctx.get("role"))

    def else_deny(ctx: RuleContext) -> None:
        user, role = ctx.get("user"), ctx.get("role")
        if not model.is_user(user):
            raise UnknownUserError(str(user))
        if role not in model.roles:
            raise UnknownRoleError(str(role))
        raise AdministrationError(
            f"user {user!r} is not assigned to role {role!r}")

    return OWTERule(
        name=name, event="deassignUser",
        conditions=conditions,
        actions=[Action("deassignUser(user, role)", commit)],
        alt_actions=[Action('raise error "Cannot Deassign"', else_deny)],
        classification=RuleClass.ADMINISTRATIVE,
        granularity=Granularity.GLOBALIZED,
        tags={"scope": "global", "kind": "assignment"},
    )


def build_check_access_rule(engine: "ActiveRBACEngine") -> OWTERule:
    """CA_1 (paper Rule 5), extended with context and privacy checks."""
    name = "CA.checkAccess"
    model = engine.model
    conditions = [
        Condition("sessionId IN sessionL",
                  lambda ctx: model.is_session(ctx.get("sessionId"))),
        Condition("user NOT locked",
                  lambda ctx: not engine.is_user_locked(ctx.get("user"))),
        Condition("operation IN opsL",
                  lambda ctx: ctx.get("operation") in model.operations),
        Condition("object IN objL",
                  lambda ctx: ctx.get("object") in model.objects),
        Condition("ForANY role IN getSessionRoles(sessionId): "
                  "checkPermissions(operation, object, role, scope) "
                  "IS TRUE",
                  # ctx.get("scope") is None on flat events, so the
                  # pre-scope behavior is unchanged byte for byte
                  lambda ctx: engine.access_roles_ok(
                      ctx.get("sessionId"), ctx.get("operation"),
                      ctx.get("object"), ctx.get("scope"))),
        Condition("objectPolicy(object, operation, purpose) IS TRUE",
                  lambda ctx: engine.privacy_ok(
                      ctx.get("object"), ctx.get("operation"),
                      ctx.get("purpose"))[0]),
    ]

    def allow(ctx: RuleContext) -> None:
        engine.grant_decision()
        _allowed, obligations = engine.privacy_ok(
            ctx.get("object"), ctx.get("operation"), ctx.get("purpose"))
        for obligation in obligations:
            engine.audit.record(
                "obligation.owed", obligation=obligation,
                object=ctx.get("object"), user=ctx.get("user"))
        scope = ctx.get("scope")
        if scope is None:
            engine.audit.record(
                "decision.allow", category="access",
                user=ctx.get("user"), operation=ctx.get("operation"),
                object=ctx.get("object"))
        else:
            engine.audit.record(
                "decision.allow", category="access",
                user=ctx.get("user"), operation=ctx.get("operation"),
                object=ctx.get("object"), scope=scope)

    def else_deny(ctx: RuleContext) -> None:
        scope = ctx.get("scope")
        if scope is None:
            engine.detector.raise_event(
                "accessDenied", user=ctx.get("user"),
                sessionId=ctx.get("sessionId"),
                operation=ctx.get("operation"),
                object=ctx.get("object"),
            )
            engine.audit.record(
                "decision.deny", category="access",
                user=ctx.get("user"), operation=ctx.get("operation"),
                object=ctx.get("object"))
        else:
            engine.detector.raise_event(
                "accessDenied", user=ctx.get("user"),
                sessionId=ctx.get("sessionId"),
                operation=ctx.get("operation"),
                object=ctx.get("object"), scope=scope,
            )
            engine.audit.record(
                "decision.deny", category="access",
                user=ctx.get("user"), operation=ctx.get("operation"),
                object=ctx.get("object"), scope=scope)
        raise OperationDenied("Permission Denied", rule=name)

    return OWTERule(
        name=name, event="checkAccess",
        conditions=conditions,
        actions=[Action("allow Access", allow)],
        alt_actions=[Action('raise error "Permission Denied"', else_deny)],
        classification=RuleClass.ACTIVITY_CONTROL,
        granularity=Granularity.GLOBALIZED,
        tags={"scope": "global", "kind": "checkAccess"},
        # the W clause is a pure function of the policy for unlocked
        # users, context-free roles and unregulated objects — exactly
        # the sub-domain PolicyKernel.evaluate answers; everything
        # else falls back here at runtime
        evaluation=EvalClass.STATIC,
    )
