"""The rule generator: policy -> events + OWTE rule pool.

"Once the policies are specified, they are instantiated and the rules
are generated" (paper §5).  For each role the generator

1. defines the role's primitive events (``addActiveRole.R``,
   ``addSessionRole.R``, ``roleActivated.R``, ...);
2. reads the role's relationship flags off the policy (the Figure 1
   node flags: hierarchy, static SoD, dynamic SoD, cardinality,
   temporal, CFD, context) and instantiates the matching templates —
   AAR variant 1..4, CC, DAR, ER, DR;
3. defines the temporal composite events (PLUS countdowns for duration
   constraints) and their TSOD rules;
4. schedules the GTRBAC enabling-window timers;
5. adds cross-role rules (transaction-anchor cleanup) under the tags of
   every involved role, so regeneration retires them with either role.

Everything is deterministic: same policy -> same events, rule names and
order — which is what lets :mod:`repro.synthesis.regenerate` dedupe
cross-role rules by name during incremental regeneration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.synthesis import templates

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import ActiveRBACEngine

#: primitive events defined per role
ROLE_EVENTS = (
    "addActiveRole", "addSessionRole", "roleActivated",
    "dropActiveRole", "roleDeactivated",
    "enableRole", "disableRole", "roleEnabled", "roleDisabled",
)

#: globalized primitive events
GLOBAL_EVENTS = (
    "createSession", "deleteSession", "assignUser", "deassignUser",
    "checkAccess", "accessDenied", "activationDenied",
)


class RuleGenerator:
    """Generates and maintains the OWTE rule pool for one engine."""

    def __init__(self, engine: "ActiveRBACEngine") -> None:
        self.engine = engine
        #: composite events created per role (undefined on regeneration)
        self._role_composites: dict[str, list[str]] = {}
        #: enabling-window timer ids per role (cancelled on regeneration)
        self._role_timers: dict[str, set[int]] = {}
        self.generation_count = 0

    # -- full generation ----------------------------------------------------------

    def generate_all(self) -> int:
        """Generate the global rules plus every role's rules.

        Returns the number of rules in the pool afterwards.
        """
        self.generate_global_rules()
        for role in sorted(self.engine.policy.roles):
            self.generate_role_rules(role)
        return len(self.engine.rules)

    def generate_global_rules(self) -> None:
        detector = self.engine.detector
        for event in GLOBAL_EVENTS:
            detector.ensure_primitive(event)
        rules = self.engine.rules
        for builder in (
            templates.build_create_session_rule,
            templates.build_delete_session_rule,
            templates.build_assign_user_rule,
            templates.build_deassign_user_rule,
            templates.build_check_access_rule,
        ):
            rule = builder(self.engine)
            if rule.name not in rules:
                rules.add(rule)

    # -- per-role generation ----------------------------------------------------------

    def ensure_role_events(self, role: str) -> None:
        detector = self.engine.detector
        for prefix in ROLE_EVENTS:
            detector.ensure_primitive(f"{prefix}.{role}")

    def generate_role_rules(self, role: str) -> list[str]:
        """Generate every rule for one role; returns the rule names added.

        Idempotent per rule name: a cross-role rule already present
        (added while generating a partner role) is left in place.
        """
        engine = self.engine
        policy = engine.policy
        rules = engine.rules
        self.ensure_role_events(role)
        added: list[str] = []

        def install(rule) -> None:
            if rule.name not in rules:
                rules.add(rule)
                added.append(rule.name)

        in_hierarchy = policy.role_in_hierarchy(role)
        in_dsd = policy.role_in_dsd(role)
        has_prerequisites = any(
            p.role == role for p in policy.prerequisites)
        is_dependent = any(
            t.dependent_role == role for t in policy.transactions)
        has_context = any(
            c.role == role and c.applies_to == "activate"
            for c in policy.context_constraints)

        install(templates.build_activation_rule(
            engine, role, in_hierarchy, in_dsd, has_prerequisites,
            is_dependent, has_context))
        max_users = policy.roles[role].max_active_users \
            if role in policy.roles else None
        install(templates.build_commit_rule(engine, role, max_users))
        install(templates.build_deactivation_rule(engine, role))

        required_partners = sorted(
            p.required_role for p in policy.post_conditions
            if p.trigger_role == role)
        install(templates.build_enable_rule(engine, role,
                                            required_partners))

        sod_partners = sorted({
            other
            for constraint in policy.disabling_sod if role in constraint.roles
            for other in constraint.roles if other != role
        })
        install(templates.build_disable_rule(engine, role, sod_partners))

        self._generate_duration_rules(role, install)
        self._schedule_enabling_windows(role)

        dependents = sorted(engine.transaction_dependents_of(role))
        if dependents:
            install(templates.build_anchor_cleanup_rule(
                engine, role, dependents))

        self.generation_count += 1
        return added

    def _generate_duration_rules(self, role: str, install) -> None:
        """Duration constraints -> PLUS events + TSOD rules.

        One role-wide constraint plus any number of per-user ones; each
        gets its own primitive start event and PLUS composite.
        """
        engine = self.engine
        detector = engine.detector
        composites = self._role_composites.setdefault(role, [])
        for constraint in engine.policy.durations:
            if constraint.role != role:
                continue
            suffix = f".{constraint.user}" if constraint.user else ""
            start_event = f"durationStart.{role}{suffix}"
            plus_event = f"durationExpired.{role}{suffix}"
            detector.ensure_primitive(start_event)
            if plus_event not in detector:
                detector.define_plus(plus_event, start_event,
                                     constraint.delta)
                composites.append(plus_event)
            install(templates.build_duration_rule(
                engine, role, constraint.user))

    def _schedule_enabling_windows(self, role: str) -> None:
        """GTRBAC periodic enabling: boundary timers raising the role's
        enable/disable events (which run through the ER/DR rules)."""
        engine = self.engine
        windows = [w for w in engine.policy.enabling_windows
                   if w.role == role]
        if not windows:
            return
        window = windows[-1]  # the latest declaration wins
        timer_ids = self._role_timers.setdefault(role, set())

        # initial status: enabled iff the window contains "now"
        now = engine.clock.now
        engine.model.set_role_enabled(role, window.interval.contains(now))

        def schedule_next() -> None:
            instant, opens = window.interval.next_boundary(engine.clock.now)
            if instant == float("inf"):
                return
            timer_id = engine.timers.schedule_at(
                instant, lambda: fire(opens))
            timer_ids.add(timer_id)

        def fire(opens: bool) -> None:
            event = ("enableRole" if opens else "disableRole")
            engine.safe_raise(f"{event}.{role}", role=role)
            schedule_next()

        schedule_next()

    # -- removal (regeneration support) ----------------------------------------------

    def remove_role_rules(self, role: str) -> list[str]:
        """Retire everything generated for ``role``: its rules (including
        cross-role rules involving it), its composite temporal events,
        and its window timers.  Returns removed rule names."""
        engine = self.engine
        removed = engine.rules.remove_by_tags(**{f"role:{role}": "1"})
        for event in reversed(self._role_composites.pop(role, [])):
            if event in engine.detector:
                engine.detector.undefine(event)
        for timer_id in self._role_timers.pop(role, set()):
            engine.timers.cancel(timer_id)
        return [r.name for r in removed]

    def remove_role_events(self, role: str) -> list[str]:
        """Undefine the role's primitive events (role deletion only —
        regeneration keeps them).  Events still feeding composites
        (e.g. hand-defined ones) are left in place."""
        detector = self.engine.detector
        removed = []
        for prefix in ROLE_EVENTS:
            name = f"{prefix}.{role}"
            if name not in detector:
                continue
            if detector.node(name).parents:
                continue  # a composite still depends on it
            detector.undefine(name)
            removed.append(name)
        # per-user duration start events follow the same pattern
        for name in list(detector.names()):
            if name.startswith(f"durationStart.{role}") \
                    and not detector.node(name).parents:
                detector.undefine(name)
                removed.append(name)
        return removed
