"""Distributed access control across enterprise domains.

The paper's future work (§7): "It will be interesting to explore ...
to provide distributed access control for enterprises".  This module
implements the natural OWTE-flavoured design: a :class:`Federation` of
named domains (each a full :class:`~repro.engine.ActiveRBACEngine`)
with explicit **cross-domain role mappings**.

A mapping ``(home_domain, home_role) -> (host_domain, host_role)``
states: a user *authorized* for ``home_role`` in their home domain may
work as ``host_role`` in the host domain.  Visiting users get a guest
principal ``user@home`` in the host domain; guest activations are
enforced by the host's own generated rules (the guest principal is
assigned the mapped roles), so every host-side constraint — DSD,
cardinality, temporal windows, active security — applies to visitors
exactly as to locals.

Revocation propagates: :meth:`Federation.revalidate_guests` re-checks
every guest assignment against the *current* home-domain authorization
and deassigns (which deactivates, cascades included) anything whose
home justification disappeared — the same "constraints hold until
deactivation" discipline (paper §1), applied across domains.  The
federation also subscribes to each home domain's deassignment events,
so revocation is pushed eagerly, not just on audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.containment import retry_transient
from repro.engine import ActiveRBACEngine
from repro.errors import (
    AdministrationError,
    ReproError,
    RetryExhausted,
    UnknownRoleError,
)


def guest_principal(user: str, home_domain: str) -> str:
    """The host-side principal name for a visiting user."""
    return f"{user}@{home_domain}"


@dataclass(frozen=True)
class RoleMapping:
    """One cross-domain entitlement."""

    home_domain: str
    home_role: str
    host_domain: str
    host_role: str

    def __post_init__(self) -> None:
        if self.home_domain == self.host_domain:
            raise ValueError(
                "a role mapping must cross domains; "
                f"both sides are {self.home_domain!r}")

    def describe(self) -> str:
        return (f"{self.home_domain}:{self.home_role} -> "
                f"{self.host_domain}:{self.host_role}")


class Federation:
    """A registry of domains and the mappings between them."""

    def __init__(self, lookup_attempts: int = 3,
                 lookup_backoff: float = 0.0) -> None:
        self._domains: dict[str, ActiveRBACEngine] = {}
        self._mappings: list[RoleMapping] = []
        #: retry budget for home-domain authorization lookups — in a
        #: real deployment these are remote calls and may fail
        #: transiently; exhaustion surfaces as RetryExhausted to the
        #: caller rather than silently granting or revoking.
        self.lookup_attempts = lookup_attempts
        self.lookup_backoff = lookup_backoff

    # -- domain management --------------------------------------------------

    def add_domain(self, name: str, engine: ActiveRBACEngine) -> None:
        if name in self._domains:
            raise AdministrationError(f"domain {name!r} already exists")
        self._domains[name] = engine
        # push-based revocation: watch the home domain's deassignments
        engine.detector.subscribe(
            "deassignUser",
            lambda occurrence, home=name: self._on_home_deassign(
                home, occurrence))

    def domain(self, name: str) -> ActiveRBACEngine:
        try:
            return self._domains[name]
        except KeyError:
            raise AdministrationError(f"unknown domain {name!r}") from None

    def domains(self) -> Iterator[str]:
        return iter(self._domains)

    # -- mappings -------------------------------------------------------------

    def add_mapping(self, mapping: RoleMapping) -> None:
        """Register a mapping; both sides must exist."""
        home = self.domain(mapping.home_domain)
        host = self.domain(mapping.host_domain)
        if mapping.home_role not in home.model.roles:
            raise UnknownRoleError(mapping.home_role)
        if mapping.host_role not in host.model.roles:
            raise UnknownRoleError(mapping.host_role)
        self._mappings.append(mapping)

    def remove_mapping(self, mapping: RoleMapping) -> bool:
        """Drop a mapping; returns whether it existed.  Entitlements
        already extended to guests are withdrawn at the next
        :meth:`revalidate_guests` (or eagerly on home deassignment) —
        the same lazy-until-revalidation discipline as home-side
        revocation."""
        try:
            self._mappings.remove(mapping)
        except ValueError:
            return False
        return True

    def mappings_for(self, home_domain: str,
                     host_domain: str) -> list[RoleMapping]:
        return [m for m in self._mappings
                if m.home_domain == home_domain
                and m.host_domain == host_domain]

    # -- guest lifecycle ----------------------------------------------------------

    def _home_is_authorized(self, home: ActiveRBACEngine, user: str,
                            role: str) -> bool:
        """One home-domain authorization lookup.

        Factored out as the federation's transient-fault point: in a
        distributed deployment this is a remote call, so the harness
        patches this method to simulate partial outages.
        """
        return home.model.is_authorized(user, role)

    def entitled_host_roles(self, home_domain: str, user: str,
                            host_domain: str) -> set[str]:
        """Host roles the user's *current* home authorization entitles.

        Each home-domain lookup is retried ``lookup_attempts`` times
        with bounded backoff; a home domain that stays unreachable
        raises :class:`~repro.errors.RetryExhausted` (fail closed: no
        guess about entitlements is made).  Exhaustion is audited on
        the *host* domain — that is where the guest was refused, and
        its audit trail is what the host's operators review.
        """
        home = self.domain(home_domain)
        host = self.domain(host_domain)
        if user not in home.model.users:
            return set()
        entitled: set[str] = set()
        for m in self.mappings_for(home_domain, host_domain):
            try:
                authorized = retry_transient(
                    lambda role=m.home_role:
                    self._home_is_authorized(home, user, role),
                    attempts=self.lookup_attempts,
                    base_delay=self.lookup_backoff,
                    on_retry=lambda attempt, exc:
                    home.obs.retry_attempted("federation.lookup"),
                )
            except RetryExhausted as exc:
                host.audit.record(
                    "federation.lookup_exhausted",
                    user=user, home_domain=home_domain,
                    host_domain=host_domain, home_role=m.home_role,
                    attempts=self.lookup_attempts,
                    error=type(exc.__cause__).__name__
                    if exc.__cause__ is not None else None)
                raise
            if authorized:
                entitled.add(m.host_role)
        return entitled

    def visit(self, home_domain: str, user: str, host_domain: str,
              roles: tuple[str, ...] = ()) -> str:
        """Open a guest session for ``user`` in ``host_domain``.

        The guest principal is created (if absent) and assigned every
        entitled host role through the host's administrative rules;
        then a session is created with the requested initial role set.
        Raises :class:`~repro.errors.AdministrationError` when nothing
        entitles the user to visit.
        """
        entitled = self.entitled_host_roles(home_domain, user, host_domain)
        if not entitled:
            raise AdministrationError(
                f"user {user!r} of domain {home_domain!r} has no "
                f"entitlements in domain {host_domain!r}")
        host = self.domain(host_domain)
        principal = guest_principal(user, home_domain)
        if principal not in host.model.users:
            host.add_user(principal)
        for role in sorted(entitled):
            if not host.model.is_assigned(principal, role):
                host.assign_user(principal, role)
        return host.create_session(principal, roles=roles)

    # -- revocation propagation -------------------------------------------------------

    def revalidate_guests(self) -> int:
        """Re-check every guest assignment against current home
        authorization; deassign stale ones.  Returns assignments
        removed."""
        removed = 0
        for host_name, host in self._domains.items():
            for principal in list(host.model.users):
                user, at, home_name = principal.partition("@")
                if not at or home_name not in self._domains:
                    continue
                entitled = self.entitled_host_roles(home_name, user,
                                                    host_name)
                for role in list(host.model.assigned_roles(principal)):
                    if role not in entitled:
                        try:
                            host.deassign_user(principal, role)
                            removed += 1
                        except ReproError:  # pragma: no cover - defensive
                            pass
        return removed

    def _on_home_deassign(self, home_name: str, occurrence) -> None:
        """Eager revocation when a home domain deassigns a user."""
        user = occurrence.get("user")
        if user is None:
            return
        for host_name, host in self._domains.items():
            if host_name == home_name:
                continue
            principal = guest_principal(str(user), home_name)
            if principal not in host.model.users:
                continue
            entitled = self.entitled_host_roles(home_name, str(user),
                                                host_name)
            for role in list(host.model.assigned_roles(principal)):
                if role not in entitled:
                    try:
                        host.deassign_user(principal, role)
                    except ReproError:  # pragma: no cover - defensive
                        pass

    # -- reporting ----------------------------------------------------------------------

    def describe(self) -> str:
        lines = [f"federation: {len(self._domains)} domain(s), "
                 f"{len(self._mappings)} mapping(s)"]
        for name in sorted(self._domains):
            engine = self._domains[name]
            guests = sum(1 for user in engine.model.users if "@" in user)
            lines.append(f"  {name}: {len(engine.model.roles)} roles, "
                         f"{len(engine.model.users)} users "
                         f"({guests} guests)")
        for mapping in self._mappings:
            lines.append("  map " + mapping.describe())
        return "\n".join(lines)
