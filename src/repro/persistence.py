"""Engine state snapshot and restore (restart recovery).

A production enforcement point must survive restarts without losing
sessions or temporal state.  :func:`snapshot` captures everything the
engine needs in a JSON-serialisable dict:

* the policy (rendered as canonical DSL text — the single source the
  rule pool regenerates from),
* the simulated clock,
* sessions with their active roles, activation ids and start times,
* role enabled/disabled status,
* locked users and context variables,
* the session/activation counters (peeked, never consumed — taking a
  snapshot must not mutate the live engine),
* in-flight partial detections (buffered SEQUENCE initiators, pending
  PLUS countdowns, open APERIODIC windows, ...) via
  :meth:`~repro.events.detector.EventDetector.state_snapshot`,
* per-rule circuit-breaker state (fault counters, quarantine flags)
  via :meth:`~repro.rules.manager.RuleManager.state_snapshot`.

:func:`restore` rebuilds a fresh :class:`~repro.engine.ActiveRBACEngine`
from the snapshot: the rule pool is *regenerated* from the policy (not
serialised — rules are code), sessions are re-created, and activation
duration countdowns are **re-armed with their remaining time**; a
countdown that expired while the engine was down deactivates the role
immediately on restore.

What is deliberately *not* restored:

* the audit log (ship it to durable storage via
  ``engine.audit.observe``; a restored engine starts a fresh log);
* active-security sliding windows (conservative reset: a restart
  re-arms every threshold from zero);
* the compiled :class:`~repro.kernel.PolicyKernel` — it is derived
  state (a pure function of the restored policy), never snapshotted;
  the rebuilt engine recompiles lazily on its first check (or eagerly
  in :func:`repro.wal.recover`).

Sessions/activations that reference users or roles removed from the
policy since the snapshot are *dropped*, but never silently: each drop
is recorded in the audit log and counted in the ``admin.restore``
record, so an operator can tell recovery lost state on purpose.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.clock import VirtualClock
from repro.containment import fsync_dir, fsync_file, retry_transient
from repro.engine import ActiveRBACEngine
from repro.policy.dsl import parse_policy, render_policy

SNAPSHOT_VERSION = 2

#: snapshot versions :func:`restore` accepts (v1 predates the
#: ``detector``/``rules``/``policy_epoch`` keys, all optional on read)
SUPPORTED_VERSIONS = (1, 2)


def snapshot(engine: ActiveRBACEngine) -> dict[str, Any]:
    """Capture the engine's dynamic state as a JSON-serialisable dict."""
    sessions = []
    for session_id, session in engine.model.sessions.items():
        activations = {}
        for role in session.active_roles:
            key = (session_id, role)
            activations[role] = {
                "activation_id": engine.current_activation.get(key, 0),
                "started": engine.activation_started.get(
                    key, engine.clock.now),
            }
        sessions.append({
            "id": session_id,
            "user": session.user,
            "activations": activations,
        })
    return {
        "version": SNAPSHOT_VERSION,
        "policy": render_policy(engine.policy),
        "clock": engine.clock.now,
        # fresh stamps must order after every restored in-flight
        # occurrence minted at the same instant
        "clock_seq": engine.clock.tiebreak,
        "sessions": sessions,
        "role_enabled": {
            name: role.enabled
            for name, role in engine.model.roles.items()
        },
        "locked_users": sorted(engine.locked_users),
        "context": {
            key: value
            for key, value in engine.context.snapshot().items()
            if isinstance(value, (str, int, float, bool, type(None)))
        },
        "counters": {
            # peek, don't consume: snapshotting a live engine must not
            # burn ids (the seed drained these with next())
            "session_seq": engine._session_seq.peek,
            "activation_seq": engine._activation_seq.peek,
        },
        "policy_epoch": engine.policy_epoch,
        "config_version": engine.config_version,
        "detector": engine.detector.state_snapshot(),
        "rules": engine.rules.state_snapshot(),
    }


def dumps(engine: ActiveRBACEngine, **json_kwargs: Any) -> str:
    """Snapshot as a JSON string."""
    return json.dumps(snapshot(engine), **json_kwargs)


def restore(data: dict[str, Any]) -> ActiveRBACEngine:
    """Rebuild an engine from a :func:`snapshot` dict."""
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported snapshot version {version!r} "
            f"(expected one of {SUPPORTED_VERSIONS})")
    policy = parse_policy(data["policy"])
    clock = VirtualClock(start=float(data["clock"]))
    clock.resume_tiebreak(int(data.get("clock_seq", 0)))
    engine = ActiveRBACEngine(policy, clock=clock)

    # counters resume past the snapshot's high-water marks
    from repro.engine import MonotonicSequence
    counters = data.get("counters", {})
    engine._session_seq = MonotonicSequence(
        int(counters.get("session_seq", 1)))
    engine._activation_seq = MonotonicSequence(
        int(counters.get("activation_seq", 1)))
    engine.policy_epoch = int(data.get("policy_epoch", 0))
    raw_version = data.get("config_version")
    engine.config_version = (None if raw_version is None
                             else int(raw_version))

    # role status: snapshot values override the windows' initial guess
    for name, enabled in data.get("role_enabled", {}).items():
        if name in engine.model.roles:
            engine.model.roles[name].enabled = bool(enabled)

    engine.locked_users = set(data.get("locked_users", ()))
    for key, value in data.get("context", {}).items():
        engine.context.set(key, value)

    now = engine.clock.now
    dropped_sessions = 0
    dropped_activations = 0
    for session in data.get("sessions", ()):
        session_id = session["id"]
        user = session["user"]
        if user not in engine.model.users:
            # user removed from the policy since the snapshot: the
            # session cannot be rebuilt, but the loss is audited
            dropped_sessions += 1
            engine.audit.record("restore.drop_session",
                                session=session_id, user=user,
                                reason="unknown user")
            continue
        engine.model.create_session_record(session_id, user)
        for role, info in session["activations"].items():
            if role not in engine.model.roles:
                dropped_activations += 1
                engine.audit.record("restore.drop_activation",
                                    session=session_id, role=role,
                                    reason="unknown role")
                continue
            activation_id = int(info["activation_id"])
            started = float(info["started"])
            engine.model.add_session_role_record(session_id, role)
            engine.current_activation[(session_id, role)] = activation_id
            engine.activation_started[(session_id, role)] = started
            _rearm_duration(engine, session_id, user, role,
                            activation_id, started, now)

    # v2 extras: in-flight partial detections and breaker state
    detector_state = data.get("detector")
    if detector_state:
        engine.detector.state_restore(detector_state)
    rules_state = data.get("rules")
    if rules_state:
        engine.rules.state_restore(rules_state)

    engine.audit.record("admin.restore",
                        sessions=len(data.get("sessions", ())),
                        dropped_sessions=dropped_sessions,
                        dropped_activations=dropped_activations,
                        clock=now)
    return engine


def loads(text: str) -> ActiveRBACEngine:
    """Restore from a JSON string."""
    return restore(json.loads(text))


#: indirection so the crash harness can kill mid-rename (between the
#: durable tmp file and the visible path) without monkeypatching os
_replace = os.replace


def _write_payload(path: str, payload: str) -> None:
    """Crash-safely write the snapshot payload (tmp + fsync + rename).

    The seed's tmp-file + ``os.replace`` was atomic against *readers*
    but not against power loss: the rename could land while the tmp
    file's data was still in the page cache, leaving a durable name
    pointing at garbage.  Order now: write tmp, fsync tmp, rename,
    fsync the directory (see :func:`repro.containment.fsync_dir`).

    Module-level so tests and the fault-injection harness can patch it
    as a transient-failure point.
    """
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        fsync_file(handle)
    _replace(tmp, path)
    fsync_dir(os.path.dirname(os.path.abspath(path)))


def save(engine: ActiveRBACEngine, path: str, *,
         attempts: int = 3, **json_kwargs: Any) -> None:
    """Snapshot the engine to ``path`` with bounded retry.

    The write is atomic (tmp + ``os.replace``) and retried on
    :class:`~repro.errors.TransientError` / ``OSError`` with bounded
    backoff; retries are counted on the engine's observability hub
    under the ``persistence.write`` site.  Exhaustion raises
    :class:`~repro.errors.RetryExhausted`.
    """
    payload = dumps(engine, **json_kwargs)
    retry_transient(
        lambda: _write_payload(path, payload),
        attempts=attempts,
        on_retry=lambda attempt, exc:
        engine.obs.retry_attempted("persistence.write"),
    )


def load(path: str) -> ActiveRBACEngine:
    """Restore an engine from a snapshot file written by :func:`save`."""
    with open(path, encoding="utf-8") as handle:
        return loads(handle.read())


def _rearm_duration(engine: ActiveRBACEngine, session_id: str, user: str,
                    role: str, activation_id: int, started: float,
                    now: float) -> None:
    """Re-arm a duration countdown with its remaining time.

    The original countdown was a PLUS event armed at activation; after a
    restore only the remainder is owed.  A countdown that already
    expired while the engine was down deactivates immediately.
    """
    delta = engine.duration_for(role, user)
    if delta is None:
        return
    remaining = (started + delta) - now

    def expire() -> None:
        key = (session_id, role)
        if engine.current_activation.get(key) != activation_id:
            return
        if session_id not in engine.model.sessions:
            return
        engine.audit.record("temporal.duration_expired", role=role,
                            session=session_id)
        engine.commit_deactivation(session_id, role)

    if remaining <= 0:
        expire()
    else:
        engine.timers.schedule_after(remaining, expire)
