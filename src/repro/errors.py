"""Exception hierarchy for the repro access-control system.

Every error raised by the public API derives from :class:`ReproError`, so a
caller can catch one base class.  The hierarchy mirrors the subsystems:
RBAC administration, session/runtime enforcement, event algebra, the policy
DSL, and rule synthesis.

The paper's ELSE clauses "raise error ..." (e.g. Rule 1: *insufficient
privileges*, Rule 3: *Access Denied Cannot Activate*).  Those surface here
as :class:`AccessDenied` subclasses carrying the rule name that denied the
request, so callers and the audit log can attribute every denial to the
OWTE rule that produced it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# RBAC administration errors (ANSI INCITS 359-2004 administrative commands)
# ---------------------------------------------------------------------------

class AdministrationError(ReproError):
    """Invalid administrative command (bad arguments or model violation)."""


class UnknownUserError(AdministrationError):
    """Referenced user does not exist in the model."""

    def __init__(self, user: str) -> None:
        super().__init__(f"unknown user: {user!r}")
        self.user = user


class UnknownRoleError(AdministrationError):
    """Referenced role does not exist in the model."""

    def __init__(self, role: str) -> None:
        super().__init__(f"unknown role: {role!r}")
        self.role = role


class UnknownPermissionError(AdministrationError):
    """Referenced permission (operation, object) does not exist."""

    def __init__(self, permission: object) -> None:
        super().__init__(f"unknown permission: {permission!r}")
        self.permission = permission


class UnknownSessionError(AdministrationError):
    """Referenced session identifier does not exist."""

    def __init__(self, session_id: str) -> None:
        super().__init__(f"unknown session: {session_id!r}")
        self.session_id = session_id


class DuplicateEntityError(AdministrationError):
    """Attempt to create a user/role/permission/session that already exists."""


class HierarchyError(AdministrationError):
    """Role-hierarchy modification would break the partial order."""


class HierarchyCycleError(HierarchyError):
    """Adding the inheritance edge would create a cycle."""

    def __init__(self, senior: str, junior: str) -> None:
        super().__init__(
            f"inheritance {senior!r} -> {junior!r} would create a cycle"
        )
        self.senior = senior
        self.junior = junior


class LimitedHierarchyError(HierarchyError):
    """Edge violates the limited-hierarchy (single immediate descendant) rule."""


class SoDError(AdministrationError):
    """Separation-of-duty constraint definition or update is invalid."""


class SsdViolationError(SoDError):
    """Assignment (or SSD-set creation) violates a static SoD constraint."""

    def __init__(self, message: str, constraint: str = "",
                 user: str = "", roles: frozenset[str] = frozenset()) -> None:
        super().__init__(message)
        self.constraint = constraint
        self.user = user
        self.roles = roles


# ---------------------------------------------------------------------------
# Runtime enforcement errors (raised from OWTE rule ELSE branches)
# ---------------------------------------------------------------------------

class AccessDenied(ReproError):
    """A request was denied by an authorization rule's ELSE branch.

    ``rule`` names the OWTE rule whose condition evaluation failed; it is
    empty when the denial came from the direct (baseline) engine.
    """

    def __init__(self, message: str, rule: str = "") -> None:
        super().__init__(message)
        self.rule = rule


class ActivationDenied(AccessDenied):
    """Role activation refused ("Access Denied Cannot Activate")."""


class DeactivationDenied(AccessDenied):
    """Role deactivation refused (e.g. time-based SoD on disabling)."""


class OperationDenied(AccessDenied):
    """checkAccess refused ("Permission Denied" / "insufficient privileges")."""


class DsdViolationError(ActivationDenied):
    """Activation would exceed a dynamic SoD constraint's cardinality."""


class CardinalityExceeded(ActivationDenied):
    """Cardinality constraint hit ("Maximum Number of Roles Reached")."""


class RoleNotEnabledError(ActivationDenied):
    """GTRBAC: the role is not enabled in the current periodic interval."""


class PrerequisiteNotMetError(ActivationDenied):
    """A prerequisite-role or transaction-based activation constraint failed."""


class SecurityLockout(AccessDenied):
    """Active security disabled the rule/resource after repeated violations."""


class RuleExecutionError(AccessDenied):
    """A rule's W/T/E clause raised an *unexpected* (non-ReproError)
    exception and the failure policy is fail-closed for that rule.

    Enforcement must stay sound under arbitrary runtime faults: a broken
    clause can never be allowed to look like a grant, so the rule
    manager wraps the raw exception in this typed deny.  ``original``
    is the wrapped exception (also chained via ``__cause__``) and
    ``clause`` names the OWTE clause that faulted (``when`` / ``then``
    / ``else``).
    """

    def __init__(self, message: str, rule: str = "", clause: str = "",
                 original: BaseException | None = None) -> None:
        super().__init__(message, rule)
        self.clause = clause
        self.original = original


class DeadlineExceeded(AccessDenied):
    """An access check blew its deadline budget and is denied.

    Raised either mid-pipeline (before the next rule fires) or by
    ``require_access`` after dispatch — a check that stalled past its
    budget is denied even if some rule granted it, so a pathological
    condition cannot stall the pipeline into an unbounded grant.
    ``reason`` says which budget tripped (``virtual`` or ``wall``).
    """

    def __init__(self, message: str, rule: str = "",
                 reason: str = "") -> None:
        super().__init__(message, rule)
        self.reason = reason


# ---------------------------------------------------------------------------
# Infrastructure / transient faults
# ---------------------------------------------------------------------------

class TransientError(ReproError):
    """A retryable infrastructure fault (I/O hiccup, unreachable domain).

    Raised by persistence and federation transports to signal that the
    operation may succeed if retried; :func:`repro.containment.retry_transient`
    catches it (and ``OSError``) with bounded backoff.
    """


class RetryExhausted(ReproError):
    """A bounded retry loop used up every attempt.

    ``last`` is the final attempt's exception (also chained via
    ``__cause__``); ``attempts`` is how many were made.
    """

    def __init__(self, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"operation failed after {attempts} attempt(s): "
            f"{type(last).__name__}: {last}")
        self.attempts = attempts
        self.last = last


# ---------------------------------------------------------------------------
# Event algebra errors
# ---------------------------------------------------------------------------

class EventError(ReproError):
    """Invalid event definition or detector misuse."""


class UnknownEventError(EventError):
    """Raised/subscribed event name is not registered with the detector."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown event: {name!r}")
        self.name = name


class DuplicateEventError(EventError):
    """An event with this name is already registered."""


class CalendarExpressionError(EventError):
    """Malformed calendar expression (expected ``hh:mm:ss/mm/dd/yyyy``)."""


# ---------------------------------------------------------------------------
# Rule subsystem errors
# ---------------------------------------------------------------------------

class RuleError(ReproError):
    """Invalid rule definition or rule-manager misuse."""


class DuplicateRuleError(RuleError):
    """A rule with this name already exists in the pool."""


class UnknownRuleError(RuleError):
    """Referenced rule name is not in the pool."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown rule: {name!r}")
        self.name = name


class RuleCascadeError(RuleError):
    """Cascaded rule triggering exceeded the configured depth limit."""


# ---------------------------------------------------------------------------
# Policy DSL / synthesis errors
# ---------------------------------------------------------------------------

class PolicyError(ReproError):
    """Base for policy specification problems."""


class PolicySyntaxError(PolicyError):
    """The policy text failed to lex/parse.

    Carries 1-based ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PolicyValidationError(PolicyError):
    """The parsed policy is inconsistent (cycles, SoD conflicts, ...).

    ``issues`` holds every problem found so administrators can fix all of
    them in one pass rather than one-at-a-time.
    """

    def __init__(self, issues: list[str]) -> None:
        super().__init__(
            "policy validation failed:\n  - " + "\n  - ".join(issues)
        )
        self.issues = list(issues)


class SynthesisError(ReproError):
    """Rule generation from a policy graph failed."""
