"""Baseline enforcement engines the paper argues against.

:class:`~repro.baselines.direct.DirectRBACEngine` is the
"custom-implemented" comparator: the same RBAC model and the same policy
semantics, but enforced by hand-coded inline checks — no events, no
rules, no generation.  It exists for two purposes:

1. **differential testing** — the active engine must make identical
   decisions (the paper changes the mechanism, not the policy);
2. **benchmark B3** — the constant-factor cost of rule-based
   enforcement over direct checks.

Its maintainability is the paper's critique: every constraint family is
one more hand-written ``if`` inside monolithic methods, and a policy
change is a code change (simulated in benchmark B2).
"""

from repro.baselines.direct import DirectRBACEngine

__all__ = ["DirectRBACEngine"]
