"""DirectRBACEngine: hand-coded inline enforcement (no active rules).

The paper's related-work systems "are custom-implemented,
domain-specific and are confined to particular forms of constraints"
(§1).  This engine is that style, done as well as possible: the full
constraint set is supported, but every check is an inline conditional
inside the operation methods.  It shares the
:class:`~repro.enforcement.EnforcementHelpers` predicates with the
active engine so that both engines *decide identically* — the contrast
under study is the mechanism (and its maintainability/extensibility),
not the policy semantics.

Temporal behaviour (duration expiry, enabling windows) is implemented
with direct timer callbacks on the same virtual clock.
"""

from __future__ import annotations

import itertools

from repro.clock import TimerService, VirtualClock
from repro.enforcement import EnforcementHelpers
from repro.errors import (
    DeactivationDenied,
    DuplicateEntityError,
    OperationDenied,
    SecurityLockout,
    UnknownRoleError,
    UnknownSessionError,
    UnknownUserError,
)
from repro.extensions.context import ContextProvider
from repro.extensions.privacy import PrivacyRegistry
from repro.policy.spec import PolicySpec, build_model
from repro.synthesis.templates import activation_error


class DirectRBACEngine(EnforcementHelpers):
    """Inline-check RBAC enforcement over the same model and policy."""

    def __init__(self, policy: PolicySpec | None = None,
                 clock: VirtualClock | None = None) -> None:
        self.clock = clock or VirtualClock()
        self.timers = TimerService(self.clock)
        self.policy = policy.clone() if policy is not None else PolicySpec()
        self.model = build_model(self.policy)
        self.context = ContextProvider()
        self.privacy = PrivacyRegistry()
        self.locked_users: set[str] = set()
        self._session_seq = itertools.count(1)
        self._activation_seq = itertools.count(1)
        self.current_activation: dict[tuple[str, str], int] = {}
        #: denial log (the baseline has no audit subsystem; a list
        #: suffices for its own bookkeeping)
        self.denials: list[tuple[float, str, str]] = []

        for purpose, parent in self.policy.purposes:
            self.privacy.purposes.add(purpose, parent)
        for object_policy in self.policy.object_policies:
            self.privacy.add_policy(object_policy)
        self._install_enabling_windows()

    # ======================================================================
    # administration
    # ======================================================================

    def add_user(self, name: str, max_active_roles: int | None = None) -> None:
        self.model.add_user(name, max_active_roles)
        self.policy.add_user(name, max_active_roles)

    def add_role(self, name: str, max_active_users: int | None = None) -> None:
        self.model.add_role(name, max_active_users)
        self.policy.add_role(name, max_active_users)

    def add_permission(self, operation: str, obj: str) -> None:
        self.model.add_permission(operation, obj)
        if (operation, obj) not in self.policy.permissions:
            self.policy.permissions.append((operation, obj))

    def grant_permission(self, role: str, operation: str, obj: str) -> None:
        self.model.grant_permission(role, operation, obj)
        self.policy.grants.append((role, operation, obj))

    def add_inheritance(self, senior: str, junior: str) -> None:
        self.model.add_inheritance(senior, junior)
        self.policy.add_hierarchy(senior, junior)

    def create_ssd_set(self, name: str, roles: set[str],
                       cardinality: int = 2) -> None:
        self.model.create_ssd_set(name, roles, cardinality)
        self.policy.add_ssd(name, roles, cardinality)

    def create_dsd_set(self, name: str, roles: set[str],
                       cardinality: int = 2) -> None:
        self.model.create_dsd_set(name, roles, cardinality)
        self.policy.add_dsd(name, roles, cardinality)

    def assign_user(self, user: str, role: str) -> None:
        self.model.assign_user(user, role)  # validates SSD inline
        self.policy.add_assignment(user, role)

    def deassign_user(self, user: str, role: str) -> None:
        if not self.model.is_user(user):
            raise UnknownUserError(user)
        if role not in self.model.roles:
            raise UnknownRoleError(role)
        if not self.model.is_assigned(user, role):
            from repro.errors import AdministrationError
            raise AdministrationError(
                f"user {user!r} is not assigned to role {role!r}")
        self.model.remove_assignment_record(user, role)
        # deactivate everything the user lost authorization for,
        # through the cascading path (anchor cleanup, timers)
        for session_id, stale in self.unauthorized_activations(user):
            self._commit_deactivation(session_id, stale)
        try:
            self.policy.assignments.remove((user, role))
        except ValueError:
            pass

    def delete_inheritance(self, senior: str, junior: str) -> None:
        self.model.delete_inheritance(senior, junior)
        try:
            self.policy.hierarchy.remove((senior, junior))
        except ValueError:
            pass
        for session_id, stale in self.unauthorized_activations():
            self._commit_deactivation(session_id, stale)

    # ======================================================================
    # sessions and activations
    # ======================================================================

    def create_session(self, user: str, session_id: str | None = None,
                       roles: tuple[str, ...] = ()) -> str:
        sid = session_id or f"s{next(self._session_seq)}"
        if not self.model.is_user(user):
            raise UnknownUserError(user)
        if self.is_user_locked(user):
            raise SecurityLockout(f"user {user!r} is locked")
        if self.model.is_session(sid):
            raise DuplicateEntityError(f"session {sid!r} already exists")
        self.model.create_session_record(sid, user)
        try:
            for role in roles:
                self.add_active_role(sid, role)
        except Exception:
            self.delete_session(sid)
            raise
        return sid

    def delete_session(self, session_id: str) -> None:
        if not self.model.is_session(session_id):
            raise UnknownSessionError(session_id)
        session = self.model.sessions[session_id]
        for role in list(session.active_roles):
            self._commit_deactivation(session_id, role)
        self.model.delete_session_record(session_id)

    def add_active_role(self, session_id: str, role: str) -> None:
        if role not in self.model.roles:
            raise UnknownRoleError(role)
        allowed, reason = self.can_activate(session_id, role)
        if not allowed:
            session = self.model.sessions.get(session_id)
            user = session.user if session else None
            self.denials.append((self.clock.now, "activation", reason))
            raise activation_error(reason, rule="")
        activation_id = next(self._activation_seq)
        self.model.add_session_role_record(session_id, role)
        self.current_activation[(session_id, role)] = activation_id
        self._arm_duration_timer(session_id, role, activation_id)

    def drop_active_role(self, session_id: str, role: str) -> None:
        if role not in self.model.roles:
            raise UnknownRoleError(role)
        if not self.model.is_active_in_session(session_id, role):
            raise DeactivationDenied(
                f"role {role!r} is not active in session {session_id!r}")
        self._commit_deactivation(session_id, role)

    def check_access(self, session_id: str, operation: str, obj: str,
                     purpose: str | None = None) -> bool:
        try:
            self.require_access(session_id, operation, obj, purpose)
            return True
        except OperationDenied:
            return False

    def require_access(self, session_id: str, operation: str, obj: str,
                       purpose: str | None = None) -> None:
        session = self.model.sessions.get(session_id)
        allowed = (
            session is not None
            and not self.is_user_locked(session.user)
            and operation in self.model.operations
            and obj in self.model.objects
            and self.access_roles_ok(session_id, operation, obj)
            and self.privacy_ok(obj, operation, purpose)[0]
        )
        if not allowed:
            self.denials.append((self.clock.now, "access",
                                 f"{operation} on {obj}"))
            raise OperationDenied("Permission Denied")

    # ======================================================================
    # role status (GTRBAC)
    # ======================================================================

    def enable_role(self, role: str) -> None:
        if role not in self.model.roles:
            raise UnknownRoleError(role)
        self._enable_with_postconditions(role)

    def disable_role(self, role: str) -> None:
        if role not in self.model.roles:
            raise UnknownRoleError(role)
        if not self.disabling_sod_ok(role):
            raise DeactivationDenied(
                f"Denied as partner role Already Disabled "
                f"(disabling-time SoD on {role!r})")
        self._commit_disable(role)

    # ======================================================================
    # internals: inline equivalents of the generated cascades
    # ======================================================================

    def _commit_deactivation(self, session_id: str, role: str) -> None:
        self.model.drop_session_role_record(session_id, role)
        self.current_activation.pop((session_id, role), None)
        self._anchor_cleanup(role)

    def _anchor_cleanup(self, role: str) -> None:
        """Rule 9's cascade, inlined: if this was the last activation of
        a transaction anchor, deactivate every dependent role."""
        if self.model.active_user_count(role) != 0:
            return
        for dependent in self.transaction_dependents_of(role):
            for session_id, session in list(self.model.sessions.items()):
                if dependent in session.active_roles:
                    self._commit_deactivation(session_id, dependent)

    def _commit_disable(self, role: str) -> None:
        if not self.model.roles[role].enabled:
            return
        # deactivate everywhere with anchor cleanup, then flip the flag
        for session_id, session in list(self.model.sessions.items()):
            if role in session.active_roles:
                self._commit_deactivation(session_id, role)
        self.model.set_role_enabled(role, False)

    def _enable_with_postconditions(self, role: str) -> None:
        """Rule 8's post-condition CFD, inlined with rollback."""
        if self.model.is_role_enabled(role):
            return
        self.model.set_role_enabled(role, True)
        for post in self.policy.post_conditions:
            if post.trigger_role != role:
                continue
            partner = post.required_role
            if self.model.is_role_enabled(partner):
                continue
            try:
                self._enable_with_postconditions(partner)
            except Exception:
                self._commit_disable(role)
                raise
            if not self.model.is_role_enabled(partner):
                self._commit_disable(role)
                raise activation_error(
                    f"Cannot Activate {role}: required role "
                    f"{partner!r} could not be enabled", rule="")

    def _arm_duration_timer(self, session_id: str, role: str,
                            activation_id: int) -> None:
        session = self.model.sessions.get(session_id)
        if session is None:
            return
        delta = self.duration_for(role, session.user)
        if delta is None:
            return

        def expire() -> None:
            key = (session_id, role)
            if self.current_activation.get(key) != activation_id:
                return  # re-activated or already deactivated
            self._commit_deactivation(session_id, role)

        self.timers.schedule_after(delta, expire)

    def _install_enabling_windows(self) -> None:
        for window in self.policy.enabling_windows:
            role, interval = window.role, window.interval
            if role not in self.model.roles:
                continue
            self.model.set_role_enabled(
                role, interval.contains(self.clock.now))
            self._schedule_window(role, interval)

    def _schedule_window(self, role: str, interval) -> None:
        instant, opens = interval.next_boundary(self.clock.now)
        if instant == float("inf"):
            return

        def fire() -> None:
            if role in self.model.roles:
                if opens:
                    try:
                        self._enable_with_postconditions(role)
                    except Exception:
                        pass  # timers have no requester to notify
                else:
                    if self.disabling_sod_ok(role):
                        self._commit_disable(role)
            self._schedule_window(role, interval)

        self.timers.schedule_at(instant, fire)

    def advance_time(self, seconds: float) -> int:
        return self.timers.advance(seconds)
