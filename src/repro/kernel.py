"""PolicyKernel: the compiled decision plane.

The engine is split into two layers.  The **control plane** — policy
edits, rule synthesis/regeneration, WAL logging, quarantine — owns all
mutation and bumps ``engine.policy_epoch`` (plus the finer-grained
``RuleManager.version`` / ``EventDetector.version`` counters) on every
change.  The **data plane** is this module's :class:`PolicyKernel`: an
immutable artifact compiled once per epoch that answers the static
majority of ``checkAccess`` decisions without raising an event or
firing a rule.

What compilation bakes in (Ali & Fernández's static-enforcement view
of RBAC, specialised to the paper's active-rule engine):

* **interning** — users, roles, operations, objects and (operation,
  object) permission pairs are mapped to dense integer ids;
* **hierarchy flattening** — the role hierarchy's reflexive-transitive
  closure becomes one Python-int bitset per role (``seniors_mask`` /
  ``juniors_mask``), replacing the repeated BFS walks of
  :meth:`RoleHierarchy.seniors`;
* **grant relation** — one permission bitmask per role
  (``grant_masks``), folding the junior-closure union of
  :meth:`RBACModel.role_permissions` into a single AND at decision
  time;
* **scope closure** — the S-A-O-C scope tree's reflexive-transitive
  ancestor chains become one bitset per scope (``scope_anc_mask``),
  scoped grants become per-role per-scope permission bitmasks with the
  junior closure folded in, and assignment scope limits become
  per-(user, role) scope bitsets — so a scoped check is the same
  AND-of-bitsets shape as a flat one;
* **static SoD** — pairwise SSD conflict bitmasks (an analysis
  artifact: assignment-time enforcement stays in the model);
* **dispatch table** — the per-event rule lists, so the control plane
  can audit which rules a given event reaches without re-filtering.

What stays *dynamic* and forces a fallback to the interpreted OWTE
pipeline (``KERNEL_FALLBACK``): roles gated by access-scoped context
constraints, privacy-regulated objects (purpose trees and obligations),
explicit deadlines, full-fidelity diagnostics (tracing, time-every-
firing sampling), and any entity or rule state the compile did not see.
The fallback is the correctness anchor — the differential property test
(`tests/property/test_prop_kernel_equivalence.py`) pins kernel-first
answers to the interpreted pipeline's across random policies,
mutations, and recovery.

A kernel never mutates anything and is never persisted: snapshots and
the WAL carry only the policy source, and recovery recompiles (see
``persistence.py`` / ``wal.recover``).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.rbac.scopes import SCOPE_ROOT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine import ActiveRBACEngine

#: decision protocol: evaluate() returns one of these plain ints
KERNEL_GRANT = 1
KERNEL_DENY = 0
KERNEL_FALLBACK = -1

#: evaluate() reasons a decision could not be compiled away, keyed for
#: the stats()/CLI surface (monotonic per-kernel tallies).  These are
#: the kernel-internal subset of the full provenance taxonomy
#: (:data:`repro.obs.provenance.FALLBACK_REASONS`), which adds the
#: engine-level bypass reasons classified before the kernel is
#: consulted (deadline, diagnostics, observers, disabled).
_FALLBACK_KEYS = (
    "coverage", "quarantine", "instrumented", "unknown_entity",
    "context_role", "privacy", "stale_privacy",
)


class PolicyKernel:
    """An immutable compiled view of one policy epoch.

    Build with :meth:`compile` (or the constructor) against a live
    engine; consult with :meth:`evaluate`.  The kernel holds **no
    mutable authority state** — sessions, active roles and user locks
    are read live through the engine reference at decision time, so a
    kernel only goes stale when the *policy* (or the rule pool / event
    graph built from it) changes, which the version triple detects.
    """

    __slots__ = (
        "engine", "epoch", "rules_version", "detector_version",
        "user_ids", "role_ids", "op_ids", "obj_ids", "perm_ids",
        "role_names", "juniors_mask", "seniors_mask", "grant_masks",
        "context_roles_mask", "regulated_objects", "privacy_len",
        "ssd_conflicts", "dispatch", "static_rules", "dynamic_rules",
        "coverage_gap", "build_ns", "fallbacks", "last_fallback",
        "_ca", "_ca_conditions", "_ca_actions", "_ca_alt_actions",
        "_node", "_sessions", "_grant_by_role",
        "scope_ids", "scope_anc_mask", "scopes_version",
        "_scoped_grant_by_role", "_scope_cover_by_role", "_scope_limited",
    )

    def __init__(self, engine: ActiveRBACEngine) -> None:
        start = time.perf_counter_ns()
        model = engine.model
        hierarchy = model.hierarchy

        self.engine = engine
        self.epoch = engine.policy_epoch
        self.rules_version = engine.rules.version
        self.detector_version = engine.detector.version
        self._sessions = model.sessions  # live dict, identity-stable

        # -- interning ----------------------------------------------------
        self.user_ids = {u: i for i, u in enumerate(sorted(model.users))}
        self.role_ids = {r: i for i, r in enumerate(sorted(model.roles))}
        self.role_names = sorted(model.roles)
        self.op_ids = {o: i for i, o in enumerate(sorted(model.operations))}
        self.obj_ids = {o: i for i, o in enumerate(sorted(model.objects))}
        self.perm_ids = {
            (p.operation, p.obj): i
            for i, p in enumerate(sorted(
                model.permissions, key=lambda p: (p.operation, p.obj)))
        }

        # -- hierarchy closure bitsets ------------------------------------
        # reflexive-transitive closure in both directions; one Python
        # int per role replaces a BFS walk per authorization question
        rid = self.role_ids
        self.juniors_mask = [0] * len(rid)
        self.seniors_mask = [0] * len(rid)
        for role, i in rid.items():
            mask = 0
            for junior in hierarchy.juniors_inclusive(role):
                mask |= 1 << rid[junior]
            self.juniors_mask[i] = mask
        for role, i in rid.items():
            bit = 1 << i
            for j in range(len(self.juniors_mask)):
                if self.juniors_mask[j] & bit:
                    self.seniors_mask[i] |= 1 << j

        # -- grant relation: role -> permission bitmask -------------------
        # role_permissions() already folds the junior closure in, so the
        # flattening above and this union agree by construction
        self.grant_masks = [0] * len(rid)
        for role, i in rid.items():
            mask = 0
            for perm in model.role_permissions(role):
                pid = self.perm_ids.get((perm.operation, perm.obj))
                if pid is not None:
                    mask |= 1 << pid
            self.grant_masks[i] = mask
        self._grant_by_role = {
            role: self.grant_masks[i] for role, i in rid.items()}

        # -- scope tree: interning + reflexive ancestor closure -----------
        # one bitset per scope replaces the parent-chain walk; a check
        # at scope T is covered by a grant at S iff bit(S) is in T's
        # ancestor mask
        scopes = model.scopes
        self.scopes_version = scopes.version
        self.scope_ids = {s: i for i, s in enumerate(sorted(scopes))}
        self.scope_anc_mask = [0] * len(self.scope_ids)
        for name, i in self.scope_ids.items():
            mask = 0
            for anc in scopes.ancestors_inclusive(name):
                mask |= 1 << self.scope_ids[anc]
            self.scope_anc_mask[i] = mask

        # scoped grants: role -> scope id -> permission bitmask, junior
        # closure folded in at compile (mirrors grant_masks); the cover
        # mask ORs each role's granted-scope bits so the hot loop can
        # reject non-intersecting scopes with one AND
        self._scoped_grant_by_role: dict[str, dict[int, int]] = {}
        self._scope_cover_by_role: dict[str, int] = {}
        for role in model.roles:
            per_scope: dict[int, int] = {}
            cover = 0
            for member in hierarchy.juniors_inclusive(role):
                scoped = model._pa_scoped.get(member)
                if not scoped:
                    continue
                for scope_name, perms in scoped.items():
                    sid = self.scope_ids.get(scope_name)
                    if sid is None:
                        continue
                    mask = 0
                    for perm in perms:
                        pid = self.perm_ids.get((perm.operation, perm.obj))
                        if pid is not None:
                            mask |= 1 << pid
                    if mask:
                        per_scope[sid] = per_scope.get(sid, 0) | mask
                        cover |= 1 << sid
            if per_scope:
                self._scoped_grant_by_role[role] = per_scope
                self._scope_cover_by_role[role] = cover

        # assignment scope limits: (user, activatable role) -> OR of
        # bound scope bits, hierarchy folded: a role activated under a
        # bounded *senior* assignment inherits the senior's bounds, and
        # any unbounded authorizing assignment lifts the limit (matches
        # RBACModel.assignment_covers).  Empty dict on flat policies
        # keeps the flat path at one truthiness test.
        self._scope_limited: dict[tuple[str, str], int] = {}
        if model._ua_scopes:
            bounded: dict[tuple[str, str], int] = {}
            unbounded: set[tuple[str, str]] = set()
            for user, assigned in model._ua.items():
                for holder in assigned:
                    bounds = model._ua_scopes.get((user, holder))
                    lim = 0
                    if bounds is not None:
                        for bound in bounds:
                            sid = self.scope_ids.get(bound)
                            if sid is not None:
                                lim |= 1 << sid
                    for member in hierarchy.juniors_inclusive(holder):
                        key = (user, member)
                        if bounds is None:
                            unbounded.add(key)
                        else:
                            bounded[key] = bounded.get(key, 0) | lim
            self._scope_limited = {
                key: lim for key, lim in bounded.items()
                if key not in unbounded
            }

        # -- dynamic-feature sets -----------------------------------------
        self.context_roles_mask = 0
        for constraint in engine.policy.context_constraints:
            if (constraint.applies_to == "access"
                    and constraint.role in rid):
                self.context_roles_mask |= 1 << rid[constraint.role]
        # privacy: policies are only ever *added* (see
        # PrivacyRegistry.add_policy), and only new (obj, op) keys grow
        # the dict — so its length is a sound staleness probe for the
        # compiled regulated-object set
        self.regulated_objects = frozenset(
            key[0] for key in engine.privacy._policies)
        self.privacy_len = len(engine.privacy._policies)

        # -- static SoD conflicts (analysis artifact) ---------------------
        self.ssd_conflicts = tuple(
            (constraint.name,
             sum(1 << rid[r] for r in constraint.roles if r in rid),
             constraint.cardinality)
            for constraint in model.sod.ssd_sets()
        )

        # -- rule dispatch table + static/dynamic classification ----------
        from repro.rules.rule import EvalClass
        self.dispatch = {}
        self.static_rules = 0
        self.dynamic_rules = 0
        for rule in engine.rules:
            self.dispatch.setdefault(rule.event, []).append(rule.name)
            if rule.evaluation is EvalClass.STATIC:
                self.static_rules += 1
            else:
                self.dynamic_rules += 1
        self.dispatch = {
            event: tuple(names) for event, names in self.dispatch.items()}

        # -- checkAccess fast-path coverage -------------------------------
        # The kernel may only answer when the interpreted pipeline would
        # have done exactly one thing: dispatch the checkAccess event to
        # the rule manager and fire the single static CA rule.  Anything
        # else on the event (composite parents, extra listeners, extra
        # rules) is semantics the compile cannot see.
        self._ca = None
        self._ca_conditions = ()
        self._ca_actions = ()
        self._ca_alt_actions = ()
        self._node = None
        self.coverage_gap = self._check_coverage(engine)

        self.fallbacks = dict.fromkeys(_FALLBACK_KEYS, 0)
        #: reason of the most recent KERNEL_FALLBACK verdict; the
        #: engine reads it right after evaluate() to label the
        #: fallback-reason counter and the flight-recorder entry
        self.last_fallback: str | None = None
        self.build_ns = time.perf_counter_ns() - start

    # -- compilation helpers ----------------------------------------------

    def _check_coverage(self, engine: ActiveRBACEngine) -> str | None:
        """Why the checkAccess fast path must stay off, or None."""
        detector = engine.detector
        rules = engine.rules
        from repro.rules.rule import EvalClass

        if "checkAccess" not in detector:
            return "no checkAccess event"
        if "accessDenied" not in detector:
            return "no accessDenied event"
        handlers = rules.rules_for_event("checkAccess")
        if len(handlers) != 1:
            return f"{len(handlers)} rules on checkAccess (need exactly 1)"
        ca = handlers[0]
        if ca.evaluation is not EvalClass.STATIC:
            return f"rule {ca.name!r} is classified dynamic"
        if (tuple(ca.conditions), tuple(ca.actions),
                tuple(ca.alt_actions)) != ca.clause_baseline:
            # fault-injection probes (or any clause rewiring) were
            # live at compile time: only the interpreted path runs them
            return f"rule {ca.name!r} clauses are instrumented"
        node = detector.node("checkAccess")
        if node.parents:
            return "checkAccess feeds composite events"
        dispatcher = rules._dispatchers.get("checkAccess")
        if (dispatcher is None
                or detector.exclusive_listener("checkAccess")
                is not dispatcher):
            return "checkAccess has listeners beyond the rule manager"
        self._ca = ca
        self._ca_conditions = ca.conditions
        self._ca_actions = ca.actions
        self._ca_alt_actions = ca.alt_actions
        self._node = node
        return None

    # -- staleness ---------------------------------------------------------

    def fresh(self, engine: ActiveRBACEngine) -> bool:
        """Does this kernel still describe the engine's policy state?"""
        return (engine is self.engine
                and self.epoch == engine.policy_epoch
                and self.rules_version == engine.rules.version
                and self.detector_version == engine.detector.version
                and self.scopes_version == engine.model.scopes.version)

    def stale_reason(self, engine: ActiveRBACEngine) -> str | None:
        if engine is not self.engine:
            return "engine"
        if self.epoch != engine.policy_epoch:
            return "epoch"
        if self.rules_version != engine.rules.version:
            return "rules"
        if self.detector_version != engine.detector.version:
            return "detector"
        if self.scopes_version != engine.model.scopes.version:
            return "scopes"
        return None

    # -- the decision ------------------------------------------------------

    def evaluate(self, session_id: str, operation: str, obj: str,
                 scope: str | None = None) -> int:
        """Decide one checkAccess request from the compiled view.

        Returns :data:`KERNEL_GRANT`, :data:`KERNEL_DENY`, or
        :data:`KERNEL_FALLBACK` when the request touches anything the
        compile classified as dynamic.  Pure: no events, no audit, no
        counters — the engine wrapper owns side-effect parity.

        ``scope`` is the normalized S-A-O-C context (``None`` / root =
        flat): a serving role must hold the permission flat or via a
        scoped grant at an ancestor of ``scope``, and a scope-limited
        assignment only serves scopes inside its bounds (never the
        flat check).  Unknown scopes deny — fail closed.
        """
        ca = self._ca
        if ca is None:
            self.fallbacks["coverage"] += 1
            self.last_fallback = "coverage"
            return KERNEL_FALLBACK
        # Live rule state: quarantine/disable flips without a version
        # bump mid-dispatch are impossible (quarantine bumps version),
        # but the fault-injection harness *instruments* clauses by
        # reassigning the tuples — identity tells us the rule no longer
        # does what we compiled.
        if not ca.enabled or ca.quarantined:
            self.fallbacks["quarantine"] += 1
            self.last_fallback = "quarantine"
            return KERNEL_FALLBACK
        if (ca.conditions is not self._ca_conditions
                or ca.actions is not self._ca_actions
                or ca.alt_actions is not self._ca_alt_actions):
            self.fallbacks["instrumented"] += 1
            self.last_fallback = "instrumented"
            return KERNEL_FALLBACK

        session = self._sessions.get(session_id)
        if session is None:
            return KERNEL_DENY
        if session.user in self.engine.locked_users:
            return KERNEL_DENY

        pid = self.perm_ids.get((operation, obj))
        if pid is None:
            # The version triple keeps the kernel and the permission set
            # in lockstep through the engine's admin API; a pair the
            # compile never saw but the model now holds means someone
            # mutated the model directly — fall back rather than guess.
            if any(p.operation == operation and p.obj == obj
                   for p in self.engine.model.permissions):
                self.fallbacks["unknown_entity"] += 1
                self.last_fallback = "unknown_entity"
                return KERNEL_FALLBACK
            return KERNEL_DENY

        anc = 0
        if scope is not None and scope != SCOPE_ROOT:
            sid = self.scope_ids.get(scope)
            if sid is None:
                # same contract as permissions: a scope added through
                # the admin API bumps the scope version and recompiles;
                # one the compile never saw but the tree now holds means
                # direct model mutation — fall back rather than guess
                if scope in self.engine.model.scopes:
                    self.fallbacks["unknown_entity"] += 1
                    self.last_fallback = "unknown_entity"
                    return KERNEL_FALLBACK
                return KERNEL_DENY
            anc = self.scope_anc_mask[sid]

        bit = 1 << pid
        ctx_mask = self.context_roles_mask
        grant = self._grant_by_role
        limited = self._scope_limited
        saw_dynamic = False
        granted = False
        for role in session.active_roles:
            mask = grant.get(role)
            if mask is None:
                # role created after compile: stale view
                self.fallbacks["unknown_entity"] += 1
                self.last_fallback = "unknown_entity"
                return KERNEL_FALLBACK
            if limited:
                lim = limited.get((session.user, role))
                if lim is not None and (not anc or not lim & anc):
                    # scope-limited assignment: covers only its bound
                    # subtrees, never the flat/root check
                    continue
            holds = bool(mask & bit)
            if not holds and anc:
                cover = self._scope_cover_by_role.get(role, 0) & anc
                if cover:
                    scoped = self._scoped_grant_by_role[role]
                    while cover:
                        low = cover & -cover
                        if scoped.get(low.bit_length() - 1, 0) & bit:
                            holds = True
                            break
                        cover ^= low
            if holds:
                if ctx_mask and (1 << self.role_ids[role]) & ctx_mask:
                    # context-gated role: only the interpreted predicate
                    # can say whether the grant stands right now
                    saw_dynamic = True
                    continue
                granted = True
                break
        if granted:
            if len(self.engine.privacy._policies) != self.privacy_len:
                self.fallbacks["stale_privacy"] += 1
                self.last_fallback = "stale_privacy"
                return KERNEL_FALLBACK
            if obj in self.regulated_objects:
                # purpose compliance + obligations are interpreted
                self.fallbacks["privacy"] += 1
                self.last_fallback = "privacy"
                return KERNEL_FALLBACK
            return KERNEL_GRANT
        if saw_dynamic:
            self.fallbacks["context_role"] += 1
            self.last_fallback = "context_role"
            return KERNEL_FALLBACK
        return KERNEL_DENY

    def evaluate_stateless(self, active_roles, operation: str,
                           obj: str,
                           scope: str | None = None) -> tuple[int, str | None]:
        """Decide one check from the compiled policy alone.

        The shadow-compare/replay primitive: the caller supplies the
        session's active role set (runtime state lives with the *live*
        engine; a candidate kernel compiled off to the side has no
        sessions of its own) and owns the runtime deny cases — missing
        session, locked user.  Returns ``(verdict, reason)`` where a
        :data:`KERNEL_FALLBACK` verdict means the compiled policy
        cannot answer statically (context-gated role, privacy-
        regulated object) and carries the reason; no tallies move.
        Roles the compiled policy does not know simply grant nothing —
        under a *candidate* policy an unknown role is a policy
        difference, not staleness.  ``scope`` applies grant scoping
        only (there is no user here, so assignment limits cannot be
        consulted — the shadow comparator tallies scoped decisions as
        indeterminate before ever reaching this); unknown scopes deny.
        """
        pid = self.perm_ids.get((operation, obj))
        if pid is None:
            return KERNEL_DENY, None
        anc = 0
        if scope is not None and scope != SCOPE_ROOT:
            sid = self.scope_ids.get(scope)
            if sid is None:
                return KERNEL_DENY, None
            anc = self.scope_anc_mask[sid]
        bit = 1 << pid
        ctx_mask = self.context_roles_mask
        grant = self._grant_by_role
        saw_dynamic = False
        for role in active_roles:
            mask = grant.get(role)
            holds = mask is not None and bool(mask & bit)
            if not holds and anc:
                cover = self._scope_cover_by_role.get(role, 0) & anc
                while cover:
                    low = cover & -cover
                    if (self._scoped_grant_by_role[role]
                            .get(low.bit_length() - 1, 0) & bit):
                        holds = True
                        break
                    cover ^= low
            if not holds:
                continue
            if ctx_mask and role in self.role_ids \
                    and (1 << self.role_ids[role]) & ctx_mask:
                saw_dynamic = True
                continue
            if obj in self.regulated_objects:
                return KERNEL_FALLBACK, "privacy"
            return KERNEL_GRANT, None
        if saw_dynamic:
            return KERNEL_FALLBACK, "context_role"
        return KERNEL_DENY, None

    def probe(self, session_id: str, operation: str, obj: str,
              scope: str | None = None) -> tuple[int, str | None]:
        """Tally-free :meth:`evaluate` for explanation mode.

        Returns ``(verdict, fallback_reason)`` without perturbing the
        per-kernel fallback tallies, so ``engine.explain`` never skews
        the stats()/CLI surface.
        """
        before = dict(self.fallbacks)
        previous = self.last_fallback
        verdict = self.evaluate(session_id, operation, obj, scope)
        reason = self.last_fallback if verdict == KERNEL_FALLBACK else None
        self.fallbacks.update(before)  # same keys: in-place restore
        self.last_fallback = previous
        return verdict, reason

    # -- static analysis / introspection -----------------------------------

    def authorized_mask(self, role: str) -> int:
        """Junior-closure bitset for ``role`` (reflexive)."""
        return self.juniors_mask[self.role_ids[role]]

    def roles_in_mask(self, mask: int) -> list[str]:
        return [name for name, i in self.role_ids.items() if mask & (1 << i)]

    def ssd_conflict_pairs(self) -> list[tuple[str, str, str]]:
        """Role pairs that can never be co-authorized under a
        cardinality-2 SSD set — the classic static conflict matrix."""
        pairs = []
        for name, mask, cardinality in self.ssd_conflicts:
            if cardinality != 2:
                continue
            members = self.roles_in_mask(mask)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    pairs.append((name, a, b))
        return pairs

    def stats(self) -> dict[str, Any]:
        """Flat introspection dict for the CLI and engine.stats()."""
        return {
            "epoch": self.epoch,
            "rules_version": self.rules_version,
            "detector_version": self.detector_version,
            "build_us": self.build_ns / 1000,
            "users": len(self.user_ids),
            "roles": len(self.role_ids),
            "operations": len(self.op_ids),
            "objects": len(self.obj_ids),
            "permissions": len(self.perm_ids),
            "static_rules": self.static_rules,
            "dynamic_rules": self.dynamic_rules,
            "events_dispatched": len(self.dispatch),
            "context_gated_roles": bin(self.context_roles_mask).count("1"),
            "scopes": len(self.scope_ids),
            "scopes_version": self.scopes_version,
            "scope_closure_bits": sum(
                bin(mask).count("1") for mask in self.scope_anc_mask),
            "scoped_grants": sum(
                len(per_scope)
                for per_scope in self._scoped_grant_by_role.values()),
            "scope_limited_assignments": len(self._scope_limited),
            "regulated_objects": len(self.regulated_objects),
            "ssd_sets": len(self.ssd_conflicts),
            "ssd_conflict_pairs": len(self.ssd_conflict_pairs()),
            "coverage_gap": self.coverage_gap,
            "fallbacks": dict(self.fallbacks),
        }


def compile_kernel(engine: ActiveRBACEngine) -> PolicyKernel:
    """Compile the engine's current policy epoch into a kernel."""
    return PolicyKernel(engine)
