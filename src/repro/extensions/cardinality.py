"""Cardinality constraint descriptors (paper Rule 4 and §4.3 scenarios).

Two shapes:

* :class:`RoleCardinality` — *localized*: "role Programmer can be
  activated only by five users at a time" (scenario 2, Rule 4);
* :class:`UserCardinality` — *specialized*: "user Jane should be
  restricted to a maximum of five active roles at a time" (scenario 1).

The live counters are derived from session state
(:meth:`repro.rbac.model.RBACModel.active_user_count` /
:meth:`~repro.rbac.model.RBACModel.active_role_count`) rather than kept
as separate INCR/DECR counters as in the paper's ``CardinalityR1``
function — deriving them cannot drift from the sessions, and the
generated rules read identically.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RoleCardinality:
    """At most ``max_users`` distinct users active in ``role`` at once."""

    role: str
    max_users: int

    def __post_init__(self) -> None:
        if self.max_users < 1:
            raise ValueError(
                f"role cardinality must be >= 1, got {self.max_users}"
            )

    def describe(self) -> str:
        return (f"at most {self.max_users} user(s) active in "
                f"role {self.role!r}")


@dataclass(frozen=True)
class UserCardinality:
    """At most ``max_roles`` distinct roles active for ``user`` at once."""

    user: str
    max_roles: int

    def __post_init__(self) -> None:
        if self.max_roles < 1:
            raise ValueError(
                f"user cardinality must be >= 1, got {self.max_roles}"
            )

    def describe(self) -> str:
        return (f"user {self.user!r} active in at most "
                f"{self.max_roles} role(s)")
