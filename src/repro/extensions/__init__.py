"""RBAC extensions beyond the ANSI standard (paper §4.3.2 and §4.4).

* :mod:`repro.extensions.cfd` — control-flow dependency constraints:
  post-condition dependencies (Rule 8), prerequisite roles, and
  transaction-based activation (Rule 9);
* :mod:`repro.extensions.context` — context-aware constraints: named
  context variables fed by external events (locations from sensors,
  network security state) and predicates over them;
* :mod:`repro.extensions.privacy` — privacy-aware RBAC: purposes, a
  purpose hierarchy, and object policies binding (purpose, operation,
  object) with conditions and obligations;
* :mod:`repro.extensions.cardinality` — cardinality constraint
  descriptors (max users active in a role, max roles active per user).
"""

from repro.extensions.cardinality import (
    RoleCardinality,
    UserCardinality,
)
from repro.extensions.cfd import (
    PostConditionDependency,
    PrerequisiteRole,
    TransactionActivation,
)
from repro.extensions.context import ContextProvider, ContextConstraint
from repro.extensions.privacy import ObjectPolicy, PurposeTree

__all__ = [
    "ContextConstraint",
    "ContextProvider",
    "ObjectPolicy",
    "PostConditionDependency",
    "PrerequisiteRole",
    "PurposeTree",
    "RoleCardinality",
    "TransactionActivation",
    "UserCardinality",
]
