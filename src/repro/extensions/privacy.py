"""Privacy-aware RBAC: purposes and object policies.

The paper (§4.1, §4.4) extends the entity-relationship model with the
privacy-aware RBAC elements of He (TR-2003-09): a **purpose** — "the
purpose for which an operation is executed" — and an **object policy**
binding (purpose, operation, object) together with conditions and
obligations.  An access is privacy-compliant when the requester's stated
purpose is covered by an object policy for that (operation, object) —
purposes form a hierarchy, so a policy allowing a general purpose allows
its sub-purposes.

Enforcement plugs into OWTE rules as an additional W-clause condition on
``checkAccess`` (the paper: "privacy-aware RBAC can also be enforced
using OWTE rules as it also follows the Entity Relationship model").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class PurposeTree:
    """A hierarchy of business purposes (general -> specific).

    ``add("marketing")`` creates a root purpose; ``add("email-ads",
    parent="marketing")`` a sub-purpose.  A policy granting
    ``marketing`` covers ``email-ads``; the reverse does not hold.
    """

    def __init__(self) -> None:
        self._parent: dict[str, str | None] = {}
        self._children: dict[str, set[str]] = {}

    def add(self, purpose: str, parent: str | None = None) -> None:
        if purpose in self._parent:
            raise ValueError(f"purpose {purpose!r} already exists")
        if parent is not None and parent not in self._parent:
            raise ValueError(f"unknown parent purpose {parent!r}")
        self._parent[purpose] = parent
        self._children.setdefault(purpose, set())
        if parent is not None:
            self._children[parent].add(purpose)

    def __contains__(self, purpose: str) -> bool:
        return purpose in self._parent

    def purposes(self) -> Iterator[str]:
        return iter(self._parent)

    def ancestors_inclusive(self, purpose: str) -> set[str]:
        """The purpose and every purpose above it."""
        if purpose not in self._parent:
            raise ValueError(f"unknown purpose {purpose!r}")
        result = {purpose}
        node = self._parent[purpose]
        while node is not None:
            result.add(node)
            node = self._parent[node]
        return result

    def descendants_inclusive(self, purpose: str) -> set[str]:
        """The purpose and every purpose beneath it."""
        if purpose not in self._parent:
            raise ValueError(f"unknown purpose {purpose!r}")
        result: set[str] = set()
        queue = deque([purpose])
        while queue:
            node = queue.popleft()
            if node in result:
                continue
            result.add(node)
            queue.extend(self._children.get(node, ()))
        return result

    def covers(self, granted: str, requested: str) -> bool:
        """Does a grant for ``granted`` cover a request for ``requested``?

        True when ``requested`` equals ``granted`` or is a descendant.
        """
        if granted not in self._parent or requested not in self._parent:
            return False
        return granted in self.ancestors_inclusive(requested)


@dataclass(frozen=True)
class ObjectPolicy:
    """An object's privacy policy entry.

    Allows ``operation`` on ``obj`` when performed for a purpose covered
    by ``purpose``.  ``obligations`` name follow-up duties (e.g.
    ``notify-owner``) the engine records in the audit trail — it cannot
    discharge them, only log that they are owed, which is the standard
    enforcement-point treatment of obligations.
    """

    obj: str
    operation: str
    purpose: str
    obligations: tuple[str, ...] = ()

    def describe(self) -> str:
        text = (f"allow {self.operation!r} on {self.obj!r} for purpose "
                f"{self.purpose!r}")
        if self.obligations:
            text += f" with obligations {list(self.obligations)}"
        return text


@dataclass
class PrivacyRegistry:
    """All object policies plus the purpose tree; answers the W-clause
    question *is this (operation, object, purpose) privacy-compliant?*

    Objects with no registered policy are unregulated: privacy checks
    pass (privacy-aware RBAC constrains only data marked private).
    """

    purposes: PurposeTree = field(default_factory=PurposeTree)
    _policies: dict[tuple[str, str], list[ObjectPolicy]] = field(
        default_factory=dict)

    def add_policy(self, policy: ObjectPolicy) -> None:
        if policy.purpose not in self.purposes:
            raise ValueError(
                f"object policy references unknown purpose "
                f"{policy.purpose!r}"
            )
        key = (policy.obj, policy.operation)
        self._policies.setdefault(key, []).append(policy)

    def policies_for(self, obj: str, operation: str) -> list[ObjectPolicy]:
        return list(self._policies.get((obj, operation), ()))

    def is_regulated(self, obj: str) -> bool:
        """Does any policy mention this object (for any operation)?"""
        return any(key[0] == obj for key in self._policies)

    def compliant(self, obj: str, operation: str,
                  purpose: str | None) -> tuple[bool, tuple[str, ...]]:
        """Privacy check: ``(allowed, obligations_owed)``.

        * unregulated object -> allowed, no obligations;
        * regulated object, no/unknown purpose -> denied;
        * regulated object with a covering policy -> allowed with that
          policy's obligations.
        """
        if not self.is_regulated(obj):
            return (True, ())
        if purpose is None or purpose not in self.purposes:
            return (False, ())
        for policy in self.policies_for(obj, operation):
            if self.purposes.covers(policy.purpose, purpose):
                return (True, policy.obligations)
        return (False, ())

    def add_purposes(self, pairs: Iterable[tuple[str, str | None]]) -> None:
        """Bulk-add (purpose, parent) pairs, parents first."""
        for purpose, parent in pairs:
            self.purposes.add(purpose, parent)
