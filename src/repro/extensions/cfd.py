"""Control-flow dependency (CFD) constraints.

"Control flow dependency constraints often occur in task oriented
systems and are stricter forms of dependency constraints" (paper
§4.3.2, citing Joshi et al., SACMAT 2003).  Three forms appear in the
paper and all three are implemented as declarative descriptors the rule
generator expands:

* **post-condition dependency** (Rule 8): *if role SysAdmin is enabled
  then role SysAudit must also be enabled, otherwise both should not be
  enabled* — an atomic pair of enablings with rollback;
* **prerequisite roles** (§3, SEQUENCE): *a user should be active in
  role A to activate role B*;
* **transaction-based activation** (Rule 9, APERIODIC): role
  "JuniorEmp" may be activated only while role "Manager" is activated,
  and is deactivated when the manager window closes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PostConditionDependency:
    """If ``trigger_role`` is enabled, ``required_role`` must be enabled.

    Enabling ``trigger_role`` cascades an enable of ``required_role``;
    when the cascade fails (required role cannot be enabled), the
    trigger role's enabling is rolled back and the request is denied —
    paper Rule 8's "otherwise both the roles should not be enabled".
    """

    trigger_role: str
    required_role: str

    def __post_init__(self) -> None:
        if self.trigger_role == self.required_role:
            raise ValueError(
                "post-condition dependency cannot be reflexive: "
                f"{self.trigger_role!r}"
            )

    def describe(self) -> str:
        return (f"enabling {self.trigger_role!r} requires enabling "
                f"{self.required_role!r} (atomic)")


@dataclass(frozen=True)
class PrerequisiteRole:
    """Activating ``role`` in a session requires ``prerequisite`` to be
    active in that same session.

    The paper specifies this with the SEQUENCE operator ("E1 should
    occur before E2"); operationally the generated W clause checks that
    the prerequisite is in the session's active role set at activation
    time, which is the session-state reading of that sequence.
    """

    role: str
    prerequisite: str

    def __post_init__(self) -> None:
        if self.role == self.prerequisite:
            raise ValueError(
                f"role {self.role!r} cannot be its own prerequisite"
            )

    def describe(self) -> str:
        return (f"activating {self.role!r} requires {self.prerequisite!r} "
                f"active in the same session")


@dataclass(frozen=True)
class TransactionActivation:
    """``dependent_role`` may be active only while ``anchor_role`` is
    activated (by anyone); deactivating the last anchor deactivates
    every dependent activation.

    Paper Rule 9: the Manager's activation opens an APERIODIC window;
    JuniorEmp activations are admitted only inside it; the window's
    termination (Manager deactivated) deactivates JuniorEmp everywhere.
    """

    dependent_role: str
    anchor_role: str

    def __post_init__(self) -> None:
        if self.dependent_role == self.anchor_role:
            raise ValueError(
                "transaction-based activation cannot be reflexive: "
                f"{self.dependent_role!r}"
            )

    def describe(self) -> str:
        return (f"{self.dependent_role!r} active only while "
                f"{self.anchor_role!r} is activated")
