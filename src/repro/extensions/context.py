"""Context-aware constraints: external events feeding named variables.

The paper (§3, §4.2) uses external events — "based on the data from
sensors", locations, network security — to drive access decisions:
*when the user is in the insecure network then the protected file
access should be denied*.

:class:`ContextProvider` is the bridge: it holds a dictionary of named
context variables, and (optionally) keeps them updated from external
events raised into the detector (``context.update`` with ``name`` and
``value`` parameters), mimicking Sentinel's external monitoring module.
:class:`ContextConstraint` is the declarative descriptor the generator
turns into W-clause conditions.
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from typing import Any

from repro.events.detector import EventDetector
from repro.events.occurrence import Occurrence

#: The primitive event name the provider listens on.
CONTEXT_UPDATE_EVENT = "context.update"


class ContextOp(enum.Enum):
    """Comparison operators available in context predicates."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"
    NOT_IN = "not in"

    def apply(self, left: Any, right: Any) -> bool:
        table = {
            ContextOp.EQ: operator.eq,
            ContextOp.NE: operator.ne,
            ContextOp.LT: operator.lt,
            ContextOp.LE: operator.le,
            ContextOp.GT: operator.gt,
            ContextOp.GE: operator.ge,
        }
        if self in table:
            try:
                return bool(table[self](left, right))
            except TypeError:
                return False
        if self is ContextOp.IN:
            return left in right
        return left not in right  # NOT_IN


class ContextProvider:
    """Named context variables, updatable directly or via external events.

    Wire to a detector to receive Sentinel-style external events::

        provider = ContextProvider()
        provider.attach(detector)                     # defines the event
        detector.raise_event("context.update",
                             name="network", value="insecure")
        provider.get("network")                       # -> "insecure"
    """

    def __init__(self, initial: dict[str, Any] | None = None) -> None:
        self._values: dict[str, Any] = dict(initial or {})
        self._update_count = 0
        #: optional ``(name, value) -> None`` observer invoked after
        #: every :meth:`set` — the WAL hooks in here so context updates
        #: survive a crash.
        self.on_set = None

    def attach(self, detector: EventDetector) -> None:
        """Subscribe to ``context.update`` external events."""
        detector.ensure_primitive(CONTEXT_UPDATE_EVENT)
        detector.subscribe(CONTEXT_UPDATE_EVENT, self._on_update)

    def _on_update(self, occurrence: Occurrence) -> None:
        name = occurrence.get("name")
        if name is None:
            return
        self.set(str(name), occurrence.get("value"))

    def set(self, name: str, value: Any) -> None:
        self._values[name] = value
        self._update_count += 1
        if self.on_set is not None:
            self.on_set(name, value)

    def get(self, name: str, default: Any = None) -> Any:
        return self._values.get(name, default)

    def snapshot(self) -> dict[str, Any]:
        return dict(self._values)

    @property
    def update_count(self) -> int:
        return self._update_count


@dataclass(frozen=True)
class ContextConstraint:
    """A predicate over one context variable, gating one role's use.

    ``applies_to`` selects what is gated: ``"activate"`` (role
    activation) or ``"access"`` (checkAccess through that role).  The
    paper's pervasive-computing example — deny protected file access on
    an insecure network — is::

        ContextConstraint(role="FileUser", variable="network",
                          op=ContextOp.EQ, value="secure",
                          applies_to="access")
    """

    role: str
    variable: str
    op: ContextOp
    value: Any
    applies_to: str = "activate"

    def __post_init__(self) -> None:
        if self.applies_to not in ("activate", "access"):
            raise ValueError(
                f"applies_to must be 'activate' or 'access', "
                f"got {self.applies_to!r}"
            )

    def satisfied(self, provider: ContextProvider) -> bool:
        return self.op.apply(provider.get(self.variable), self.value)

    def describe(self) -> str:
        return (f"context[{self.variable!r}] {self.op.value} "
                f"{self.value!r} (for {self.applies_to} of {self.role!r})")
