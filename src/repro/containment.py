"""Fault containment primitives: failure policies and bounded retries.

The paper argues OWTE rules are a *seamless enforcement mechanism*;
enforcement is only as trustworthy as its failure behaviour.  This
module holds the policy vocabulary the rule manager enforces with:

* :class:`FailurePolicy` — decides, per rule, whether an unexpected
  clause exception becomes a typed deny (**fail closed**, the default
  for enforcement-class rules) or is contained and skipped (**fail
  open**, for advisory/active-security rules whose absence must never
  deny a legitimate request), and when repeated faults quarantine the
  rule;
* :func:`retry_transient` — bounded retry with exponential backoff for
  transient infrastructure faults (persistence writes, federation
  lookups), and :func:`retry_transient_async` — the same contract for
  coroutine callables (the service-plane load client reconnects with
  it), with optional seeded jitter so a fleet of retrying clients does
  not reconnect in lockstep;
* :func:`fsync_file` / :func:`fsync_dir` — the durability primitives
  snapshot writes and the write-ahead log build on: an ``os.replace``
  is only crash-safe once the payload is synced *before* the rename
  and the directory entry is synced *after* it.

None imports the engine, so persistence, the WAL, federation and the
rule manager can all share this vocabulary without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import RetryExhausted, TransientError
from repro.rules.rule import OWTERule, RuleClass

T = TypeVar("T")

#: Tag a rule with ``advisory="1"`` to force fail-open regardless of
#: classification (e.g. an enforcement-class rule that only reports).
ADVISORY_TAG = "advisory"


@dataclass(frozen=True)
class FailurePolicy:
    """How the rule pool reacts to unexpected clause exceptions.

    Attributes:
        fail_open_classes: rules of these classifications have faults
            contained (logged, counted) and execution continues with
            the next rule; every other classification **fails closed**
            — the fault is wrapped in a typed
            :class:`~repro.errors.RuleExecutionError` deny.  Active
            security defaults to fail-open: a broken monitoring rule
            must not deny legitimate requests it never guarded.
        quarantine_threshold: consecutive faults before the rule is
            quarantined (disabled + tagged + audited); ``0`` disables
            quarantining.
        rearm_after: simulated seconds after which a quarantined rule
            is automatically re-armed via the virtual clock (``None``
            = manual re-arm only, through
            :meth:`~repro.rules.manager.RuleManager.rearm`).
    """

    fail_open_classes: frozenset[RuleClass] = field(
        default_factory=lambda: frozenset({RuleClass.ACTIVE_SECURITY}))
    quarantine_threshold: int = 3
    rearm_after: float | None = None

    def fails_open(self, rule: OWTERule) -> bool:
        """True when a fault in ``rule`` is contained rather than
        converted into a deny."""
        return (rule.classification in self.fail_open_classes
                or rule.tags.get(ADVISORY_TAG) == "1")


def retry_transient(fn: Callable[[], T], *,
                    attempts: int = 3,
                    base_delay: float = 0.0,
                    factor: float = 2.0,
                    max_delay: float = 1.0,
                    retry_on: tuple[type[BaseException], ...] = (
                        TransientError, OSError),
                    sleep: Callable[[float], None] | None = None,
                    on_retry: Callable[[int, BaseException], None] | None
                    = None) -> T:
    """Call ``fn`` with bounded retry-with-backoff on transient faults.

    Retries only exceptions in ``retry_on`` (default: transient
    infrastructure faults); anything else propagates immediately.
    After ``attempts`` failures raises
    :class:`~repro.errors.RetryExhausted` chaining the last error.

    ``sleep`` defaults to None (no real sleeping — deterministic under
    the virtual clock); pass ``time.sleep`` for genuine wall-clock
    backoff, or an ``engine.advance_time`` shim in simulations.
    ``on_retry(attempt, exc)`` is invoked before each re-attempt (the
    engine wires a metrics bump here).
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    delay = base_delay
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt == attempts:
                raise RetryExhausted(attempts, exc) from exc
            if on_retry is not None:
                on_retry(attempt, exc)
            if sleep is not None and delay > 0:
                sleep(delay)
            delay = min(delay * factor if delay > 0 else base_delay,
                        max_delay)
    raise AssertionError("unreachable")  # pragma: no cover


async def retry_transient_async(fn, *,
                                attempts: int = 3,
                                base_delay: float = 0.0,
                                factor: float = 2.0,
                                max_delay: float = 1.0,
                                retry_on: tuple[type[BaseException], ...] = (
                                    TransientError, OSError),
                                jitter: Callable[[], float] | None = None,
                                sleep=None,
                                on_retry: Callable[[int, BaseException], None]
                                | None = None):
    """:func:`retry_transient` for coroutine callables.

    Same contract — bounded attempts, exponential backoff capped at
    ``max_delay``, :class:`~repro.errors.RetryExhausted` chaining the
    last error — with an async ``fn`` and an awaitable ``sleep``
    (default ``asyncio.sleep``).  ``jitter`` (e.g. a seeded
    ``random.Random(...).random``) scales each delay by ``[0, 1)`` so
    a fleet of clients retrying against the same recovering server
    does not reconnect in lockstep; pass None for the deterministic
    full-delay schedule.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    if sleep is None:
        import asyncio

        sleep = asyncio.sleep
    delay = base_delay
    for attempt in range(1, attempts + 1):
        try:
            return await fn()
        except retry_on as exc:
            if attempt == attempts:
                raise RetryExhausted(attempts, exc) from exc
            if on_retry is not None:
                on_retry(attempt, exc)
            if delay > 0:
                await sleep(delay * jitter() if jitter is not None
                            else delay)
            delay = min(delay * factor if delay > 0 else base_delay,
                        max_delay)
    raise AssertionError("unreachable")  # pragma: no cover


def fsync_file(fileobj) -> None:
    """Flush a file object's buffers and fsync it to stable storage."""
    fileobj.flush()
    os.fsync(fileobj.fileno())


def fsync_dir(path: str) -> None:
    """fsync a directory so a just-renamed/created entry is durable.

    A power loss after ``os.replace`` but before the directory entry
    reaches stable storage can resurrect the old file (or leave none);
    syncing the containing directory closes that window.  Platforms
    whose directories cannot be opened or fsynced (e.g. Windows) are
    skipped — the rename itself is still atomic there.
    """
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)
