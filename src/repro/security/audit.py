"""Audit log: the append-only trail behind active security and review.

Every enforcement decision (allow/deny), administrative change, rule
firing and security alert is recorded here with the simulated timestamp.
The monitor (:mod:`repro.security.monitor`) reads nothing from it — it
keeps its own sliding windows — but report generation ("generate reports
and alert administrators", paper §3) and the tests' assertions do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.clock import VirtualClock


@dataclass(frozen=True)
class AuditEntry:
    """One audit record.

    ``kind`` is a dotted category: ``decision.allow``, ``decision.deny``,
    ``admin.assign_user``, ``rule.then``, ``rule.else``,
    ``security.alert``, ``obligation.owed``, ...
    """

    time: float
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[t={self.time:g}] {self.kind}: {parts}"


class AuditLog:
    """Bounded append-only log of :class:`AuditEntry` records.

    ``capacity`` bounds memory on long simulations; the oldest entries
    are dropped first.  ``observers`` receive every entry as it is
    recorded (the security monitor's report generator hooks here).
    """

    def __init__(self, clock: VirtualClock, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("audit capacity must be positive")
        self._clock = clock
        self._capacity = capacity
        self._entries: list[AuditEntry] = []
        self._dropped = 0
        self._observers: list[Callable[[AuditEntry], None]] = []
        self._kind_counts: dict[str, int] = {}
        #: observer callbacks that raised — a broken report shipper
        #: must never turn an audited operation into a failed one
        self.observer_faults = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[AuditEntry]:
        return iter(self._entries)

    @property
    def dropped(self) -> int:
        """How many old entries were evicted due to the capacity bound."""
        return self._dropped

    def observe(self, observer: Callable[[AuditEntry], None]) -> None:
        self._observers.append(observer)

    def record(self, kind: str, **detail: Any) -> AuditEntry:
        entry = AuditEntry(self._clock.now, kind, detail)
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        self._entries.append(entry)
        if len(self._entries) > self._capacity:
            overflow = len(self._entries) - self._capacity
            del self._entries[:overflow]
            self._dropped += overflow
        for observer in self._observers:
            try:
                observer(entry)
            except Exception:  # noqa: BLE001 — containment boundary
                self.observer_faults += 1
        return entry

    # -- queries -----------------------------------------------------------------

    def tail(self, count: int = 20) -> list[AuditEntry]:
        return self._entries[-count:]

    def by_kind(self, prefix: str) -> list[AuditEntry]:
        """Entries whose kind equals or starts with ``prefix`` (dotted)."""
        return [
            e for e in self._entries
            if e.kind == prefix or e.kind.startswith(prefix + ".")
        ]

    def matching(self, **detail: Any) -> list[AuditEntry]:
        """Entries whose detail contains every given key/value."""
        return [
            e for e in self._entries
            if all(e.detail.get(k) == v for k, v in detail.items())
        ]

    def since(self, time: float) -> list[AuditEntry]:
        return [e for e in self._entries if e.time >= time]

    def counts_by_kind(self) -> dict[str, int]:
        """Records ever made per kind, maintained incrementally — unlike
        the entry list, counts are NOT decremented when the capacity
        bound evicts old entries (the ``repro_audit_records_total``
        metric reads this at collect time)."""
        return dict(self._kind_counts)

    def report(self, since: float = 0.0) -> str:
        """A human-readable activity report (the paper's "generate
        reports" action renders one of these)."""
        entries = self.since(since)
        lines = [f"audit report: {len(entries)} entr(ies) since t={since:g}"]
        counts: dict[str, int] = {}
        for entry in entries:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        for kind in sorted(counts):
            lines.append(f"  {kind}: {counts[kind]}")
        return "\n".join(lines)
