"""Active security: monitoring, alerting and automatic countermeasures.

"Taking timely actions based on the state changes of the underlying
system over a period of time and alerting the administrator regarding
the malicious activities will complement the access control system"
(paper §1).  The motivating example: *when access requests by
unauthorized roles for some files are more than a certain number of
times within a duration, an internal security alert is triggered and
some critical authorization rules are disabled and the administrators
are alerted.*

* :class:`~repro.security.audit.AuditLog` — the append-only record of
  every event detection, rule firing and enforcement decision;
* :class:`~repro.security.monitor.ActiveSecurityMonitor` — sliding-
  window violation counters with threshold policies whose reactions are
  the paper's list: generate reports and alert administrators,
  deactivate roles, disable rules, block access requests.
"""

from repro.security.audit import AuditEntry, AuditLog
from repro.security.monitor import (
    ActiveSecurityMonitor,
    SecurityAlert,
    ThresholdPolicy,
)

__all__ = [
    "ActiveSecurityMonitor",
    "AuditEntry",
    "AuditLog",
    "SecurityAlert",
    "ThresholdPolicy",
]
