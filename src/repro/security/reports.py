"""Periodic monitoring reports via the PERIODIC event operator.

Paper §3: the PERIODIC operator "can be used to *periodically monitor
the underlying system and generate reports*".  :class:`PeriodicReporter`
wires that sentence up end to end:

* primitive events ``report.start`` / ``report.stop`` open and close
  the monitoring window;
* a ``PERIODIC(report.start, interval, report.stop)`` composite ticks
  inside it;
* an ACTIVE_SECURITY-class OWTE rule fires on each tick, snapshots the
  audit activity since the previous tick into a :class:`MonitoringReport`
  and delivers it to the registered channels (paper: "generate reports
  and alert administrators").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.rules.rule import Action, Granularity, OWTERule, RuleClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import ActiveRBACEngine

START_EVENT = "report.start"
STOP_EVENT = "report.stop"
TICK_EVENT = "report.tick"
RULE_NAME = "ASEC.periodicReport"


@dataclass
class MonitoringReport:
    """One periodic monitoring snapshot."""

    tick: int
    time: float
    window_start: float
    counts: dict[str, int] = field(default_factory=dict)
    denials: int = 0
    alerts: int = 0

    def describe(self) -> str:
        lines = [f"monitoring report #{self.tick} at t={self.time:g} "
                 f"(window since t={self.window_start:g})"]
        lines.append(f"  denials: {self.denials}, alerts: {self.alerts}")
        for kind in sorted(self.counts):
            lines.append(f"  {kind}: {self.counts[kind]}")
        return "\n".join(lines)


class PeriodicReporter:
    """Periodic audit snapshots driven by the PERIODIC operator."""

    def __init__(self, engine: "ActiveRBACEngine",
                 interval: float) -> None:
        if interval <= 0:
            raise ValueError("report interval must be positive")
        self._engine = engine
        self.interval = float(interval)
        self.reports: list[MonitoringReport] = []
        self._channels: list[Callable[[MonitoringReport], None]] = []
        self._window_start = engine.clock.now
        self._running = False

        detector = engine.detector
        detector.ensure_primitive(START_EVENT)
        detector.ensure_primitive(STOP_EVENT)
        if TICK_EVENT not in detector:
            detector.define_periodic(TICK_EVENT, START_EVENT,
                                     self.interval, STOP_EVENT)
        if RULE_NAME not in engine.rules:
            engine.rules.add(OWTERule(
                name=RULE_NAME, event=TICK_EVENT,
                actions=[Action("generate report && alert administrators",
                                self._generate)],
                classification=RuleClass.ACTIVE_SECURITY,
                granularity=Granularity.GLOBALIZED,
                tags={"kind": "report"},
            ))

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Open the monitoring window (raises ``report.start``)."""
        if self._running:
            return
        self._running = True
        self._window_start = self._engine.clock.now
        self._engine.detector.raise_event(START_EVENT)

    def stop(self) -> None:
        """Close the monitoring window (raises ``report.stop``)."""
        if not self._running:
            return
        self._running = False
        self._engine.detector.raise_event(STOP_EVENT)

    @property
    def running(self) -> bool:
        return self._running

    def deliver_to(self, channel: Callable[[MonitoringReport], None]
                   ) -> None:
        self._channels.append(channel)

    # -- the rule action -----------------------------------------------------

    def _generate(self, ctx) -> None:
        engine = self._engine
        since = self._window_start
        entries = engine.audit.since(since)
        counts: dict[str, int] = {}
        for entry in entries:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        report = MonitoringReport(
            tick=int(ctx.get("tick", len(self.reports) + 1)),
            time=engine.clock.now,
            window_start=since,
            counts=counts,
            denials=sum(count for kind, count in counts.items()
                        if kind.startswith("decision.deny")),
            alerts=counts.get("security.alert", 0),
        )
        self.reports.append(report)
        self._window_start = engine.clock.now
        engine.audit.record("security.report", tick=report.tick,
                            denials=report.denials, alerts=report.alerts)
        for channel in self._channels:
            channel(report)
