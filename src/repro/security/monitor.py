"""Active security monitor: sliding-window thresholds and countermeasures.

The paper's internal-security example (§1): *when access requests by
unauthorized roles for some files are more than a certain number of
times within a duration, an internal security alert is triggered and
some critical authorization rules are disabled and the administrators
are alerted.*  And the action list (§3): generate reports and alert
administrators; deactivate a set of roles; demote certain roles'
permissions; block access requests or impose access restrictions.

A :class:`ThresholdPolicy` declares: which denial stream to count
(grouped by user, role, object or globally), the count/window pair, and
the reactions.  The :class:`ActiveSecurityMonitor` subscribes to the
engine's ``accessDenied`` / ``activationDenied`` events, maintains the
windows, and on breach raises a ``securityAlert`` event, executes the
reactions (they are ordinary rule-manager / model operations) and — when
a ``lockout_duration`` is set — schedules the automatic re-enabling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.events.occurrence import Occurrence

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import ActiveRBACEngine

#: primitive events the monitor can count
DENIAL_EVENTS = ("accessDenied", "activationDenied")

#: alert event raised on threshold breach
SECURITY_ALERT_EVENT = "securityAlert"


@dataclass(frozen=True)
class ThresholdPolicy:
    """Alert when ``threshold`` denials occur within ``window`` seconds.

    Attributes:
        name: policy identifier, carried on alerts.
        event: which denial stream to watch (``accessDenied`` or
            ``activationDenied``).
        group_by: occurrence parameter used as the counter key (``user``,
            ``role``, ``object`` ...), or ``None`` for one global counter.
        threshold: denial count that trips the alert (>= 1).
        window: sliding window length in seconds (> 0).
        disable_rule_tags: rules whose tags match any of these dicts are
            disabled on breach ("disable critical authorization rules").
        deactivate_roles: roles force-deactivated in every session.
        lock_users: when grouping by user, lock the offending user
            (their sessions are deleted and rule ``user.locked``
            attribute set).
        lockout_duration: seconds after which disabled rules are
            re-enabled and locked users unlocked; ``None`` = permanent
            until an administrator intervenes.
    """

    name: str
    event: str = "accessDenied"
    group_by: str | None = "user"
    threshold: int = 5
    window: float = 60.0
    disable_rule_tags: tuple[tuple[tuple[str, str], ...], ...] = ()
    deactivate_roles: tuple[str, ...] = ()
    lock_users: bool = False
    lockout_duration: float | None = None

    def __post_init__(self) -> None:
        if self.event not in DENIAL_EVENTS:
            raise ValueError(
                f"threshold policy {self.name!r}: event must be one of "
                f"{DENIAL_EVENTS}, got {self.event!r}"
            )
        if self.threshold < 1:
            raise ValueError(
                f"threshold policy {self.name!r}: threshold must be >= 1"
            )
        if self.window <= 0:
            raise ValueError(
                f"threshold policy {self.name!r}: window must be positive"
            )

    @staticmethod
    def tags(*tag_dicts: dict[str, str]
             ) -> tuple[tuple[tuple[str, str], ...], ...]:
        """Helper to build the hashable ``disable_rule_tags`` shape."""
        return tuple(tuple(sorted(d.items())) for d in tag_dicts)

    def describe(self) -> str:
        group = self.group_by or "global"
        return (f"{self.name}: >= {self.threshold} {self.event} per "
                f"{group} within {self.window:g}s")


@dataclass
class SecurityAlert:
    """A recorded alert: which policy tripped, for which group, when."""

    policy: str
    group: str | None
    time: float
    count: int
    reactions: list[str] = field(default_factory=list)


class ActiveSecurityMonitor:
    """Watches denial events and executes threshold-policy reactions.

    The monitor is itself implemented *with* the event substrate: it
    subscribes to the denial primitives and raises ``securityAlert``
    events, so administrators can attach further OWTE rules to alerts —
    rules reacting to the security system reacting, exactly the paper's
    "active security" loop.
    """

    def __init__(self, engine: "ActiveRBACEngine") -> None:
        self._engine = engine
        self._policies: list[ThresholdPolicy] = []
        self._windows: dict[tuple[str, str | None], deque[float]] = {}
        self.alerts: list[SecurityAlert] = []
        self._admin_channels: list[Callable[[SecurityAlert], None]] = []
        detector = engine.detector
        detector.ensure_primitive(SECURITY_ALERT_EVENT)
        for event in DENIAL_EVENTS:
            detector.ensure_primitive(event)
            detector.subscribe(event, self._on_denial)

    # -- configuration -------------------------------------------------------

    def add_policy(self, policy: ThresholdPolicy) -> None:
        self._policies.append(policy)

    def policies(self) -> list[ThresholdPolicy]:
        return list(self._policies)

    def notify_admins(self, channel: Callable[[SecurityAlert], None]) -> None:
        """Register an administrator alert channel (paper: "alert the
        administrators")."""
        self._admin_channels.append(channel)

    # -- counting --------------------------------------------------------------

    def _on_denial(self, occurrence: Occurrence) -> None:
        now = self._engine.clock.now
        for policy in self._policies:
            if policy.event != occurrence.event:
                continue
            group = (None if policy.group_by is None
                     else occurrence.get(policy.group_by))
            key = (policy.name, group)
            window = self._windows.setdefault(key, deque())
            window.append(now)
            cutoff = now - policy.window
            while window and window[0] <= cutoff:
                window.popleft()
            if len(window) >= policy.threshold:
                window.clear()  # re-arm: one alert per breach episode
                self._trigger(policy, group, now)

    def window_count(self, policy_name: str, group: str | None) -> int:
        """Current in-window denial count (for tests and reports)."""
        return len(self._windows.get((policy_name, group), ()))

    # -- reactions ----------------------------------------------------------------

    def _trigger(self, policy: ThresholdPolicy, group: str | None,
                 now: float) -> None:
        alert = SecurityAlert(policy.name, group, now,
                              count=policy.threshold)
        engine = self._engine

        for frozen_tags in policy.disable_rule_tags:
            tags = dict(frozen_tags)
            changed = engine.rules.set_enabled_by_tags(False, **tags)
            alert.reactions.append(f"disabled {changed} rule(s) {tags}")
            if policy.lockout_duration is not None and changed:
                engine.timers.schedule_after(
                    policy.lockout_duration,
                    lambda t=tags: engine.rules.set_enabled_by_tags(
                        True, **t),
                )

        for role in policy.deactivate_roles:
            dropped = engine.force_deactivate_role(role)
            alert.reactions.append(
                f"deactivated role {role!r} in {dropped} session(s)")

        if policy.lock_users and policy.group_by == "user" and group:
            engine.lock_user(str(group))
            alert.reactions.append(f"locked user {group!r}")
            if policy.lockout_duration is not None:
                engine.timers.schedule_after(
                    policy.lockout_duration,
                    lambda u=str(group): engine.unlock_user(u),
                )

        self.alerts.append(alert)
        engine.audit.record(
            "security.alert", policy=policy.name, group=group,
            reactions=list(alert.reactions),
        )
        for channel in self._admin_channels:
            channel(alert)
        # Raise the alert as an event so further OWTE rules can react.
        engine.detector.raise_event(
            SECURITY_ALERT_EVENT, policy=policy.name, group=group,
        )
