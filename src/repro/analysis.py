"""Policy analysis: explanations, reviews and hygiene reports.

Administrators of rule-based systems ask three questions the raw engine
does not answer directly:

* **why** was this request denied (:func:`explain_access`,
  :func:`explain_activation`) — each W-clause check evaluated and
  reported individually, in rule order;
* **who can** do what (:func:`who_can`, :func:`permission_matrix`) —
  the effective entitlement review the NIST economic-impact report
  motivates RBAC with;
* **what is stale** (:func:`policy_hygiene`) — unused roles, empty
  roles, unreachable permissions, redundant role pairs.

Everything here is read-only over the engine/model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import ActiveRBACEngine


@dataclass(frozen=True)
class Check:
    """One evaluated condition in an explanation."""

    description: str
    passed: bool

    def describe(self) -> str:
        return f"[{'ok' if self.passed else 'FAIL'}] {self.description}"


@dataclass
class Explanation:
    """The full story of one decision."""

    request: str
    allowed: bool
    checks: list[Check] = field(default_factory=list)

    @property
    def first_failure(self) -> Check | None:
        return next((c for c in self.checks if not c.passed), None)

    def describe(self) -> str:
        verdict = "ALLOWED" if self.allowed else "DENIED"
        lines = [f"{self.request}: {verdict}"]
        lines.extend("  " + check.describe() for check in self.checks)
        if not self.allowed and self.first_failure:
            lines.append(f"  => denied by: {self.first_failure.description}")
        return "\n".join(lines)


def explain_access(engine: "ActiveRBACEngine", session_id: str,
                   operation: str, obj: str,
                   purpose: str | None = None) -> Explanation:
    """Evaluate every checkAccess condition individually (paper Rule 5
    plus the context/privacy extensions), without side effects."""
    model = engine.model
    session = model.sessions.get(session_id)
    user = session.user if session else None
    checks = [
        Check("sessionId IN sessionL", session is not None),
        Check("user NOT locked", not engine.is_user_locked(user)),
        Check("operation IN opsL", operation in model.operations),
        Check("object IN objL", obj in model.objects),
    ]
    if session is not None:
        role_checks = []
        for role in sorted(session.active_roles):
            has_perm = model.role_has_permission(role, operation, obj)
            context_ok = engine.access_context_ok(role)
            role_checks.append((role, has_perm, context_ok))
        any_role = any(p and c for _r, p, c in role_checks)
        detail = ", ".join(
            f"{role}(perm={'y' if p else 'n'},ctx={'y' if c else 'n'})"
            for role, p, c in role_checks) or "no active roles"
        checks.append(Check(
            f"ForANY active role holds permission with context [{detail}]",
            any_role))
    else:
        checks.append(Check("ForANY active role holds permission", False))
    privacy_ok, _obligations = engine.privacy_ok(obj, operation, purpose)
    checks.append(Check(
        f"objectPolicy({obj!r}, {operation!r}, purpose={purpose!r})",
        privacy_ok))
    return Explanation(
        request=f"checkAccess({session_id!r}, {operation!r}, {obj!r})",
        allowed=all(c.passed for c in checks),
        checks=checks,
    )


def explain_activation(engine: "ActiveRBACEngine", session_id: str,
                       role: str) -> Explanation:
    """Evaluate every AAR + CC condition individually (paper Rule 3/4)."""
    model = engine.model
    session = model.sessions.get(session_id)
    user = session.user if session else None
    role_known = role in model.roles
    checks = [
        Check("sessionId IN sessionL", session is not None),
        Check("user NOT locked", not engine.is_user_locked(user)),
        Check("role IN roleL", role_known),
    ]
    if session is not None and role_known:
        checks.extend([
            Check(f"{role} NOT IN checkSessionRoles",
                  role not in session.active_roles),
            Check(f"roleEnabled({role})", model.is_role_enabled(role)),
            Check(f"checkAuthorization{role}(user)",
                  model.is_authorized(user, role)),
            Check("checkDynamicSoDSet(user, role)",
                  model.sod.dsd_ok(session.active_roles, role)),
            Check("prerequisite roles active in session",
                  engine.prerequisites_ok(session_id, role)),
            Check("transaction anchor activated",
                  engine.transaction_anchor_ok(role)),
            Check("context constraints satisfied",
                  engine.activation_context_ok(role)),
            Check(f"Cardinality{role}(INCR) within bound",
                  engine.role_cardinality_ok(role, user)),
            Check("activeRoleCount(user) within bound",
                  engine.user_cardinality_ok(user, role)),
        ])
    return Explanation(
        request=f"addActiveRole({session_id!r}, {role!r})",
        allowed=all(c.passed for c in checks),
        checks=checks,
    )


# ---------------------------------------------------------------------------
# entitlement review
# ---------------------------------------------------------------------------

def who_can(engine: "ActiveRBACEngine", operation: str,
            obj: str) -> dict[str, set[str]]:
    """Users able (when activating the right role) to perform the
    operation, mapped to the roles that would entitle them."""
    model = engine.model
    result: dict[str, set[str]] = {}
    entitling = model.roles_with_permission(operation, obj)
    for role in entitling:
        for user in model.authorized_users(role):
            result.setdefault(user, set()).add(role)
    return result


def permission_matrix(engine: "ActiveRBACEngine"
                      ) -> dict[str, set[tuple[str, str]]]:
    """role -> effective (operation, object) set (hierarchy included)."""
    model = engine.model
    return {
        role: {(p.operation, p.obj)
               for p in model.role_permissions(role)}
        for role in model.roles
    }


# ---------------------------------------------------------------------------
# hygiene
# ---------------------------------------------------------------------------

@dataclass
class HygieneReport:
    """Staleness/redundancy findings over the policy."""

    empty_roles: list[str] = field(default_factory=list)
    unused_permissions: list[tuple[str, str]] = field(default_factory=list)
    permissionless_roles: list[str] = field(default_factory=list)
    redundant_role_pairs: list[tuple[str, str]] = field(
        default_factory=list)
    userless_policy: bool = False

    def is_clean(self) -> bool:
        return not (self.empty_roles or self.unused_permissions
                    or self.permissionless_roles
                    or self.redundant_role_pairs)

    def describe(self) -> str:
        if self.is_clean():
            return "policy hygiene: clean"
        lines = ["policy hygiene findings:"]
        if self.empty_roles:
            lines.append(f"  roles with no authorized users: "
                         f"{self.empty_roles}")
        if self.permissionless_roles:
            lines.append(f"  roles granting nothing (even via juniors): "
                         f"{self.permissionless_roles}")
        if self.unused_permissions:
            lines.append(f"  permissions granted to no role: "
                         f"{self.unused_permissions}")
        if self.redundant_role_pairs:
            lines.append(f"  role pairs with identical effective "
                         f"permissions: {self.redundant_role_pairs}")
        return "\n".join(lines)


def policy_hygiene(engine: "ActiveRBACEngine") -> HygieneReport:
    """Detect stale or redundant policy elements."""
    model = engine.model
    report = HygieneReport(userless_policy=not model.users)
    matrix = permission_matrix(engine)
    for role in sorted(model.roles):
        if not model.authorized_users(role):
            report.empty_roles.append(role)
        if not matrix[role]:
            report.permissionless_roles.append(role)
    granted = {pair for pairs in matrix.values() for pair in pairs}
    for permission in sorted(model.permissions,
                             key=lambda p: (p.operation, p.obj)):
        if (permission.operation, permission.obj) not in granted:
            report.unused_permissions.append(
                (permission.operation, permission.obj))
    roles = sorted(model.roles)
    for index, first in enumerate(roles):
        if not matrix[first]:
            continue
        for second in roles[index + 1:]:
            if matrix[first] == matrix[second]:
                report.redundant_role_pairs.append((first, second))
    return report
