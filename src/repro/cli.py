"""Command-line interface: the administrator's console.

Usage (also via ``python -m repro``)::

    repro-rbac check policy.rbac [--trace]  # parse + validate + verify
    repro-rbac graph policy.rbac            # the Figure 1 graph
    repro-rbac rules policy.rbac [--role R] # generated OWTE rules
    repro-rbac simulate policy.rbac --requests 1000 --seed 7 [--trace]
    repro-rbac metrics policy.rbac          # simulate + dump metrics
    repro-rbac fmt policy.rbac              # canonical DSL rendering
    repro-rbac health policy.rbac [--chaos-seed N]  # degradation summary
    repro-rbac recover state-dir/           # snapshot + WAL replay
    repro-rbac kernel policy.rbac           # compiled decision plane stats
    repro-rbac explain policy.rbac USER OPERATION OBJECT  # derivation
    repro-rbac flightrec policy.rbac        # drive + dump flight recorder
    repro-rbac obs top policy.rbac          # hottest / slowest rules
    repro-rbac serve --shard hq=hq.rbac --shard lab=lab.rbac  # HTTP plane
    repro-rbac serve --synthetic 2 --users 10000    # synthetic fleet
    repro-rbac loadgen --port-file port.txt --requests 2000  # load harness
    repro-rbac config validate deploy.yaml          # versioned config set
    repro-rbac config diff v1.yaml v2.yaml          # staged change script
    repro-rbac replay state-dir/ --config-version 2 # deterministic replay

``--trace`` turns on the structured tracer and prints span trees for
denied operations ("explain why this request was denied"); ``metrics``
drives the same synthetic stream as ``simulate`` and dumps the metrics
registry in Prometheus text and/or JSON.

Exit status: 0 on success/clean, 1 on validation or verification
errors, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import ActiveRBACEngine, PolicyGraph, parse_policy
from repro.errors import PolicySyntaxError, ReproError
from repro.policy.dsl import render_policy
from repro.policy.validator import validate_policy
from repro.synthesis.verify import (
    errors_only,
    render_findings,
    verify_rule_pool,
)


def _load(path: str):
    try:
        text = Path(path).read_text()
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    try:
        return parse_policy(text)
    except PolicySyntaxError as exc:
        print(f"syntax error: {exc}", file=sys.stderr)
        raise SystemExit(1)


def _print_traces(engine, header: str = "traces") -> None:
    """Render captured span trees: denied operations first (the
    "explain the denial" view), else the most recent roots."""
    tracer = engine.obs.tracer
    denied = tracer.render_forest(only_errors=True, limit=5)
    if denied:
        shown = sum(1 for r in tracer.roots() if r.has_error())
        print(f"--- {header}: {len(tracer)} captured, "
              f"{shown} denied (showing up to 5) ---")
        print(denied)
    elif len(tracer):
        print(f"--- {header}: {len(tracer)} captured, none denied "
              f"(showing up to 3) ---")
        print(tracer.render_forest(limit=3))
    else:
        print(f"--- {header}: nothing captured ---")
    if tracer.dropped:
        print(f"({tracer.dropped} older trace(s) dropped by the "
              f"capacity bound)")


def cmd_check(args: argparse.Namespace) -> int:
    spec = _load(args.policy)
    issues = validate_policy(spec)
    if issues:
        print(f"{len(issues)} validation issue(s):")
        for issue in issues:
            print(f"  - {issue}")
        return 1
    print(f"policy {spec.name!r}: valid "
          f"({len(spec.roles)} roles, {len(spec.users)} users)")
    engine = ActiveRBACEngine(spec)
    findings = verify_rule_pool(engine)
    print(render_findings(findings))
    print(f"generated {len(engine.rules)} rules, "
          f"{len(engine.detector)} events")
    if getattr(args, "trace", False):
        _probe_with_trace(engine, spec)
    return 1 if errors_only(findings) else 0


def _probe_with_trace(engine, spec) -> None:
    """Drive one live probe (session + activation + access checks) with
    the tracer on, then print the span trees — a dynamic complement to
    the static pool verification."""
    engine.obs.tracer.enabled = True
    try:
        if spec.assignments:
            user, role = spec.assignments[0]
            sid = engine.create_session(user)
            engine.add_active_role(sid, role)
            for operation, obj in spec.permissions[:3]:
                engine.check_access(sid, operation, obj)
            # one guaranteed denial so the trace shows the ELSE path
            engine.check_access(sid, "__probe_op__", "__probe_obj__")
        else:
            print("(no assignments in policy; nothing to probe)")
    except ReproError as exc:
        print(f"(probe stopped on {type(exc).__name__}: {exc})")
    finally:
        engine.obs.tracer.enabled = False
    _print_traces(engine, header="probe traces")


def cmd_graph(args: argparse.Namespace) -> int:
    spec = _load(args.policy)
    print(PolicyGraph(spec).render())
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    spec = _load(args.policy)
    engine = ActiveRBACEngine(spec)
    if args.role:
        rules = engine.rules.by_tags(**{f"role:{args.role}": "1"})
        if not rules:
            print(f"no rules tagged for role {args.role!r}",
                  file=sys.stderr)
            return 1
        for rule in sorted(rules, key=lambda r: r.name):
            print(rule.render())
            print()
    else:
        print(engine.rules.render_pool())
    return 0


def _drive_stream(engine, spec, requests: int,
                  seed: int) -> tuple[int, int, int]:
    """Run the synthetic request stream against an engine; returns
    ``(allowed, denied, rejected_with_error)``.  Shared by ``simulate``
    and ``metrics``."""
    from repro.workloads import generate_request_stream

    sessions: dict[str, str] = {}
    allowed = denied = errors = 0
    for request in generate_request_stream(spec, requests, seed=seed):
        try:
            if request.kind == "create_session":
                sessions[request.user] = engine.create_session(
                    request.user)
            elif request.kind == "activate":
                sid = sessions.get(request.user)
                if sid is None:
                    sid = sessions[request.user] = \
                        engine.create_session(request.user)
                engine.add_active_role(sid, request.role)
                allowed += 1
            elif request.kind == "check":
                sid = sessions.get(request.user)
                if sid is None:
                    sid = sessions[request.user] = \
                        engine.create_session(request.user)
                if engine.check_access(sid, request.operation,
                                       request.obj):
                    allowed += 1
                else:
                    denied += 1
        except ReproError:
            errors += 1
    return allowed, denied, errors


def cmd_simulate(args: argparse.Namespace) -> int:
    spec = _load(args.policy)
    engine = ActiveRBACEngine(spec)
    if args.trace:
        engine.obs.tracer.enabled = True
    allowed, denied, errors = _drive_stream(engine, spec,
                                            args.requests, args.seed)
    print(f"simulated {args.requests} requests over policy "
          f"{spec.name!r}")
    print(f"  allowed: {allowed}  denied: {denied}  "
          f"rejected-with-error: {errors}")
    print(f"  detector: {engine.detector.stats()}")
    print()
    print(engine.audit.report())
    if args.trace:
        print()
        _print_traces(engine)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Drive the simulated stream, then dump the metrics registry."""
    spec = _load(args.policy)
    engine = ActiveRBACEngine(spec)
    allowed, denied, errors = _drive_stream(engine, spec,
                                            args.requests, args.seed)
    print(f"# simulated {args.requests} requests over policy "
          f"{spec.name!r} (allowed={allowed} denied={denied} "
          f"errors={errors})")
    registry = engine.obs.metrics
    if args.format in ("prom", "both"):
        print(registry.render_prometheus(), end="")
    if args.format in ("json", "both"):
        print(registry.render_json_text())
    return 0


def cmd_fmt(args: argparse.Namespace) -> int:
    print(render_policy(_load(args.policy)))
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """Drive the synthetic stream, then print the degradation summary.

    With ``--chaos-seed`` a deterministic fault schedule is injected
    into the highest-priority checkAccess rule first, demonstrating
    fail-closed containment and quarantine on a live policy.
    Exit status: 0 when the engine reports ``ok``, 1 when degraded.
    """
    import json as _json

    spec = _load(args.policy)
    engine = ActiveRBACEngine(spec)
    chaos = None
    if args.chaos_seed is not None:
        from repro.testing.faults import FaultInjector

        chaos = FaultInjector(seed=args.chaos_seed, clock=engine.clock)
        victims = engine.rules.rules_for_event("checkAccess")
        if victims:
            point = chaos.instrument_rule(victims[0], clause="then")
            chaos.arm(point, error=ZeroDivisionError, rate=args.chaos_rate)
    try:
        allowed, denied, errors = _drive_stream(engine, spec,
                                                args.requests, args.seed)
    finally:
        if chaos is not None:
            chaos.restore()
    health = engine.health()
    health["stream"] = {"allowed": allowed, "denied": denied,
                        "rejected_with_error": errors}
    if chaos is not None:
        health["chaos"] = chaos.summary()
    print(_json.dumps(health, indent=2, sort_keys=True))
    return 0 if health["status"] == "ok" else 1


def cmd_recover(args: argparse.Namespace) -> int:
    """Rebuild an engine from a durability directory (snapshot + WAL).

    Prints the recovery report; with ``--checkpoint`` the replayed
    tail is folded into a fresh snapshot and the WAL rotated, so the
    next recovery starts clean.  Exit status: 0 on a clean recovery,
    1 when a torn tail was truncated (state recovered, but the crash
    lost unsynced records), 2 when there is nothing to recover.
    """
    import json as _json

    from repro import wal as wal_mod

    try:
        engine, report = wal_mod.recover(args.directory)
    except FileNotFoundError as exc:
        print(f"error: no recoverable state in {args.directory}: {exc}",
              file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(f"error: corrupt durability state: {exc}", file=sys.stderr)
        return 2
    if args.checkpoint:
        durability = wal_mod.Durability(engine, args.directory)
        durability.close()
        report["checkpointed"] = True
    print(_json.dumps(report, indent=2, sort_keys=True))
    return 1 if report["torn"] else 0


def cmd_kernel(args: argparse.Namespace) -> int:
    """Compile the decision plane and print its statistics.

    Builds the engine, compiles the :class:`~repro.kernel.PolicyKernel`
    eagerly, optionally drives the synthetic request stream (so the
    kernel-vs-interpreted decision split is populated), and prints one
    JSON report: compilation stats (interned entities, bitset sizes,
    static/dynamic rule split, build time), fallback reasons, and the
    grant/deny/fallback decision counters from the observability hub.
    Exit status: 0 when the kernel compiled with full coverage, 1 when
    a coverage gap forces every check through the interpreted pipeline.
    """
    import json as _json

    spec = _load(args.policy)
    engine = ActiveRBACEngine(spec)
    kernel = engine.kernel()
    stream = None
    if args.requests:
        allowed, denied, errors = _drive_stream(engine, spec,
                                                args.requests, args.seed)
        stream = {"requests": args.requests, "allowed": allowed,
                  "denied": denied, "rejected_with_error": errors}
        # the stream may have mutated policy-adjacent state; report the
        # kernel that is actually live after the drive
        kernel = engine.kernel()
    report = kernel.stats()
    decisions = engine.obs.kernel_decisions
    report["decisions"] = {
        path: decisions.labels(path).value
        for path in ("grant", "deny", "fallback")
    }
    # the fallback-reason taxonomy split (cumulative across recompiles,
    # including engine-level bypasses; kernel.stats()["fallbacks"] is
    # the per-kernel view of the kernel-internal subset)
    report["fallback_reasons"] = {
        labels["reason"]: child.value
        for labels, child in engine.obs.kernel_fallbacks.series()
    }
    if stream is not None:
        report["stream"] = stream
    print(_json.dumps(report, indent=2, sort_keys=True))
    return 1 if report["coverage_gap"] else 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Explain one access decision: build the engine, stand up a
    session for the user (activating ``--roles``, default: every
    assigned role, best-effort), and print the derivation —
    permission → role → hierarchy chain, context gates, privacy,
    serving path and fallback reason.  Exit status mirrors the
    verdict: 0 granted, 1 denied.
    """
    import json as _json

    spec = _load(args.policy)
    engine = ActiveRBACEngine(spec)
    if args.user not in engine.model.users:
        print(f"error: unknown user {args.user!r}", file=sys.stderr)
        return 2
    sid = engine.create_session(args.user)
    roles = (args.roles.split(",") if args.roles
             else sorted(engine.model.assigned_roles(args.user)))
    skipped = []
    for role in roles:
        try:
            engine.add_active_role(sid, role.strip())
        except ReproError as exc:
            skipped.append((role.strip(), type(exc).__name__))
    explanation = engine.explain(sid, args.operation, args.object,
                                 purpose=args.purpose, scope=args.scope)
    if args.json:
        payload = explanation.to_dict()
        if skipped:
            payload["activation_skipped"] = [
                {"role": role, "error": error} for role, error in skipped]
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(explanation.describe())
        for role, error in skipped:
            print(f"  (could not activate {role}: {error})")
    return 0 if explanation.allowed else 1


def cmd_flightrec(args: argparse.Namespace) -> int:
    """Drive the simulated stream with the flight recorder on, then
    dump the ring (JSON file + audit entry) and print a summary: the
    kernel/interpreted decision split, the fallback-reason taxonomy,
    and the most recent records.
    """
    import json as _json

    from repro.obs import FlightRecorder

    spec = _load(args.policy)
    engine = ActiveRBACEngine(spec)
    if args.capacity:
        engine.flight = FlightRecorder(capacity=args.capacity)
    allowed, denied, errors = _drive_stream(engine, spec,
                                            args.requests, args.seed)
    path = engine.dump_flight("cli.flightrec", directory=args.out)
    records = engine.flight.snapshot()
    by_path: dict[str, int] = {}
    firings = 0
    for record in records:
        if record["kind"] == "decision":
            by_path[record["path"]] = by_path.get(record["path"], 0) + 1
        else:
            firings += 1
    summary = {
        "stream": {"requests": args.requests, "allowed": allowed,
                   "denied": denied, "rejected_with_error": errors},
        "recorded": {"entries": len(records),
                     "total_seen": engine.flight.seq,
                     "capacity": engine.flight.capacity,
                     "decisions_by_path": by_path,
                     "rule_firings": firings},
        "fallback_reasons": {
            labels["reason"]: child.value
            for labels, child in engine.obs.kernel_fallbacks.series()},
        "dump": path,
    }
    print(_json.dumps(summary, indent=2, sort_keys=True))
    if args.tail:
        print(f"--- last {args.tail} records ---")
        for record in engine.flight.tail(args.tail):
            print(_json.dumps(record, sort_keys=True))
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """``obs top``: hottest rules by firing count and slowest rules by
    latency p99, from the metrics registry after driving the simulated
    stream.  Timing sampling is forced to every firing (which also
    routes checks through the interpreted pipeline) so the latency
    histograms cover every rule that fired.
    """
    spec = _load(args.policy)
    engine = ActiveRBACEngine(spec)
    engine.obs.set_timing_interval(1)  # full-fidelity rule timing
    _drive_stream(engine, spec, args.requests, args.seed)

    hottest = sorted(
        ((rule.name, rule.then_count + rule.else_count)
         for rule in engine.rules),
        key=lambda row: -row[1])[:args.top]
    print(f"hottest rules by firings (top {args.top}):")
    for name, count in hottest:
        if not count:
            break
        print(f"  {count:8d}  {name}")

    print(f"slowest rules by p99 latency (top {args.top}, "
          f"bucket-resolution):")
    for name, samples, cond_p99, act_p99 in \
            engine.obs.rule_latency_profile(args.top):
        print(f"  cond {cond_p99 / 1000:8.1f} us  "
              f"action {act_p99 / 1000:8.1f} us  "
              f"({samples} samples)  {name}")
    return 0


def _load_shard_file(path: str):
    """One shard boot file: raw DSL (the historical form) or a
    versioned config-set document (YAML subset / JSON) — the same
    formats the ``reload`` lifecycle op stages later.  Returns
    ``(spec, version)``; version is ``None`` for raw DSL, which only
    gets a config version once a rollout stages one."""
    from repro.config.loader import ConfigError, load_config

    if not Path(path).exists():
        print(f"error: cannot read {path}: no such file",
              file=sys.stderr)
        raise SystemExit(2)
    try:
        config = load_config(path)
        return config.spec, config.version
    except ConfigError as exc:
        if "version" in str(exc):  # valid policy, no version id
            return _load(path), None
        print(f"error: {path}: {exc}", file=sys.stderr)
        raise SystemExit(1)


def _fleet_specs(args: argparse.Namespace) -> tuple[dict, dict, dict]:
    """The shard name -> PolicySpec map the service plane boots from:
    explicit ``--shard NAME=FILE`` pairs win; otherwise the
    deterministic synthetic fleet from ``(shards, users, roles, seed)``
    — the same derivation ``loadgen`` uses, so client and server agree
    on every name with no coordination.  Also returns the shard name ->
    config file path map (empty for synthetic shards): file-backed
    shards keep their path so SIGHUP / the ``reload`` admin op can
    re-read and *stage* the file through the rollout lifecycle — and
    the shard name -> declared config version map, so the booted
    version is adopted and an unchanged re-read is a no-op."""
    specs: dict = {}
    paths: dict = {}
    versions: dict = {}
    for item in getattr(args, "shard", None) or []:
        name, sep, path = item.partition("=")
        if not sep or not name:
            print(f"error: --shard expects NAME=FILE, got {item!r}",
                  file=sys.stderr)
            raise SystemExit(2)
        spec, version = _load_shard_file(path)
        spec.name = name
        specs[name] = spec
        paths[name] = path
        if version is not None:
            versions[name] = version
    if not specs:
        from repro.workloads import generate_fleet

        specs = generate_fleet(args.synthetic, args.users,
                               args.roles, args.seed)
    return specs, paths, versions


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the service plane: one engine (+ optional WAL) per shard
    behind the asyncio HTTP front-end; serves until SIGTERM/SIGINT,
    then drains, flushes every WAL, and dumps every flight recorder.
    """
    import asyncio
    import os

    from repro.federation import RoleMapping
    from repro.serve import ServeApp, ShardRouter

    specs, config_paths, config_versions = _fleet_specs(args)
    router = ShardRouter()
    durabilities = []
    if getattr(args, "decision_journal", False) and not args.wal:
        print("error: --decision-journal requires --wal",
              file=sys.stderr)
        return 2
    for name in sorted(specs):
        engine = ActiveRBACEngine(specs[name])
        durability = None
        if args.wal:
            from repro.wal import Durability

            durability = Durability(engine,
                                    os.path.join(args.wal, name))
            durabilities.append(durability)
            if getattr(args, "decision_journal", False):
                engine.decision_journal = True
        shard = router.add_shard(name, engine, durability,
                                 config_path=config_paths.get(name))
        if name in config_versions:
            # the booted file declared a version: adopt it, so a
            # SIGHUP re-read of the unchanged file is a no-op and the
            # first real push must advance the version
            shard.ensure_lifecycle().adopt(config_versions[name])
    for item in args.map or []:
        try:
            home, host = item.split("=", 1)
            home_domain, home_role = home.split(":", 1)
            host_domain, host_role = host.split(":", 1)
        except ValueError:
            print(f"error: --map expects HOME:ROLE=HOST:ROLE, "
                  f"got {item!r}", file=sys.stderr)
            return 2
        router.add_mapping(RoleMapping(home_domain, home_role,
                                       host_domain, host_role))
    # config-declared federation maps (the --map equivalents baked
    # into each shard's policy file) reconcile after every shard and
    # explicit mapping is registered
    router.sync_federation()
    flightrec_dir = (args.flightrec_dir
                     or os.environ.get("REPRO_FLIGHTREC_DIR"))
    app = ServeApp(router, drain_grace=args.drain_grace,
                   flightrec_dir=flightrec_dir,
                   max_inflight=args.max_inflight,
                   request_timeout=args.request_timeout_ms / 1000.0,
                   max_head_bytes=args.max_head_bytes,
                   max_body_bytes=args.max_body_bytes,
                   shard_concurrency=args.shard_concurrency,
                   breaker_threshold=args.breaker_threshold,
                   breaker_cooldown=args.breaker_cooldown,
                   watch_interval=args.watch_interval)
    if args.chaos_check:
        # deterministic shard-fault injection for the chaos-serve CI
        # job: after WARM clean calls, the next FAILS checks raise
        # TransientError (503s that trip the shard's breaker)
        from repro.errors import TransientError
        from repro.testing.faults import FaultInjector

        try:
            shard_name, warm_s, fails_s = args.chaos_check.split(":")
            warm, fails = int(warm_s), int(fails_s)
        except ValueError:
            print(f"error: --chaos-check expects SHARD:WARM:FAILS, "
                  f"got {args.chaos_check!r}", file=sys.stderr)
            return 2
        try:
            shard = router.shard(shard_name)
        except ReproError as exc:
            print(f"error: --chaos-check: {exc}", file=sys.stderr)
            return 2
        chaos = FaultInjector(seed=args.seed)
        point = f"serve.chaos.{shard_name}.check"
        chaos.arm(point, error=TransientError,
                  at=range(warm + 1, warm + 1 + fails))
        chaos.patch(shard, "check", point)
        print(f"chaos-check armed: shard {shard_name} fails checks "
              f"{warm + 1}..{warm + fails}", flush=True)
    print(router.describe(), flush=True)
    try:
        asyncio.run(app.run(args.host, args.port,
                            port_file=args.port_file))
    finally:
        for durability in durabilities:
            durability.close()
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running server with the deterministic service plan and
    report the saturation curve; exit 1 when the p99 budget is blown
    or any request errored.  ``--open-loop RPS`` switches to the
    overload harness (goodput vs. shed rate), ``--chaos SEED`` to the
    network-fault replay — both emit into ``--out`` when given."""
    import asyncio
    import json as _json

    from repro.serve.loadgen import (
        run_chaos,
        run_loadgen,
        run_overload,
        write_bench,
        write_json,
    )
    from repro.workloads import generate_fleet, generate_service_plan

    port = args.port
    if args.port_file:
        try:
            port = int(Path(args.port_file).read_text().strip())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read port from {args.port_file}: "
                  f"{exc}", file=sys.stderr)
            return 2
    if not port:
        print("error: need --port or --port-file", file=sys.stderr)
        return 2
    fleet = generate_fleet(args.shards, args.users,
                           args.roles, args.seed)
    plan = generate_service_plan(fleet, args.requests,
                                 seed=args.plan_seed,
                                 admin_every=args.admin_every)
    if args.open_loop is not None:
        overload = asyncio.run(run_overload(
            args.host, port, plan, args.open_loop,
            client_timeout=args.client_timeout))
        payload = {"mode": "open_loop", **overload.to_dict()}
        if args.out:
            write_json(payload, args.out)
        print(_json.dumps(payload, indent=2, sort_keys=True))
        if overload.hung:
            print(f"FAIL: {overload.hung} hung request(s)",
                  file=sys.stderr)
            return 1
        if overload.retry_after_missing:
            print(f"FAIL: {overload.retry_after_missing} shed 503(s) "
                  f"without Retry-After", file=sys.stderr)
            return 1
        return 0
    if args.chaos is not None:
        from repro.testing.faults import NetFaultPlan

        fault_plan = NetFaultPlan(seed=args.chaos)
        chaos_report = asyncio.run(run_chaos(
            args.host, port, plan, fault_plan,
            response_timeout=args.client_timeout))
        payload = {"mode": "chaos", "seed": args.chaos,
                   **chaos_report.to_dict()}
        if args.out:
            write_json(payload, args.out)
        print(_json.dumps(payload, indent=2, sort_keys=True))
        if (chaos_report.hung or chaos_report.server_5xx
                or not chaos_report.alive_after):
            print(f"FAIL: hung={chaos_report.hung} "
                  f"server_5xx={chaos_report.server_5xx} "
                  f"alive_after={chaos_report.alive_after}",
                  file=sys.stderr)
            return 1
        return 0
    try:
        levels = tuple(int(level) for level in args.levels.split(","))
    except ValueError:
        print(f"error: --levels expects N,N,..., got {args.levels!r}",
              file=sys.stderr)
        return 2
    report = asyncio.run(run_loadgen(
        args.host, port, plan, levels=levels,
        users=sum(len(spec.users) for spec in fleet.values()),
        shards=len(fleet), seed=args.plan_seed))
    extra = {}
    if args.p99_budget_ms is not None:
        extra["budget_p99_ms"] = args.p99_budget_ms
    payload = (write_bench(report, args.out, extra=extra)
               if args.out else {**report.to_dict(), **extra})
    print(_json.dumps(payload, indent=2, sort_keys=True))
    failed = False
    if (args.p99_budget_ms is not None
            and report.overall_p99_us > args.p99_budget_ms * 1000):
        print(f"FAIL: p99 {report.overall_p99_us / 1000:.2f} ms over "
              f"budget {args.p99_budget_ms} ms", file=sys.stderr)
        failed = True
    errors = sum(level.errors for level in report.levels)
    if errors:
        print(f"FAIL: {errors} request error(s)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def _load_configset(path: str, version: int | None = None):
    from repro.config import load_config
    from repro.config.loader import ConfigError

    try:
        return load_config(path, version=version)
    except ConfigError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        raise SystemExit(1)


def cmd_config(args: argparse.Namespace) -> int:
    """Config-set tooling: ``validate`` parses + validates one
    versioned config document (YAML/JSON/raw DSL) and verifies the
    rule pool it would generate; ``diff`` prints the structured change
    script between two config files — exactly the operations a staged
    promotion would apply (exit 1 when the configs differ, mirroring
    ``diff(1)``)."""
    import json as _json

    if args.action == "validate":
        config = _load_configset(args.file, version=args.version)
        engine = ActiveRBACEngine(config.spec)
        findings = verify_rule_pool(engine)
        report = config.describe()
        report["rules"] = len(engine.rules)
        report["events"] = len(engine.detector)
        report["verification"] = [str(f) for f in findings]
        if args.json:
            print(_json.dumps(report, indent=2, sort_keys=True))
        else:
            print(f"config v{config.version} ({config.origin}): valid")
            print(f"  checksum: {config.checksum}")
            print(f"  roles: {len(config.spec.roles)}  "
                  f"users: {len(config.spec.users)}  "
                  f"rules: {len(engine.rules)}")
            print(render_findings(findings))
        return 1 if errors_only(findings) else 0
    if args.action == "diff":
        from repro.config import diff_specs

        old = _load_configset(args.old, version=1)
        new = _load_configset(args.new, version=2)
        diff = diff_specs(old.spec, new.spec)
        payload = diff.summary()
        payload["model_ops"] = [
            {"op": op, "args": [repr(item) for item in rest]}
            for op, *rest in diff.model_ops]
        payload["regen_seeds"] = sorted(diff.regen_seeds)
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0 if diff.is_empty else 1
    print(f"error: unknown config action {args.action!r}",
          file=sys.stderr)
    return 2


def cmd_replay(args: argparse.Namespace) -> int:
    """Deterministic WAL replay under a pinned config version.

    Re-runs the decision stream of a durability directory's WAL under
    ``--config-version N`` (a version persisted by the lifecycle under
    ``DIR/configs/``, or an explicit ``--config FILE``); the replayed
    stream's sha256 digest is the determinism fingerprint CI asserts
    across seeds.  ``--compare-version M`` replays the same WAL a
    second time and prints the per-decision divergence between the two
    versions.  Exit: 0 clean, 1 when ``--expect-digest`` mismatches,
    2 on a missing WAL/config.
    """
    import json as _json

    from repro.config.lifecycle import load_version
    from repro.config.loader import ConfigError, load_config
    from repro.config.replay import diff_streams, replay_wal

    try:
        if args.config:
            config = load_config(args.config,
                                 version=args.config_version)
        else:
            config = load_version(args.directory, args.config_version)
        result = replay_wal(args.directory, config)
        payload: dict = result.summary()
        if args.compare_version is not None:
            other = replay_wal(
                args.directory,
                load_version(args.directory, args.compare_version))
            payload = {"replay": payload, "compare": other.summary(),
                       "diff": diff_streams(result, other)}
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"replayed {result.records} WAL record(s) under config "
              f"v{config.version} ({len(result.decisions)} decisions, "
              f"{len(result.mismatches)} mismatch(es), "
              f"{len(result.gaps)} gap(s), "
              f"{result.pinned_swaps} pinned swap(s))")
        print(f"  digest: {result.digest}")
        if args.compare_version is not None:
            diff = payload["diff"]
            print(f"  vs v{args.compare_version}: "
                  f"{'identical' if diff['identical'] else 'diverged'} "
                  f"({len(diff['differing'])} differing decision(s) "
                  f"of {diff['compared']})")
    if args.expect_digest and result.digest != args.expect_digest:
        print(f"FAIL: digest {result.digest} != expected "
              f"{args.expect_digest}", file=sys.stderr)
        return 1
    return 0


def cmd_hygiene(args: argparse.Namespace) -> int:
    from repro.analysis import policy_hygiene, who_can

    spec = _load(args.policy)
    engine = ActiveRBACEngine(spec)
    report = policy_hygiene(engine)
    print(report.describe())
    if args.who_can:
        try:
            operation, obj = args.who_can.split(":", 1)
        except ValueError:
            print("error: --who-can expects OPERATION:OBJECT",
                  file=sys.stderr)
            return 2
        entitled = who_can(engine, operation, obj)
        if not entitled:
            print(f"nobody can {operation} on {obj}")
        else:
            print(f"users able to {operation} on {obj}:")
            for user in sorted(entitled):
                roles = ", ".join(sorted(entitled[user]))
                print(f"  {user} (via {roles})")
    return 0 if report.is_clean() else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rbac",
        description="OWTE active-authorization-rule RBAC engine "
                    "(ICDE 2005 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check",
                           help="validate a policy and verify its "
                                "generated rule pool")
    check.add_argument("policy")
    check.add_argument("--trace", action="store_true",
                       help="also run a traced live probe and print "
                            "its span trees")
    check.set_defaults(fn=cmd_check)

    graph = sub.add_parser("graph",
                           help="print the access-specification graph")
    graph.add_argument("policy")
    graph.set_defaults(fn=cmd_graph)

    rules = sub.add_parser("rules", help="print generated OWTE rules")
    rules.add_argument("policy")
    rules.add_argument("--role", help="only rules tagged for this role")
    rules.set_defaults(fn=cmd_rules)

    simulate = sub.add_parser("simulate",
                              help="drive a synthetic request stream")
    simulate.add_argument("policy")
    simulate.add_argument("--requests", type=int, default=1000)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--trace", action="store_true",
                          help="record span trees and print the denied "
                               "operations' traces")
    simulate.set_defaults(fn=cmd_simulate)

    metrics = sub.add_parser(
        "metrics", help="drive the simulated stream and dump the "
                        "metrics registry")
    metrics.add_argument("policy")
    metrics.add_argument("--requests", type=int, default=1000)
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument("--format", choices=("prom", "json", "both"),
                         default="both",
                         help="exposition format (default: both)")
    metrics.set_defaults(fn=cmd_metrics)

    fmt = sub.add_parser("fmt", help="canonical DSL rendering")
    fmt.add_argument("policy")
    fmt.set_defaults(fn=cmd_fmt)

    health = sub.add_parser(
        "health", help="drive the simulated stream and print the "
                       "engine degradation summary (exit 1 if degraded)")
    health.add_argument("policy")
    health.add_argument("--requests", type=int, default=1000)
    health.add_argument("--seed", type=int, default=7)
    health.add_argument("--chaos-seed", type=int, default=None,
                        help="inject a deterministic fault schedule "
                             "into a checkAccess rule first")
    health.add_argument("--chaos-rate", type=float, default=0.2,
                        help="per-call fault probability under "
                             "--chaos-seed (default: 0.2)")
    health.set_defaults(fn=cmd_health)

    recover = sub.add_parser(
        "recover", help="rebuild engine state from a durability "
                        "directory (newest snapshot + WAL replay)")
    recover.add_argument("directory",
                         help="directory holding snapshot.json + wal.log")
    recover.add_argument("--checkpoint", action="store_true",
                         help="also fold the replayed tail into a fresh "
                              "snapshot and rotate the WAL")
    recover.set_defaults(fn=cmd_recover)

    kernel = sub.add_parser(
        "kernel", help="compile the decision plane and print its "
                       "statistics (exit 1 on a coverage gap)")
    kernel.add_argument("policy")
    kernel.add_argument("--requests", type=int, default=0,
                        help="also drive the simulated stream first so "
                             "the kernel/interpreted decision split is "
                             "populated (default: 0 = skip)")
    kernel.add_argument("--seed", type=int, default=7)
    kernel.set_defaults(fn=cmd_kernel)

    explain = sub.add_parser(
        "explain", help="explain one access decision: the permission "
                        "derivation, serving path, and deny cause "
                        "(exit 1 when denied)")
    explain.add_argument("policy")
    explain.add_argument("user")
    explain.add_argument("operation")
    explain.add_argument("object")
    explain.add_argument("--roles",
                         help="comma-separated roles to activate "
                              "(default: every assigned role)")
    explain.add_argument("--purpose", default=None,
                         help="access purpose for privacy-extended "
                              "policies")
    explain.add_argument("--scope", default=None,
                         help="evaluate the S-A-O-C check within this "
                              "scope (default: the root scope, i.e. a "
                              "flat check)")
    explain.add_argument("--json", action="store_true",
                         help="machine-readable derivation instead of "
                              "the narrative form")
    explain.set_defaults(fn=cmd_explain)

    flightrec = sub.add_parser(
        "flightrec", help="drive the simulated stream, dump the "
                          "flight-recorder ring, and print the "
                          "decision-path / fallback-reason split")
    flightrec.add_argument("policy")
    flightrec.add_argument("--requests", type=int, default=1000)
    flightrec.add_argument("--seed", type=int, default=7)
    flightrec.add_argument("--capacity", type=int, default=0,
                           help="override the ring capacity "
                                "(default: keep the engine's)")
    flightrec.add_argument("--out", default=None,
                           help="directory for the dump file "
                                "(default: a fresh temp directory)")
    flightrec.add_argument("--tail", type=int, default=0,
                           help="also print the last N records")
    flightrec.set_defaults(fn=cmd_flightrec)

    obs = sub.add_parser(
        "obs", help="observability reports over the simulated stream")
    obs_sub = obs.add_subparsers(dest="report", required=True)
    obs_top = obs_sub.add_parser(
        "top", help="hottest rules by firings, slowest by p99 latency")
    obs_top.add_argument("policy")
    obs_top.add_argument("--requests", type=int, default=1000)
    obs_top.add_argument("--seed", type=int, default=7)
    obs_top.add_argument("--top", type=int, default=10)
    obs_top.set_defaults(fn=cmd_obs)

    serve = sub.add_parser(
        "serve", help="boot the asyncio HTTP service plane over one "
                      "or more tenant shards (SIGTERM drains, flushes "
                      "WALs, dumps flight recorders)")
    serve.add_argument("--shard", action="append", metavar="NAME=FILE",
                       help="register a tenant shard from a policy "
                            "file (repeatable)")
    serve.add_argument("--synthetic", type=int, default=2,
                       metavar="SHARDS",
                       help="without --shard: number of synthetic "
                            "shards to generate (default: 2)")
    serve.add_argument("--users", type=int, default=10_000,
                       help="synthetic fleet: total simulated users "
                            "across shards (default: 10000)")
    serve.add_argument("--roles", type=int, default=50,
                       help="synthetic fleet: roles per shard "
                            "(default: 50)")
    serve.add_argument("--seed", type=int, default=7,
                       help="synthetic fleet seed (default: 7)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default: 0 = ephemeral)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound port here (how the CI "
                            "smoke job finds an ephemeral port)")
    serve.add_argument("--wal", default=None, metavar="DIR",
                       help="attach WAL durability; each shard logs "
                            "under DIR/<shard>/")
    serve.add_argument("--decision-journal", action="store_true",
                       help="journal every decision to the WAL so "
                            "`repro-rbac replay` can re-run and diff "
                            "the stream under pinned config versions "
                            "(requires --wal)")
    serve.add_argument("--flightrec-dir", default=None,
                       help="flight-recorder dump directory (default: "
                            "$REPRO_FLIGHTREC_DIR, else per-engine "
                            "temp)")
    serve.add_argument("--map", action="append",
                       metavar="HOME:ROLE=HOST:ROLE",
                       help="cross-shard role mapping (repeatable)")
    serve.add_argument("--drain-grace", type=float, default=5.0,
                       help="seconds to wait for in-flight requests "
                            "on shutdown (default: 5)")
    serve.add_argument("--max-inflight", type=int, default=256,
                       help="admission control: requests handled "
                            "concurrently before shedding 503 "
                            "(default: 256)")
    serve.add_argument("--request-timeout-ms", type=float,
                       default=1000.0,
                       help="per-request i/o timeout and default "
                            "deadline budget in ms (default: 1000)")
    serve.add_argument("--max-body-bytes", type=int,
                       default=4 * 1024 * 1024,
                       help="request body size bound (default: 4 MiB)")
    serve.add_argument("--max-head-bytes", type=int, default=16 * 1024,
                       help="request head size bound (default: 16 KiB)")
    serve.add_argument("--shard-concurrency", type=int, default=64,
                       help="per-shard bulkhead slots (default: 64)")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive shard failures that trip its "
                            "circuit breaker (default: 5)")
    serve.add_argument("--breaker-cooldown", type=float, default=2.0,
                       help="seconds an open breaker waits before its "
                            "half-open probe (default: 2)")
    serve.add_argument("--watch-interval", type=float, default=0.0,
                       metavar="SECONDS",
                       help="poll file-backed shard configs every "
                            "SECONDS and stage changed files without "
                            "SIGHUP (default: 0 = off)")
    serve.add_argument("--chaos-check", default=None,
                       metavar="SHARD:WARM:FAILS",
                       help="fault injection: after WARM clean checks "
                            "on SHARD, fail the next FAILS with "
                            "TransientError (trips the breaker "
                            "deterministically; CI chaos harness)")
    serve.set_defaults(fn=cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="closed-loop load harness against a running "
                        "serve instance; emits BENCH_serve.json and "
                        "gates on a p99 budget")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=None)
    loadgen.add_argument("--port-file", default=None,
                         help="read the target port from this file")
    loadgen.add_argument("--shards", type=int, default=2,
                         help="fleet derivation: must match the "
                              "server's --synthetic (default: 2)")
    loadgen.add_argument("--users", type=int, default=10_000,
                         help="fleet derivation: must match the "
                              "server's --users (default: 10000)")
    loadgen.add_argument("--roles", type=int, default=50,
                         help="fleet derivation: must match the "
                              "server's --roles (default: 50)")
    loadgen.add_argument("--seed", type=int, default=7,
                         help="fleet derivation: must match the "
                              "server's --seed (default: 7)")
    loadgen.add_argument("--plan-seed", type=int, default=23,
                         help="op-mix seed (default: 23)")
    loadgen.add_argument("--requests", type=int, default=2000,
                         help="total ops across all levels "
                              "(default: 2000)")
    loadgen.add_argument("--levels", default="1,4,16",
                         help="comma-separated concurrency levels for "
                              "the saturation sweep (default: 1,4,16)")
    loadgen.add_argument("--admin-every", type=int, default=0,
                         help="make every Nth op a control-plane "
                              "grant (default: 0 = none)")
    loadgen.add_argument("--out", default=None, metavar="FILE",
                         help="write the BENCH_serve.json report here")
    loadgen.add_argument("--p99-budget-ms", type=float, default=None,
                         help="fail (exit 1) when overall p99 exceeds "
                              "this many milliseconds")
    loadgen.add_argument("--open-loop", type=float, default=None,
                         metavar="RPS",
                         help="open-loop overload mode: offer the plan "
                              "at a fixed request rate and report "
                              "goodput vs. shed rate (fails on hung "
                              "connections or shed 503s missing "
                              "Retry-After)")
    loadgen.add_argument("--chaos", type=int, default=None,
                         metavar="SEED",
                         help="network chaos mode: replay the plan "
                              "through the seeded fault-injecting "
                              "transport (resets, stalls, truncated "
                              "bodies, garbage frames)")
    loadgen.add_argument("--client-timeout", type=float, default=5.0,
                         help="open-loop/chaos: seconds to wait for a "
                              "response before counting the "
                              "connection as hung (default: 5)")
    loadgen.set_defaults(fn=cmd_loadgen)

    config = sub.add_parser(
        "config", help="versioned config-set tooling: validate one "
                       "document, or diff two into the staged change "
                       "script")
    config_sub = config.add_subparsers(dest="action", required=True)
    config_validate = config_sub.add_parser(
        "validate", help="parse + validate a YAML/JSON/DSL config and "
                         "verify its generated rule pool")
    config_validate.add_argument("file")
    config_validate.add_argument("--version", type=int, default=None,
                                 help="override (or, for raw DSL, "
                                      "supply) the config version")
    config_validate.add_argument("--json", action="store_true",
                                 help="machine-readable report")
    config_validate.set_defaults(fn=cmd_config)
    config_diff = config_sub.add_parser(
        "diff", help="structured delta between two config files — the "
                     "operations a staged promotion would apply "
                     "(exit 1 when they differ)")
    config_diff.add_argument("old")
    config_diff.add_argument("new")
    config_diff.set_defaults(fn=cmd_config)

    replay = sub.add_parser(
        "replay", help="re-run a WAL's decision stream under a pinned "
                       "config version; the digest is the determinism "
                       "fingerprint")
    replay.add_argument("directory",
                        help="durability directory holding wal.log "
                             "(and the lifecycle's configs/)")
    replay.add_argument("--config-version", type=int, required=True,
                        help="config version to replay under (loaded "
                             "from DIR/configs/vN.rbac unless "
                             "--config is given)")
    replay.add_argument("--config", default=None, metavar="FILE",
                        help="explicit config file instead of the "
                             "persisted artifact")
    replay.add_argument("--compare-version", type=int, default=None,
                        help="also replay under this persisted version "
                             "and print the decision divergence")
    replay.add_argument("--expect-digest", default=None,
                        help="fail (exit 1) unless the replay digest "
                             "equals this value")
    replay.add_argument("--json", action="store_true",
                        help="machine-readable report")
    replay.set_defaults(fn=cmd_replay)

    hygiene = sub.add_parser(
        "hygiene", help="staleness/redundancy report, optional "
                        "entitlement review")
    hygiene.add_argument("policy")
    hygiene.add_argument("--who-can", metavar="OPERATION:OBJECT",
                         help="also list users able to perform this")
    hygiene.set_defaults(fn=cmd_hygiene)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
