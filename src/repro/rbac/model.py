"""Core RBAC state: the authoritative model both engines share.

Implements the ANSI INCITS 359-2004 functional specification:

* **administrative commands** — ``add_user``, ``delete_user``,
  ``add_role``, ``delete_role``, ``assign_user``, ``deassign_user``,
  ``grant_permission``, ``revoke_permission``, ``add_inheritance``,
  ``delete_inheritance``, SSD/DSD set management;
* **supporting system functions** — session records
  (``create_session_record`` etc.) as *unchecked* state transitions: the
  enforcement engines (active rules or the direct baseline) perform the
  checks and then call these to commit;
* **review functions** — ``assigned_users``, ``authorized_users``,
  ``role_permissions``, ``session_roles`` and friends;
* **predicates** — the pure checks the paper's generated rule conditions
  call (``checkAssignedR1``, ``checkAuthorizationR1``,
  ``checkDynamicSoDSet``, ``checkPermissions``, ...).

Administrative commands *do* validate (e.g. ``assign_user`` refuses an
SSD violation) because the standard defines them as total functions over
consistent states; the paper's administrative rules wrap them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import (
    AdministrationError,
    DuplicateEntityError,
    SsdViolationError,
    UnknownPermissionError,
    UnknownRoleError,
    UnknownSessionError,
    UnknownUserError,
)
from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.scopes import SCOPE_ROOT, ScopeTree, UnknownScopeError
from repro.rbac.sod import SodRegistry


@dataclass(frozen=True)
class Permission:
    """An approval to perform ``operation`` on ``obj`` (PRMS in the spec)."""

    operation: str
    obj: str

    def __str__(self) -> str:
        return f"({self.operation}, {self.obj})"


@dataclass
class User:
    """An instance of entity U: a human or user agent (paper §4.1).

    ``max_active_roles`` carries the *specialized* cardinality constraint
    of paper scenario 1 ("Jane restricted to five active roles"); ``None``
    means unconstrained.
    """

    name: str
    max_active_roles: int | None = None
    attributes: dict[str, str] = field(default_factory=dict)


@dataclass
class Role:
    """An instance of entity R: a job function (paper §4.1).

    ``max_active_users`` carries the *localized* cardinality constraint
    of paper scenario 2 ("Programmer activated by at most five users").
    ``enabled`` is the GTRBAC role status: a disabled role cannot be
    activated in any session (it stays assigned).
    """

    name: str
    max_active_users: int | None = None
    enabled: bool = True
    attributes: dict[str, str] = field(default_factory=dict)


@dataclass
class Session:
    """A user's session with its active role set (paper footnote 9)."""

    session_id: str
    user: str
    active_roles: set[str] = field(default_factory=set)


class RBACModel:
    """The shared RBAC state machine.

    ``hierarchy_limited=True`` selects limited hierarchies (at most one
    immediate descendant per role).
    """

    def __init__(self, hierarchy_limited: bool = False) -> None:
        self.users: dict[str, User] = {}
        self.roles: dict[str, Role] = {}
        self.operations: set[str] = set()
        self.objects: set[str] = set()
        self.permissions: set[Permission] = set()
        #: user-role assignment relation UA
        self._ua: dict[str, set[str]] = {}
        #: permission-role assignment relation PA (role -> permissions)
        self._pa: dict[str, set[Permission]] = {}
        self.hierarchy = RoleHierarchy(limited=hierarchy_limited)
        self.sod = SodRegistry()
        self.sessions: dict[str, Session] = {}
        #: the S-A-O-C scope tree; the root is the flat (unscoped) context
        self.scopes = ScopeTree()
        #: scoped PA: role -> scope -> permissions granted *at* that scope
        #: (covering the scope's whole subtree); flat PA stays in _pa
        self._pa_scoped: dict[str, dict[str, set[Permission]]] = {}
        #: assignment scope limits: (user, role) -> scopes the assignment
        #: is bounded to; absent pair = unbounded (flat) assignment
        self._ua_scopes: dict[tuple[str, str], set[str]] = {}

    # ======================================================================
    # administrative commands
    # ======================================================================

    def add_user(self, name: str, max_active_roles: int | None = None) -> User:
        if name in self.users:
            raise DuplicateEntityError(f"user {name!r} already exists")
        user = User(name, max_active_roles)
        self.users[name] = user
        self._ua[name] = set()
        return user

    def delete_user(self, name: str) -> None:
        """Delete a user; their sessions are destroyed (ANSI semantics)."""
        self._require_user(name)
        for session_id in [
            sid for sid, s in self.sessions.items() if s.user == name
        ]:
            del self.sessions[session_id]
        del self._ua[name]
        for pair in [p for p in self._ua_scopes if p[0] == name]:
            del self._ua_scopes[pair]
        del self.users[name]

    def add_role(self, name: str, max_active_users: int | None = None,
                 enabled: bool = True) -> Role:
        if name in self.roles:
            raise DuplicateEntityError(f"role {name!r} already exists")
        role = Role(name, max_active_users, enabled)
        self.roles[name] = role
        self._pa[name] = set()
        self.hierarchy.add_role(name)
        return role

    def delete_role(self, name: str) -> None:
        """Delete a role everywhere: UA, PA, hierarchy, SoD, sessions."""
        self._require_role(name)
        for assigned in self._ua.values():
            assigned.discard(name)
        del self._pa[name]
        self._pa_scoped.pop(name, None)
        for pair in [p for p in self._ua_scopes if p[1] == name]:
            del self._ua_scopes[pair]
        self.hierarchy.remove_role(name)
        self.sod.remove_role(name)
        for session in self.sessions.values():
            session.active_roles.discard(name)
        del self.roles[name]

    def add_operation(self, operation: str) -> None:
        self.operations.add(operation)

    def add_object(self, obj: str) -> None:
        self.objects.add(obj)

    def add_permission(self, operation: str, obj: str) -> Permission:
        """Register a permission (operation, object); idempotent."""
        self.operations.add(operation)
        self.objects.add(obj)
        permission = Permission(operation, obj)
        self.permissions.add(permission)
        return permission

    def assign_user(self, user: str, role: str) -> None:
        """AssignUser: establish UA(user, role), preserving SSD.

        With hierarchies, SSD applies to the *authorized* role set: the
        assignment is refused when the user would become authorized for
        a violating combination.
        """
        self._require_user(user)
        self._require_role(role)
        if role in self._ua[user]:
            raise AdministrationError(
                f"user {user!r} is already assigned to role {role!r}"
            )
        authorized = self.authorized_roles(user)
        gained = self.hierarchy.juniors_inclusive(role) - authorized
        candidate = authorized | gained
        violations = self.sod.ssd_violations(candidate)
        if violations:
            names = ", ".join(v.name for v in violations)
            raise SsdViolationError(
                f"assigning {role!r} to {user!r} violates SSD "
                f"constraint(s): {names}",
                constraint=violations[0].name, user=user,
                roles=violations[0].roles,
            )
        self._ua[user].add(role)

    def deassign_user(self, user: str, role: str) -> None:
        """DeassignUser: remove UA(user, role).

        Every active role the user is no longer *authorized* for is
        deactivated — not just ``role``: a junior activated under this
        assignment's authority loses its justification too ("all the
        constraints that are satisfied by a user when activating a role
        should hold TRUE until the role is deactivated", paper §1).
        """
        self._require_user(user)
        self._require_role(role)
        if role not in self._ua[user]:
            raise AdministrationError(
                f"user {user!r} is not assigned to role {role!r}"
            )
        self._ua[user].remove(role)
        self._ua_scopes.pop((user, role), None)
        for session in self.sessions.values():
            if session.user != user:
                continue
            for active in list(session.active_roles):
                if not self.is_authorized(user, active):
                    session.active_roles.discard(active)

    def grant_permission(self, role: str, operation: str, obj: str,
                         scope: str | None = None) -> None:
        """GrantPermission: establish PA(permission, role).

        With ``scope`` the grant is *scoped*: it authorizes the
        permission at ``scope`` and every descendant scope, and nowhere
        else. ``scope=None`` (or the root) is the classic flat grant.
        """
        self._require_role(role)
        permission = Permission(operation, obj)
        if permission not in self.permissions:
            raise UnknownPermissionError(permission)
        if scope is None or scope == SCOPE_ROOT:
            if permission in self._pa[role]:
                raise AdministrationError(
                    f"role {role!r} already holds permission {permission}"
                )
            self._pa[role].add(permission)
            return
        if scope not in self.scopes:
            raise UnknownScopeError(scope)
        held = self._pa_scoped.setdefault(role, {}).setdefault(scope, set())
        if permission in held:
            raise AdministrationError(
                f"role {role!r} already holds permission {permission} "
                f"in scope {scope!r}"
            )
        held.add(permission)

    def revoke_permission(self, role: str, operation: str, obj: str,
                          scope: str | None = None) -> None:
        self._require_role(role)
        permission = Permission(operation, obj)
        if scope is None or scope == SCOPE_ROOT:
            if permission not in self._pa[role]:
                raise AdministrationError(
                    f"role {role!r} does not hold permission {permission}"
                )
            self._pa[role].remove(permission)
            return
        held = self._pa_scoped.get(role, {}).get(scope, set())
        if permission not in held:
            raise AdministrationError(
                f"role {role!r} does not hold permission {permission} "
                f"in scope {scope!r}"
            )
        held.remove(permission)
        if not held:
            del self._pa_scoped[role][scope]
            if not self._pa_scoped[role]:
                del self._pa_scoped[role]

    def add_inheritance(self, senior: str, junior: str) -> None:
        """AddInheritance: senior >> junior, preserving SSD consistency.

        The edge is rejected when it would put any user's authorized
        role set in violation of an SSD constraint (hierarchical SSD,
        ANSI §6.3) — e.g. enterprise XYZ's PM inherits the SSD of PC.
        Only users *authorized for the senior side* can be affected
        (they are exactly those who acquire the junior's closure), so
        the check scans those, not the whole user population.
        """
        self.hierarchy.add_inheritance(senior, junior)
        problems = self.sod.check_consistency(
            self.authorized_roles, self.authorized_users(senior)
        )
        if problems:
            self.hierarchy.delete_inheritance(senior, junior)
            raise SsdViolationError(
                f"inheritance {senior!r} -> {junior!r} rejected: "
                + "; ".join(problems)
            )

    def delete_inheritance(self, senior: str, junior: str) -> None:
        self.hierarchy.delete_inheritance(senior, junior)

    # -- scope administration (S-A-O-C context tree) -----------------------

    def add_scope(self, name: str, parent: str | None = None) -> None:
        """Declare a scope under ``parent`` (root when None)."""
        self.scopes.add_scope(name, parent)

    def remove_scope(self, name: str) -> None:
        """Remove a leaf scope; refuses while grants or assignment
        limits still reference it (fail closed: revoke first)."""
        holders = sorted(
            role for role, scoped in self._pa_scoped.items()
            if name in scoped
        )
        if holders:
            raise AdministrationError(
                f"scope {name!r} still has grant(s) to role(s) {holders}"
            )
        limited = sorted(
            pair for pair, scopes in self._ua_scopes.items()
            if name in scopes
        )
        if limited:
            raise AdministrationError(
                f"scope {name!r} still bounds assignment(s) {limited}"
            )
        self.scopes.remove_scope(name)

    def limit_assignment_scope(self, user: str, role: str,
                               scope: str) -> None:
        """Bound UA(user, role) to ``scope``'s subtree (additive: each
        call widens the bound by one more subtree).

        This is the raw commit — callers decide whether narrowing a
        pre-existing unbounded assignment is legal (the engine refuses;
        ``build_model`` limits a pair it just created).
        """
        self._require_user(user)
        self._require_role(role)
        if role not in self._ua[user]:
            raise AdministrationError(
                f"user {user!r} is not assigned to role {role!r}"
            )
        if scope == SCOPE_ROOT:
            raise AdministrationError(
                "an assignment bounded to the root scope is just a flat "
                "assignment; omit the scope instead"
            )
        if scope not in self.scopes:
            raise UnknownScopeError(scope)
        self._ua_scopes.setdefault((user, role), set()).add(scope)

    def remove_assignment_scope(self, user: str, role: str,
                                scope: str) -> None:
        """Drop one scope bound from UA(user, role).

        Refuses to drop the *last* bound — that would silently widen a
        scoped assignment to an unbounded one. Deassign the pair
        instead (fail closed).
        """
        bounds = self._ua_scopes.get((user, role))
        if not bounds or scope not in bounds:
            raise AdministrationError(
                f"assignment ({user!r}, {role!r}) is not bounded to "
                f"scope {scope!r}"
            )
        if len(bounds) == 1:
            raise AdministrationError(
                f"scope {scope!r} is the last bound on assignment "
                f"({user!r}, {role!r}); deassign the pair instead"
            )
        bounds.remove(scope)

    def assignment_scopes(self, user: str, role: str) -> set[str]:
        """The scope bounds on UA(user, role); empty = unbounded."""
        return set(self._ua_scopes.get((user, role), ()))

    def assignment_covers(self, user: str, role: str,
                          scope: str | None) -> bool:
        """Does some assignment authorizing ``role`` for ``user`` cover
        activity at ``scope``?

        A role can be activated through a direct assignment *or* an
        assignment to a senior role, so scope bounds follow the
        hierarchy: the role is covered when any authorizing assignment
        is unbounded (flat assignments cover every scope) or carries a
        bound whose subtree contains ``scope``. A bounded assignment
        never covers the root, so scope-limited pairs never satisfy
        flat checks.
        """
        assigned = self._ua.get(user)
        if not assigned:
            return False
        if role in assigned and (user, role) not in self._ua_scopes:
            return True  # direct unbounded assignment: the fast path
        authorizing = assigned & self.hierarchy.seniors_inclusive(role)
        if not authorizing:
            return False
        flat = scope is None or scope == SCOPE_ROOT
        ancestors: tuple[str, ...] | None = None
        for holder in authorizing:
            bounds = self._ua_scopes.get((user, holder))
            if bounds is None:
                return True
            if flat:
                continue
            if ancestors is None:
                try:
                    ancestors = self.scopes.ancestors_inclusive(scope)
                except UnknownScopeError:
                    return False
            if any(anchor in bounds for anchor in ancestors):
                return True
        return False

    # -- SoD set administration (delegates, with role validation) --------------

    def create_ssd_set(self, name: str, roles: Iterable[str],
                       cardinality: int) -> None:
        """CreateSsdSet: the new constraint must hold for current state."""
        roles = list(roles)
        for role in roles:
            self._require_role(role)
        constraint = self.sod.create_ssd(name, roles, cardinality)
        problems = [
            user for user in self.users
            if constraint.violated_by(self.authorized_roles(user))
        ]
        if problems:
            self.sod.delete_ssd(name)
            raise SsdViolationError(
                f"SSD set {name!r} rejected: already violated by "
                f"user(s) {sorted(problems)}", constraint=name,
            )

    def delete_ssd_set(self, name: str) -> None:
        self.sod.delete_ssd(name)

    def create_dsd_set(self, name: str, roles: Iterable[str],
                       cardinality: int) -> None:
        roles = list(roles)
        for role in roles:
            self._require_role(role)
        self.sod.create_dsd(name, roles, cardinality)

    def delete_dsd_set(self, name: str) -> None:
        self.sod.delete_dsd(name)

    # ======================================================================
    # supporting system functions (unchecked state transitions)
    # ======================================================================
    # The enforcement engine — generated OWTE rules or the direct baseline
    # — performs the W-clause checks and then commits via these.

    def create_session_record(self, session_id: str, user: str) -> Session:
        self._require_user(user)
        if session_id in self.sessions:
            raise DuplicateEntityError(
                f"session {session_id!r} already exists"
            )
        session = Session(session_id, user)
        self.sessions[session_id] = session
        return session

    def delete_session_record(self, session_id: str) -> None:
        self._require_session(session_id)
        del self.sessions[session_id]

    def add_session_role_record(self, session_id: str, role: str) -> None:
        """Commit a role activation (paper: ``addSessionRoleR1``)."""
        session = self._require_session(session_id)
        self._require_role(role)
        session.active_roles.add(role)

    def drop_session_role_record(self, session_id: str, role: str) -> None:
        """Commit a role deactivation (paper: ``removeSessionRoleR1``)."""
        session = self._require_session(session_id)
        session.active_roles.discard(role)

    def add_assignment_record(self, user: str, role: str) -> None:
        """Commit a user-role assignment *without* re-validating SSD.

        The generated administrative rule's W clause has already checked
        SSD (``ssd_allows_assignment``); this is its THEN commit.
        """
        self._require_user(user)
        self._require_role(role)
        self._ua[user].add(role)

    def remove_assignment_record(self, user: str, role: str) -> None:
        """Commit a deassignment: UA removal only.

        Session cleanup is the enforcement engine's job — it must
        deactivate not just this role but every active role the user is
        *no longer authorized for* (activating a junior under a senior
        assignment), and it must do so through its own deactivation
        path so cascades (anchor cleanup, events, audit) fire.
        """
        self._require_user(user)
        self._ua[user].discard(role)
        self._ua_scopes.pop((user, role), None)

    def ssd_allows_assignment(self, user: str, role: str) -> bool:
        """Predicate form of the AssignUser SSD check (rule W clause)."""
        if user not in self.users or role not in self.roles:
            return False
        authorized = self.authorized_roles(user)
        candidate = authorized | self.hierarchy.juniors_inclusive(role)
        return not self.sod.ssd_violations(candidate)

    # ======================================================================
    # review functions
    # ======================================================================

    def assigned_users(self, role: str) -> set[str]:
        """AssignedUsers: users with a direct UA to ``role``."""
        self._require_role(role)
        return {u for u, roles in self._ua.items() if role in roles}

    def assigned_roles(self, user: str) -> set[str]:
        """AssignedRoles: roles with a direct UA from ``user``."""
        self._require_user(user)
        return set(self._ua[user])

    def authorized_users(self, role: str) -> set[str]:
        """AuthorizedUsers: users assigned to ``role`` or any senior of it.

        "Junior roles acquire the user membership of their seniors."
        """
        self._require_role(role)
        roles = self.hierarchy.seniors_inclusive(role)
        return {
            u for u, assigned in self._ua.items()
            if assigned.intersection(roles)
        }

    def authorized_roles(self, user: str) -> set[str]:
        """AuthorizedRoles: assigned roles plus everything junior to them."""
        self._require_user(user)
        result: set[str] = set()
        for role in self._ua[user]:
            result |= self.hierarchy.juniors_inclusive(role)
        return result

    def role_permissions(self, role: str) -> set[Permission]:
        """RolePermissions: direct PA plus permissions of all juniors.

        "Senior roles acquire the permissions of their juniors."
        """
        self._require_role(role)
        result: set[Permission] = set()
        for member in self.hierarchy.juniors_inclusive(role):
            result |= self._pa.get(member, set())
        return result

    def direct_role_permissions(self, role: str) -> set[Permission]:
        self._require_role(role)
        return set(self._pa[role])

    def user_permissions(self, user: str) -> set[Permission]:
        """UserPermissions: union over the user's authorized roles."""
        result: set[Permission] = set()
        for role in self.authorized_roles(user):
            result |= self._pa.get(role, set())
        return result

    def session_roles(self, session_id: str) -> set[str]:
        """SessionRoles (paper: ``getSessionRoles``)."""
        return set(self._require_session(session_id).active_roles)

    def session_user(self, session_id: str) -> str:
        return self._require_session(session_id).user

    def session_permissions(self, session_id: str) -> set[Permission]:
        """SessionPermissions: union over the session's active roles
        (each active role contributes its hierarchical permissions)."""
        session = self._require_session(session_id)
        result: set[Permission] = set()
        for role in session.active_roles:
            result |= self.role_permissions(role)
        return result

    def user_sessions(self, user: str) -> set[str]:
        """Sessions owned by the user (paper: ``checkUserSessions``)."""
        self._require_user(user)
        return {
            sid for sid, s in self.sessions.items() if s.user == user
        }

    def role_operations_on_object(self, role: str, obj: str) -> set[str]:
        """RoleOperationsOnObject (advanced review, ANSI §6.3.16)."""
        return {
            p.operation for p in self.role_permissions(role) if p.obj == obj
        }

    def user_operations_on_object(self, user: str, obj: str) -> set[str]:
        """UserOperationsOnObject (advanced review, ANSI §6.3.17)."""
        return {
            p.operation for p in self.user_permissions(user) if p.obj == obj
        }

    def roles_with_permission(self, operation: str, obj: str) -> set[str]:
        """PermissionRoles (advanced review): every role holding the
        permission, directly or through a junior."""
        permission = Permission(operation, obj)
        holders = {
            role for role, perms in self._pa.items()
            if permission in perms
        }
        result = set(holders)
        for role in holders:
            result |= self.hierarchy.seniors(role)
        return result

    def users_with_permission(self, operation: str, obj: str) -> set[str]:
        """PermissionUsers (advanced review): every user authorized for
        some role that holds the permission."""
        users: set[str] = set()
        for role in self.roles_with_permission(operation, obj):
            users |= self.authorized_users(role)
        return users

    def active_user_count(self, role: str) -> int:
        """How many *distinct users* currently have ``role`` active
        (paper Rule 4's ``CardinalityR1`` counter)."""
        self._require_role(role)
        return len({
            s.user for s in self.sessions.values()
            if role in s.active_roles
        })

    def active_role_count(self, user: str) -> int:
        """How many distinct roles the user has active across sessions."""
        self._require_user(user)
        roles: set[str] = set()
        for session in self.sessions.values():
            if session.user == user:
                roles |= session.active_roles
        return len(roles)

    # ======================================================================
    # predicates used by generated rule conditions
    # ======================================================================

    def is_user(self, user: str) -> bool:
        """Paper condition ``user IN userL``."""
        return user in self.users

    def is_session(self, session_id: str) -> bool:
        """Paper condition ``sessionId IN sessionL``."""
        return session_id in self.sessions

    def owns_session(self, user: str, session_id: str) -> bool:
        """Paper condition ``sessionId IN checkUserSessions(user)``."""
        session = self.sessions.get(session_id)
        return session is not None and session.user == user

    def is_assigned(self, user: str, role: str) -> bool:
        """Paper condition ``checkAssignedR1(user)`` (core RBAC)."""
        return role in self._ua.get(user, set())

    def is_authorized(self, user: str, role: str) -> bool:
        """Paper condition ``checkAuthorizationR1(user)`` (hierarchies):
        the user is assigned to the role *or any of its senior roles*."""
        assigned = self._ua.get(user, set())
        if role in assigned:
            return True
        return bool(assigned & self.hierarchy.seniors(role))

    def is_active_in_session(self, session_id: str, role: str) -> bool:
        """Paper condition ``R1 IN checkSessionRoles``."""
        session = self.sessions.get(session_id)
        return session is not None and role in session.active_roles

    def dsd_allows_activation(self, session_id: str, role: str) -> bool:
        """Paper condition ``checkDynamicSoDSet(user, R1)``."""
        session = self.sessions.get(session_id)
        if session is None:
            return False
        return self.sod.dsd_ok(session.active_roles, role)

    def role_has_permission(self, role: str, operation: str, obj: str,
                            scope: str | None = None) -> bool:
        """Paper condition ``checkPermissions(operation, object, role)``
        — hierarchical: the role or any of its juniors holds it.

        With ``scope`` (S-A-O-C normalization) the permission may be
        held flat (covers everything) or via a scoped grant at the
        scope or any of its ancestors. Unknown scopes fail closed.
        """
        if scope is not None and scope != SCOPE_ROOT \
                and scope not in self.scopes:
            return False
        if Permission(operation, obj) in self.role_permissions(role):
            return True
        if scope is None or scope == SCOPE_ROOT or not self._pa_scoped:
            return False
        permission = Permission(operation, obj)
        ancestors = self.scopes.ancestors_inclusive(scope)
        for member in self.hierarchy.juniors_inclusive(role):
            scoped = self._pa_scoped.get(member)
            if not scoped:
                continue
            for anchor in ancestors:
                if permission in scoped.get(anchor, ()):
                    return True
        return False

    def scoped_role_permissions(self, role: str,
                                scope: str) -> set[Permission]:
        """Permissions the role (with juniors) holds *specifically via
        scoped grants* effective at ``scope`` — flat PA excluded."""
        self._require_role(role)
        ancestors = self.scopes.ancestors_inclusive(scope)
        result: set[Permission] = set()
        for member in self.hierarchy.juniors_inclusive(role):
            scoped = self._pa_scoped.get(member)
            if not scoped:
                continue
            for anchor in ancestors:
                result |= scoped.get(anchor, set())
        return result

    def session_can_perform(self, session_id: str, operation: str,
                            obj: str, scope: str | None = None) -> bool:
        """The For-ANY loop of paper Rule 5: at least one active role of
        the session holds the permission (and, scoped, the assignment
        behind the role covers the requested scope)."""
        session = self.sessions.get(session_id)
        if session is None:
            return False
        if scope is None or scope == SCOPE_ROOT:
            if not self._ua_scopes:
                return any(
                    self.role_has_permission(role, operation, obj)
                    for role in session.active_roles
                )
            return any(
                self.assignment_covers(session.user, role, None)
                and self.role_has_permission(role, operation, obj)
                for role in session.active_roles
            )
        return any(
            self.assignment_covers(session.user, role, scope)
            and self.role_has_permission(role, operation, obj, scope)
            for role in session.active_roles
        )

    def is_role_enabled(self, role: str) -> bool:
        """GTRBAC role status."""
        self._require_role(role)
        return self.roles[role].enabled

    def set_role_enabled(self, role: str, enabled: bool) -> None:
        """GTRBAC enable/disable commit. Disabling deactivates the role
        in every session (constraints must hold until deactivation,
        paper §1)."""
        self._require_role(role)
        self.roles[role].enabled = enabled
        if not enabled:
            for session in self.sessions.values():
                session.active_roles.discard(role)

    # ======================================================================
    # internals
    # ======================================================================

    def _require_user(self, name: str) -> User:
        try:
            return self.users[name]
        except KeyError:
            raise UnknownUserError(name) from None

    def _require_role(self, name: str) -> Role:
        try:
            return self.roles[name]
        except KeyError:
            raise UnknownRoleError(name) from None

    def _require_session(self, session_id: str) -> Session:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise UnknownSessionError(session_id) from None

    # -- inspection ---------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "users": len(self.users),
            "roles": len(self.roles),
            "permissions": len(self.permissions),
            "sessions": len(self.sessions),
            "ua_pairs": sum(len(r) for r in self._ua.values()),
            "pa_pairs": sum(len(p) for p in self._pa.values()),
            "hierarchy_edges": len(self.hierarchy.edges()),
            "closure_invalidations": self.hierarchy.invalidations,
            "ssd_sets": sum(1 for _ in self.sod.ssd_sets()),
            "dsd_sets": sum(1 for _ in self.sod.dsd_sets()),
            "scopes": len(self.scopes),
            "scoped_pa_pairs": sum(
                len(perms)
                for scoped in self._pa_scoped.values()
                for perms in scoped.values()
            ),
            "scoped_assignments": len(self._ua_scopes),
        }
