"""NIST/ANSI RBAC reference model (INCITS 359-2004).

The four model components of the standard (paper §2):

1. **Core RBAC** — users, roles, permissions (operation, object pairs),
   sessions, user-role assignment (UA) and permission-role assignment
   (PA): :mod:`repro.rbac.model`.
2. **Hierarchical RBAC** — a partial order over roles where senior roles
   acquire the permissions of their juniors and junior roles acquire the
   user membership of their seniors: :mod:`repro.rbac.hierarchy`.
3. **Static SoD** — constraints on user-role *assignment*:
   :mod:`repro.rbac.sod`.
4. **Dynamic SoD** — constraints on simultaneous *activation* within a
   session: :mod:`repro.rbac.sod`.

:class:`~repro.rbac.model.RBACModel` is the single authoritative state
shared by both enforcement engines: the active (OWTE-rule) engine mutates
it from generated rule actions, and the direct baseline engine mutates it
from inline checks.  Keeping one model is what lets the differential
property tests assert the two engines always agree.
"""

from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import Permission, RBACModel, Role, Session, User
from repro.rbac.sod import DsdConstraint, SodRegistry, SsdConstraint

__all__ = [
    "DsdConstraint",
    "Permission",
    "RBACModel",
    "Role",
    "RoleHierarchy",
    "Session",
    "SodRegistry",
    "SsdConstraint",
    "User",
]
