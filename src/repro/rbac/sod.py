"""Separation-of-duty constraints: static (SSD) and dynamic (DSD).

Static SoD "prevent[s] ... conflicts between roles by placing constraints
on the assignment of users to roles" (paper §2): a named constraint is a
pair ``(role_set, n)`` with ``2 <= n <= |role_set|`` meaning *no user may
be assigned to n or more roles from the set*.  With hierarchies, the
check applies to the user's *authorized* roles (assignment plus
inherited membership), exactly as the standard's hierarchical SSD
requires.

Dynamic SoD places the same-shaped constraint on the roles *activated
within one session*: "a user can be assigned to M mutually exclusive
roles, but cannot be active in N or more mutually exclusive roles at the
same time" (paper §2).

:class:`SodRegistry` stores both families and answers the two questions
the enforcement rules ask:

* would assigning role R to user U violate any SSD constraint?
* would activating role R in session S violate any DSD constraint?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import SoDError


@dataclass(frozen=True)
class SsdConstraint:
    """A named static SoD constraint: ``(roles, cardinality)``.

    A user is in violation when they are authorized for ``cardinality``
    or more roles from ``roles``.
    """

    name: str
    roles: frozenset[str]
    cardinality: int

    def __post_init__(self) -> None:
        if self.cardinality < 2:
            raise SoDError(
                f"SSD {self.name!r}: cardinality must be >= 2, "
                f"got {self.cardinality}"
            )
        if self.cardinality > len(self.roles):
            raise SoDError(
                f"SSD {self.name!r}: cardinality {self.cardinality} exceeds "
                f"role-set size {len(self.roles)}"
            )

    def violated_by(self, authorized_roles: Iterable[str]) -> bool:
        """Is the constraint violated by this authorized-role set?"""
        overlap = self.roles.intersection(authorized_roles)
        return len(overlap) >= self.cardinality


@dataclass(frozen=True)
class DsdConstraint:
    """A named dynamic SoD constraint: same shape, applied per session."""

    name: str
    roles: frozenset[str]
    cardinality: int

    def __post_init__(self) -> None:
        if self.cardinality < 2:
            raise SoDError(
                f"DSD {self.name!r}: cardinality must be >= 2, "
                f"got {self.cardinality}"
            )
        if self.cardinality > len(self.roles):
            raise SoDError(
                f"DSD {self.name!r}: cardinality {self.cardinality} exceeds "
                f"role-set size {len(self.roles)}"
            )

    def violated_by(self, active_roles: Iterable[str]) -> bool:
        overlap = self.roles.intersection(active_roles)
        return len(overlap) >= self.cardinality


class SodRegistry:
    """Holds every SSD/DSD constraint and evaluates them.

    An index from role name to the constraints mentioning it keeps the
    per-check cost proportional to the constraints that can actually be
    affected (measured in benchmark B5).
    """

    def __init__(self) -> None:
        self._ssd: dict[str, SsdConstraint] = {}
        self._dsd: dict[str, DsdConstraint] = {}
        self._ssd_by_role: dict[str, set[str]] = {}
        self._dsd_by_role: dict[str, set[str]] = {}

    # -- SSD administration ------------------------------------------------------

    def create_ssd(self, name: str, roles: Iterable[str],
                   cardinality: int) -> SsdConstraint:
        if name in self._ssd:
            raise SoDError(f"SSD set {name!r} already exists")
        constraint = SsdConstraint(name, frozenset(roles), cardinality)
        self._ssd[name] = constraint
        for role in constraint.roles:
            self._ssd_by_role.setdefault(role, set()).add(name)
        return constraint

    def delete_ssd(self, name: str) -> None:
        constraint = self._ssd.pop(name, None)
        if constraint is None:
            raise SoDError(f"no SSD set named {name!r}")
        for role in constraint.roles:
            self._ssd_by_role[role].discard(name)

    def replace_ssd(self, name: str, roles: Iterable[str],
                    cardinality: int) -> SsdConstraint:
        """Update a set's membership/cardinality in one step (ANSI
        SetSsdSetCardinality / AddSsdRoleMember combined)."""
        self.delete_ssd(name)
        return self.create_ssd(name, roles, cardinality)

    def ssd_sets(self) -> Iterator[SsdConstraint]:
        return iter(self._ssd.values())

    def ssd_named(self, name: str) -> SsdConstraint:
        try:
            return self._ssd[name]
        except KeyError:
            raise SoDError(f"no SSD set named {name!r}") from None

    # -- DSD administration --------------------------------------------------------

    def create_dsd(self, name: str, roles: Iterable[str],
                   cardinality: int) -> DsdConstraint:
        if name in self._dsd:
            raise SoDError(f"DSD set {name!r} already exists")
        constraint = DsdConstraint(name, frozenset(roles), cardinality)
        self._dsd[name] = constraint
        for role in constraint.roles:
            self._dsd_by_role.setdefault(role, set()).add(name)
        return constraint

    def delete_dsd(self, name: str) -> None:
        constraint = self._dsd.pop(name, None)
        if constraint is None:
            raise SoDError(f"no DSD set named {name!r}")
        for role in constraint.roles:
            self._dsd_by_role[role].discard(name)

    def dsd_sets(self) -> Iterator[DsdConstraint]:
        return iter(self._dsd.values())

    def dsd_named(self, name: str) -> DsdConstraint:
        try:
            return self._dsd[name]
        except KeyError:
            raise SoDError(f"no DSD set named {name!r}") from None

    def remove_role(self, role: str) -> None:
        """Drop a deleted role from every constraint (shrinking sets).

        A constraint whose set would fall below its cardinality is
        deleted outright — it can no longer be violated.
        """
        for name in list(self._ssd_by_role.get(role, ())):
            old = self._ssd[name]
            remaining = old.roles - {role}
            self.delete_ssd(name)
            if len(remaining) >= old.cardinality:
                self.create_ssd(name, remaining, old.cardinality)
        for name in list(self._dsd_by_role.get(role, ())):
            old = self._dsd[name]
            remaining = old.roles - {role}
            self.delete_dsd(name)
            if len(remaining) >= old.cardinality:
                self.create_dsd(name, remaining, old.cardinality)

    # -- checks ----------------------------------------------------------------------

    def ssd_ok(self, authorized_roles: set[str], adding: str) -> bool:
        """May a user authorized for ``authorized_roles`` gain ``adding``?

        Only constraints mentioning ``adding`` (or already straddled by
        the user) can newly fire; the role index narrows the scan.
        """
        candidate = authorized_roles | {adding}
        names = self._ssd_by_role.get(adding, ())
        return all(
            not self._ssd[name].violated_by(candidate) for name in names
        )

    def ssd_violations(self, authorized_roles: set[str]) -> list[SsdConstraint]:
        """Every SSD constraint violated by this authorized-role set."""
        names: set[str] = set()
        for role in authorized_roles:
            names.update(self._ssd_by_role.get(role, ()))
        return [
            self._ssd[name] for name in sorted(names)
            if self._ssd[name].violated_by(authorized_roles)
        ]

    def dsd_ok(self, active_roles: set[str], adding: str) -> bool:
        """May a session with ``active_roles`` also activate ``adding``?"""
        candidate = active_roles | {adding}
        names = self._dsd_by_role.get(adding, ())
        return all(
            not self._dsd[name].violated_by(candidate) for name in names
        )

    def dsd_violations(self, active_roles: set[str]) -> list[DsdConstraint]:
        names: set[str] = set()
        for role in active_roles:
            names.update(self._dsd_by_role.get(role, ()))
        return [
            self._dsd[name] for name in sorted(names)
            if self._dsd[name].violated_by(active_roles)
        ]

    def check_consistency(
        self, authorized_roles_of: Callable[[str], set[str]],
        users: Iterable[str],
    ) -> list[str]:
        """Audit: report every (user, SSD set) violation in the model.

        Used after hierarchy edits, which can retroactively put users in
        violation (the standard requires AddInheritance to preserve SSD).
        """
        problems = []
        for user in users:
            for constraint in self.ssd_violations(authorized_roles_of(user)):
                problems.append(
                    f"user {user!r} violates SSD {constraint.name!r} "
                    f"(>= {constraint.cardinality} of "
                    f"{sorted(constraint.roles)})"
                )
        return problems
