"""First-class scopes: the C of the normalized S-A-O-C check.

The paper's model is flat — every access decision is a
``(user, operation, object)`` triple.  Production multi-tenant
deployments (openedx-authz ADR 0002, the healthcare RBAC study in
PAPERS.md) need grants and checks *scoped*: an org-wide grant covers
every collection and resource under the org, a collection-wide one
covers its resources, and a resource-level one covers that resource
alone.  This module provides the scope tree that normalizes every
check to Subject-Action-Object-Context:

* a single rooted tree (``platform ▸ org ▸ collection ▸ resource``)
  whose root :data:`SCOPE_ROOT` is always present — the *flat* scope.
  Every pre-existing unscoped call is sugar for a root-scope call,
  which is what keeps the flat API byte-compatible;
* reflexive ancestor/descendant closures, memoized per scope the same
  way :class:`~repro.rbac.hierarchy.RoleHierarchy` memoizes role
  closures, with targeted invalidation and a monotone ``version``
  counter the :class:`~repro.kernel.PolicyKernel` staleness triple
  reads;
* deterministic iteration (sorted names) so interning and rendered
  config sets are stable across runs.

Containment semantics (mirrors the role hierarchy's
seniors-inherit-juniors direction): a grant at scope S authorizes the
permission at S **and every descendant of S**; a check at scope T is
therefore satisfied by a grant at any scope in
``ancestors_inclusive(T)``.  Root grants (= flat grants) cover every
scope; a grant at a leaf covers only that leaf.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import AdministrationError, DuplicateEntityError

__all__ = ["SCOPE_ROOT", "ScopeTree", "UnknownScopeError"]

#: the root scope: the platform-wide context every flat (unscoped)
#: call implicitly runs in.  ``scope=None`` and ``scope=SCOPE_ROOT``
#: are interchangeable everywhere.
SCOPE_ROOT = "/"


class UnknownScopeError(AdministrationError):
    """A scope name the tree does not contain."""

    def __init__(self, scope: str) -> None:
        super().__init__(f"unknown scope {scope!r}")
        self.scope = scope


class ScopeTree:
    """A rooted tree of named scopes with memoized closures.

    Mutation is administration-time only (``add_scope`` /
    ``remove_scope``); decision-time reads (``ancestors_inclusive``)
    hit the per-scope memo.  ``version`` advances on every mutation so
    compiled artifacts can detect staleness without hashing the tree.
    """

    __slots__ = ("_parent", "_children", "_anc_cache", "version",
                 "invalidations")

    def __init__(self) -> None:
        #: scope -> parent scope (root maps to None)
        self._parent: dict[str, str | None] = {SCOPE_ROOT: None}
        #: scope -> immediate child set
        self._children: dict[str, set[str]] = {SCOPE_ROOT: set()}
        #: scope -> root-terminated reflexive ancestor chain (self first)
        self._anc_cache: dict[str, tuple[str, ...]] = {}
        #: bumped on every structural mutation (kernel staleness axis)
        self.version = 0
        #: memo drops caused by mutation (stats surface)
        self.invalidations = 0

    # -- administration ----------------------------------------------------

    def add_scope(self, name: str, parent: str | None = None) -> None:
        """Add ``name`` under ``parent`` (root when ``parent`` is None).

        Parents must already exist — config renderings therefore list
        parents before children, which keeps round-trips stable.
        """
        if not name or not isinstance(name, str):
            raise AdministrationError("scope name must be a non-empty "
                                      "string")
        if name in self._parent:
            raise DuplicateEntityError(f"scope {name!r} already exists")
        parent = SCOPE_ROOT if parent is None else parent
        if parent not in self._parent:
            raise UnknownScopeError(parent)
        self._parent[name] = parent
        self._children[name] = set()
        self._children[parent].add(name)
        self.version += 1

    def remove_scope(self, name: str) -> None:
        """Remove a leaf scope (the root and interior nodes refuse)."""
        if name == SCOPE_ROOT:
            raise AdministrationError("the root scope cannot be removed")
        if name not in self._parent:
            raise UnknownScopeError(name)
        if self._children[name]:
            raise AdministrationError(
                f"scope {name!r} still has child scope(s): "
                f"{sorted(self._children[name])}")
        parent = self._parent.pop(name)
        del self._children[name]
        if parent is not None:
            self._children[parent].discard(name)
        if self._anc_cache.pop(name, None) is not None:
            self.invalidations += 1
        self.version += 1

    # -- queries -----------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._parent))

    def parent_of(self, name: str) -> str | None:
        try:
            return self._parent[name]
        except KeyError:
            raise UnknownScopeError(name) from None

    def children_of(self, name: str) -> set[str]:
        try:
            return set(self._children[name])
        except KeyError:
            raise UnknownScopeError(name) from None

    def ancestors_inclusive(self, name: str) -> tuple[str, ...]:
        """The reflexive ancestor chain, ``name`` first, root last.

        A check at ``name`` is satisfied by a grant at any scope in
        this chain — the decision-time hot read, memoized.
        """
        cached = self._anc_cache.get(name)
        if cached is not None:
            return cached
        if name not in self._parent:
            raise UnknownScopeError(name)
        chain = [name]
        node = self._parent[name]
        while node is not None:
            chain.append(node)
            node = self._parent[node]
        result = tuple(chain)
        self._anc_cache[name] = result
        return result

    def descendants_inclusive(self, name: str) -> set[str]:
        """The reflexive subtree under ``name`` — everything a grant at
        ``name`` covers."""
        if name not in self._parent:
            raise UnknownScopeError(name)
        result = {name}
        frontier = list(self._children[name])
        while frontier:
            node = frontier.pop()
            if node in result:
                continue
            result.add(node)
            frontier.extend(self._children[node])
        return result

    def contains(self, ancestor: str, scope: str) -> bool:
        """Is ``scope`` within ``ancestor``'s subtree (reflexive)?"""
        return ancestor in self.ancestors_inclusive(scope)

    def depth_of(self, name: str) -> int:
        """Edges from ``name`` up to the root (root is depth 0)."""
        return len(self.ancestors_inclusive(name)) - 1

    def edges(self) -> list[tuple[str, str]]:
        """Sorted (parent, child) edge list (excludes the root's None)."""
        return sorted(
            (parent, child)
            for child, parent in self._parent.items()
            if parent is not None
        )

    def stats(self) -> dict[str, int]:
        depth = max((self.depth_of(s) for s in self._parent), default=0)
        return {
            "scopes": len(self._parent),
            "max_depth": depth,
            "version": self.version,
            "closure_memo": len(self._anc_cache),
            "invalidations": self.invalidations,
        }
