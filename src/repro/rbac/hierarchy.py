"""Role hierarchies: a partial order of seniority between roles.

"A hierarchy is mathematically a partial order defining a seniority
relation between roles, whereby senior roles acquire the permissions of
their juniors, and junior roles acquire the user membership of their
seniors" (ANSI INCITS 359-2004, quoted in paper §2).

The hierarchy stores the *immediate* inheritance relation and derives the
transitive closure on demand.  Both **general** hierarchies (arbitrary
partial orders) and **limited** hierarchies (each role restricted to at
most one immediate descendant, i.e. inverted trees) are supported; the
mode is chosen at construction.

Terminology used throughout (matching the standard):

* ``senior >> junior`` — the senior *inherits* the junior;
* seniors of R — roles above R (that acquire R's permissions);
* juniors of R — roles below R (whose permissions R acquires).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.errors import (
    HierarchyCycleError,
    HierarchyError,
    LimitedHierarchyError,
)


class RoleHierarchy:
    """Mutable partial order over role names.

    Roles are added implicitly by :meth:`add_role` (the model calls it)
    and related with :meth:`add_inheritance` / :meth:`delete_inheritance`.
    Transitive queries (:meth:`seniors`, :meth:`juniors`) return the
    proper closure — the role itself is excluded; use the ``*_inclusive``
    variants when the reflexive closure is wanted (the standard's
    authorized-users / authorized-permissions definitions are reflexive).
    """

    def __init__(self, limited: bool = False) -> None:
        self.limited = limited
        #: immediate seniors: _up[r] = roles that directly inherit r
        self._up: dict[str, set[str]] = {}
        #: immediate juniors: _down[r] = roles r directly inherits
        self._down: dict[str, set[str]] = {}
        #: memoized transitive closures, invalidated per affected role
        #: on mutation; key is (role, direction), direction "up"/"down"
        self._closure_cache: dict[tuple[str, str], frozenset[str]] = {}
        #: cache entries dropped by targeted invalidation, cumulative —
        #: the obs hub mirrors this into a counter at collect time so
        #: closure-cache churn under policy mutation is visible
        self.invalidations = 0

    def _invalidate_edge(self, senior: str, junior: str) -> None:
        """Drop only the closures an edge (senior, junior) can change.

        An edge between them affects the *up*-closure of ``junior`` and
        everything below it, and the *down*-closure of ``senior`` and
        everything above it — closures of unrelated subgraphs survive.
        Correct for both insertion and removal: the affected sets are
        computed against whichever adjacency state contains the edge's
        reachability superset (the caller's ordering does not matter
        because ``_descend`` from the junior/senior side covers every
        role whose closure could mention the edge in either state).
        """
        cache = self._closure_cache
        dropped = 0
        for role in self._descend(junior, self._down) | {junior}:
            if cache.pop((role, "up"), None) is not None:
                dropped += 1
        for role in self._descend(senior, self._up) | {senior}:
            if cache.pop((role, "down"), None) is not None:
                dropped += 1
        self.invalidations += dropped

    # -- membership ------------------------------------------------------------

    def add_role(self, role: str) -> None:
        self._up.setdefault(role, set())
        self._down.setdefault(role, set())

    def remove_role(self, role: str) -> None:
        """Remove a role and every edge touching it."""
        seniors = self._up.get(role, set())
        juniors = self._down.get(role, set())
        # invalidate while the adjacency still holds the edges, so the
        # affected sets cover everything that could reach through role
        for senior in seniors:
            self._invalidate_edge(senior, role)
        for junior in juniors:
            self._invalidate_edge(role, junior)
        dropped = 0
        for direction in ("up", "down"):
            if self._closure_cache.pop((role, direction), None) is not None:
                dropped += 1
        self.invalidations += dropped
        for senior in self._up.pop(role, set()):
            self._down[senior].discard(role)
        for junior in self._down.pop(role, set()):
            self._up[junior].discard(role)

    def __contains__(self, role: str) -> bool:
        return role in self._up

    def roles(self) -> Iterator[str]:
        return iter(self._up)

    # -- edges -------------------------------------------------------------------

    def add_inheritance(self, senior: str, junior: str) -> None:
        """Establish ``senior >> junior`` (AddInheritance in the standard).

        Rejects self-loops, edges that would create a cycle (the relation
        must stay a partial order), duplicate edges, and — in limited
        mode — a second immediate descendant for ``senior``.
        """
        self._require(senior)
        self._require(junior)
        if senior == junior:
            raise HierarchyCycleError(senior, junior)
        if junior in self._down[senior]:
            raise HierarchyError(
                f"inheritance {senior!r} -> {junior!r} already exists"
            )
        # A cycle appears iff the would-be junior is already senior to us.
        if senior in self._descend(junior, self._down):
            raise HierarchyCycleError(senior, junior)
        if self.limited and self._down[senior]:
            existing = next(iter(self._down[senior]))
            raise LimitedHierarchyError(
                f"limited hierarchy: {senior!r} already has immediate "
                f"descendant {existing!r}"
            )
        self._down[senior].add(junior)
        self._up[junior].add(senior)
        self._invalidate_edge(senior, junior)

    def delete_inheritance(self, senior: str, junior: str) -> None:
        """Remove the *immediate* edge ``senior >> junior``."""
        self._require(senior)
        self._require(junior)
        if junior not in self._down[senior]:
            raise HierarchyError(
                f"no immediate inheritance {senior!r} -> {junior!r}"
            )
        self._down[senior].remove(junior)
        self._up[junior].remove(senior)
        self._invalidate_edge(senior, junior)

    def immediate_seniors(self, role: str) -> set[str]:
        self._require(role)
        return set(self._up[role])

    def immediate_juniors(self, role: str) -> set[str]:
        self._require(role)
        return set(self._down[role])

    # -- closures ------------------------------------------------------------------

    def seniors(self, role: str) -> set[str]:
        """All roles strictly senior to ``role`` (transitive, memoized)."""
        self._require(role)
        key = (role, "up")
        cached = self._closure_cache.get(key)
        if cached is None:
            cached = frozenset(self._descend(role, self._up))
            self._closure_cache[key] = cached
        return set(cached)

    def juniors(self, role: str) -> set[str]:
        """All roles strictly junior to ``role`` (transitive, memoized)."""
        self._require(role)
        key = (role, "down")
        cached = self._closure_cache.get(key)
        if cached is None:
            cached = frozenset(self._descend(role, self._down))
            self._closure_cache[key] = cached
        return set(cached)

    def seniors_inclusive(self, role: str) -> set[str]:
        result = self.seniors(role)
        result.add(role)
        return result

    def juniors_inclusive(self, role: str) -> set[str]:
        result = self.juniors(role)
        result.add(role)
        return result

    def is_senior(self, senior: str, junior: str) -> bool:
        """Does ``senior >> junior`` hold in the transitive relation?"""
        if senior not in self._up:
            return False
        return junior in self.juniors(senior)

    def edges(self) -> list[tuple[str, str]]:
        """Every immediate (senior, junior) edge, sorted for determinism."""
        return sorted(
            (senior, junior)
            for senior, juniors in self._down.items()
            for junior in juniors
        )

    # -- internals -------------------------------------------------------------------

    def _require(self, role: str) -> None:
        if role not in self._up:
            raise HierarchyError(f"role {role!r} not in hierarchy")

    @staticmethod
    def _descend(start: str, adjacency: dict[str, set[str]]) -> set[str]:
        """BFS transitive closure from ``start`` along ``adjacency``."""
        seen: set[str] = set()
        queue = deque(adjacency.get(start, ()))
        while queue:
            node = queue.popleft()
            if node in seen:
                continue
            seen.add(node)
            queue.extend(adjacency.get(node, ()))
        return seen
