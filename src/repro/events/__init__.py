"""Sentinel+ event substrate: primitive events, Snoop composite operators,
parameter (consumption) contexts and the event detector.

This package reproduces the active-capability layer the paper builds on
(Sections 3 and 5): an event detector that receives primitive event
notifications from reactive objects, composes them with the Snoop/SnoopIB
operator algebra (AND, OR, NOT, SEQUENCE, PLUS, APERIODIC, PERIODIC and
their cumulative variants) and signals subscribed OWTE rules.

Typical usage::

    from repro.clock import VirtualClock, TimerService
    from repro.events import EventDetector, ConsumptionMode

    clock = VirtualClock()
    detector = EventDetector(TimerService(clock))
    detector.define_primitive("E1")
    detector.define_primitive("E2")
    detector.define_sequence("S", "E1", "E2")
    detector.subscribe("S", lambda occ: print("detected", occ))
    detector.raise_event("E1", user="bob")
    detector.raise_event("E2", file="patient.dat")   # S fires here
"""

from repro.events.calendar import CalendarExpression
from repro.events.consumption import ConsumptionMode
from repro.events.detector import EventDetector
from repro.events.occurrence import Occurrence
from repro.events.reactive import ReactiveObject, primitive_event

__all__ = [
    "CalendarExpression",
    "ConsumptionMode",
    "EventDetector",
    "Occurrence",
    "ReactiveObject",
    "primitive_event",
]
