"""Calendar expressions: the paper's ``24h:mi:ss/mm/dd/yyyy`` notation.

Rule 6 (footnote 10) writes *10 a.m. every day* as ``[10:00:00/*/*/*]``
with the general form ``24h:mi:ss/mm/dd/yyyy``; a ``*`` in a field matches
every value of that field.  A :class:`CalendarExpression` parses that
notation, tests whether a given instant matches, and — crucially for the
timer-driven detector — computes the *next* matching instant after a given
time so absolute temporal events can be scheduled on the
:class:`~repro.clock.TimerService`.

The hour field is written ``24h`` in the paper's grammar but is just the
0-23 hour; we accept 1- or 2-digit numbers in every time field.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.clock import SIMULATED_EPOCH
from repro.errors import CalendarExpressionError

#: Field order in the textual form (matches VirtualClock.now_fields()).
_FIELDS = ("hour", "minute", "second", "month", "day", "year")

_FIELD_RANGES = {
    "hour": (0, 23),
    "minute": (0, 59),
    "second": (0, 59),
    "month": (1, 12),
    "day": (1, 31),
    "year": (1970, 9999),
}


def _parse_field(name: str, text: str) -> int | None:
    """Parse one field: ``*`` -> None (wildcard), else a bounded integer."""
    text = text.strip()
    if text == "*":
        return None
    try:
        value = int(text)
    except ValueError as exc:
        raise CalendarExpressionError(
            f"calendar field {name!r} must be an integer or '*', got {text!r}"
        ) from exc
    low, high = _FIELD_RANGES[name]
    if not low <= value <= high:
        raise CalendarExpressionError(
            f"calendar field {name!r} out of range [{low}, {high}]: {value}"
        )
    return value


@dataclass(frozen=True)
class CalendarExpression:
    """A parsed ``hh:mm:ss/mm/dd/yyyy`` pattern with ``*`` wildcards.

    ``None`` in a field means wildcard.  Use :meth:`parse` to build one
    from the paper's textual notation.
    """

    hour: int | None
    minute: int | None
    second: int | None
    month: int | None
    day: int | None
    year: int | None

    @classmethod
    def parse(cls, text: str) -> "CalendarExpression":
        """Parse ``"10:00:00/*/*/*"`` style notation.

        The date part may be partially omitted: ``"10:00:00"`` is
        shorthand for ``"10:00:00/*/*/*"``.
        """
        text = text.strip()
        if text.startswith("[") and text.endswith("]"):
            text = text[1:-1].strip()
        parts = text.split("/")
        time_part = parts[0]
        date_parts = parts[1:]
        if len(date_parts) > 3:
            raise CalendarExpressionError(
                f"too many '/'-separated fields in {text!r} "
                "(expected hh:mm:ss/mm/dd/yyyy)"
            )
        date_parts += ["*"] * (3 - len(date_parts))

        time_fields = time_part.split(":")
        if len(time_fields) != 3:
            raise CalendarExpressionError(
                f"time part of {text!r} must be hh:mm:ss, got {time_part!r}"
            )

        values = [
            _parse_field(name, raw)
            for name, raw in zip(_FIELDS, time_fields + date_parts)
        ]
        return cls(*values)

    def __str__(self) -> str:
        def show(value: int | None, width: int = 2) -> str:
            return "*" if value is None else f"{value:0{width}d}"

        return (
            f"{show(self.hour)}:{show(self.minute)}:{show(self.second)}"
            f"/{show(self.month)}/{show(self.day)}/{show(self.year, 4)}"
        )

    # -- matching -----------------------------------------------------------

    def matches_datetime(self, dt: datetime) -> bool:
        """Does the instant ``dt`` match this pattern?"""
        checks = (
            (self.hour, dt.hour),
            (self.minute, dt.minute),
            (self.second, dt.second),
            (self.month, dt.month),
            (self.day, dt.day),
            (self.year, dt.year),
        )
        return all(want is None or want == have for want, have in checks)

    def matches_seconds(self, seconds: float) -> bool:
        """Does the simulated instant (seconds since epoch) match?"""
        return self.matches_datetime(
            SIMULATED_EPOCH + timedelta(seconds=seconds)
        )

    # -- scheduling ---------------------------------------------------------

    def next_after(self, seconds: float, horizon_days: int = 366 * 12
                   ) -> float | None:
        """Earliest matching instant strictly after ``seconds``.

        Returns simulated seconds since the epoch, or ``None`` when no
        match exists within ``horizon_days`` (e.g. a fully pinned date in
        the past).  The search walks candidate instants coarsely (by day,
        then within the day by the pinned time fields) instead of
        second-by-second, so daily patterns cost a handful of iterations.
        """
        # Clamp to microsecond resolution *downward*: datetime would
        # otherwise round 431999.9999999999 up to the next exact second
        # and "strictly after" would skip a valid match at that second.
        seconds = math.floor(seconds * 1e6) / 1e6
        start = SIMULATED_EPOCH + timedelta(seconds=seconds)
        # Begin at the next whole second strictly after `seconds`.
        candidate = (start + timedelta(seconds=1)).replace(microsecond=0)
        if candidate <= start:
            candidate += timedelta(seconds=1)
        limit = candidate + timedelta(days=horizon_days)

        while candidate < limit:
            matched_day = (
                (self.year is None or candidate.year == self.year)
                and (self.month is None or candidate.month == self.month)
                and (self.day is None or candidate.day == self.day)
            )
            if not matched_day:
                candidate = (candidate + timedelta(days=1)).replace(
                    hour=0, minute=0, second=0
                )
                continue
            in_day = self._next_time_in_day(candidate)
            if in_day is not None:
                return (in_day - SIMULATED_EPOCH).total_seconds()
            candidate = (candidate + timedelta(days=1)).replace(
                hour=0, minute=0, second=0
            )
        return None

    def _next_time_in_day(self, start: datetime) -> datetime | None:
        """Earliest instant >= ``start`` on the same calendar day whose
        time-of-day fields match, or None if none remains that day."""
        hours = [self.hour] if self.hour is not None else range(24)
        minutes = [self.minute] if self.minute is not None else range(60)
        seconds_ = [self.second] if self.second is not None else range(60)

        for hour in hours:
            if hour < start.hour:
                continue
            for minute in minutes:
                if hour == start.hour and minute < start.minute:
                    continue
                for second in seconds_:
                    if (hour == start.hour and minute == start.minute
                            and second < start.second):
                        continue
                    return start.replace(
                        hour=hour, minute=minute, second=second
                    )
        return None


def parse_time_of_day(text: str) -> float:
    """Parse ``"HH:MM"`` or ``"HH:MM:SS"`` into seconds past midnight.

    Convenience used by the policy DSL for shift times like the paper's
    *day doctor 8 a.m. to 4 p.m.* example.
    """
    parts = text.strip().split(":")
    if len(parts) not in (2, 3):
        raise CalendarExpressionError(
            f"time of day must be HH:MM or HH:MM:SS, got {text!r}"
        )
    try:
        numbers = [int(p) for p in parts]
    except ValueError as exc:
        raise CalendarExpressionError(
            f"non-numeric time of day: {text!r}"
        ) from exc
    while len(numbers) < 3:
        numbers.append(0)
    hour, minute, second = numbers
    if not (0 <= hour <= 23 and 0 <= minute <= 59 and 0 <= second <= 59):
        raise CalendarExpressionError(f"time of day out of range: {text!r}")
    return hour * 3600 + minute * 60 + second
