"""Event occurrences: the values that flow through the event graph.

An :class:`Occurrence` records one detection of a (primitive or composite)
event: the event's name, the interval over which it occurred, the
parameters it carries, and — for composite events — the constituent
occurrences it was built from.

SnoopIB (the paper's own event language, [1] in its references) gives every
event an *interval* ``[start, end]`` rather than a point: a primitive event
occupies the degenerate interval ``[t, t]`` while ``SEQUENCE(E1, E2)``
spans from E1's start to E2's end.  Interval semantics are what make nested
sequences unambiguous, so we keep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.clock import Timestamp


@dataclass(frozen=True)
class Occurrence:
    """One detection of an event.

    Attributes:
        event: name of the detected event.
        start: timestamp of the earliest constituent (interval begin).
        end: timestamp of the detection instant (interval end).
        params: parameters carried by the occurrence.  For composite
            events this is the merge of all constituent parameter sets;
            when two constituents carry the same key the *later* one wins,
            which matches Sentinel's "most recent binding" convention.
        constituents: constituent occurrences (empty for primitives).
    """

    event: str
    start: Timestamp
    end: Timestamp
    params: Mapping[str, Any] = field(default_factory=dict)
    constituents: tuple["Occurrence", ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"occurrence of {self.event!r} ends ({self.end}) before "
                f"it starts ({self.start})"
            )

    @property
    def is_primitive(self) -> bool:
        return not self.constituents

    def get(self, key: str, default: Any = None) -> Any:
        """Parameter lookup with a default (dict.get semantics)."""
        return self.params.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.params[key]

    def __contains__(self, key: str) -> bool:
        return key in self.params

    def leaves(self) -> Iterator["Occurrence"]:
        """Yield the primitive occurrences underlying this one, in order."""
        if self.is_primitive:
            yield self
            return
        for child in self.constituents:
            yield from child.leaves()

    def flatten(self) -> dict[str, Any]:
        """The merged parameter dictionary as a plain dict."""
        return dict(self.params)

    def describe(self) -> str:
        """Human-readable one-line rendering (used by the audit log)."""
        parts = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.event}@[{self.start.seconds:g},{self.end.seconds:g}]({parts})"


def merge_params(*occurrences: Occurrence) -> dict[str, Any]:
    """Merge parameters of several occurrences, later occurrences winning.

    Occurrences are merged in end-timestamp order so that "later wins"
    refers to event time, not argument position.
    """
    merged: dict[str, Any] = {}
    for occ in sorted(occurrences, key=lambda o: o.end):
        merged.update(occ.params)
    return merged


def compose(event: str, constituents: tuple[Occurrence, ...],
            detection: Timestamp) -> Occurrence:
    """Build a composite occurrence from its constituents.

    The interval spans from the earliest constituent start to the
    detection instant; parameters are the event-time-ordered merge.
    """
    if not constituents:
        raise ValueError("composite occurrence needs at least one constituent")
    start = min(c.start for c in constituents)
    return Occurrence(
        event=event,
        start=start,
        end=detection,
        params=merge_params(*constituents),
        constituents=constituents,
    )


def to_wire(occurrence: Occurrence) -> dict[str, Any]:
    """Render an occurrence as a JSON-serialisable dict.

    Used by persistence to snapshot in-flight partial detections
    (buffered initiators, open windows, armed countdowns).  Timestamps
    keep their tie-breaking sequence numbers so the restored total
    order matches the live one; parameters are kept as-is — event
    parameters in this engine are scalars (ids, names, counts).
    """
    wire: dict[str, Any] = {
        "event": occurrence.event,
        "start": [occurrence.start.seconds, occurrence.start.sequence],
        "end": [occurrence.end.seconds, occurrence.end.sequence],
        "params": dict(occurrence.params),
    }
    if occurrence.constituents:
        wire["constituents"] = [to_wire(c) for c in occurrence.constituents]
    return wire


def from_wire(data: dict[str, Any]) -> Occurrence:
    """Rebuild an occurrence from its :func:`to_wire` rendering."""
    return Occurrence(
        event=data["event"],
        start=Timestamp(float(data["start"][0]), int(data["start"][1])),
        end=Timestamp(float(data["end"][0]), int(data["end"][1])),
        params=dict(data.get("params", {})),
        constituents=tuple(from_wire(c)
                           for c in data.get("constituents", ())),
    )
