"""Fluent event-expression builder over the Snoop algebra.

The detector's ``define_*`` methods require naming every intermediate
event.  For complex expressions — the paper's Rule 6 builds
``Aperiodic([StartD], Aperiodic([10:00], OR(ET1, ET2), [17:00]),
[EndD])`` — a composable expression API is more natural::

    from repro.events.expr import E, aperiodic

    et3 = E("roleDisableNurse") | E("roleDisableDoctor")
    et5 = aperiodic(E("DailyStart"), et3, E("DailyEnd"))
    et4 = aperiodic(E("YearStart"), et5, E("YearEnd"))
    name = et4.define(detector, "ET4")     # defines the whole tree

Operators:

=====================  ====================================
``a | b``              OR(a, b)
``a & b``              AND(a, b)
``a >> b``             SEQUENCE(a, b)
``a.then(b)``          SEQUENCE(a, b) (method form)
``a.plus(delta)``      PLUS(a, delta)
``negation(a, b, c)``  NOT(a, b, c) — b absent between a and c
``aperiodic(a, b, c)`` APERIODIC — b inside [a, c) windows
``aperiodic_star``     A* — fold of b's, detected at c
``periodic(a, t, c)``  PERIODIC — tick every t inside [a, c)
=====================  ====================================

``define`` names only the root; anonymous subexpressions get stable
derived names (``<root>#1``, ``<root>#2``, ... in definition order) and
are reused if already defined — defining the same tree twice under the
same root name is an error (events are unique), but sharing a named
primitive between trees is the normal case.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.events.consumption import ConsumptionMode
from repro.events.detector import EventDetector


class Expr:
    """Base class for event expressions (immutable trees)."""

    def __or__(self, other: "Expr") -> "Expr":
        return OrExpr((self, _coerce(other)))

    def __and__(self, other: "Expr") -> "Expr":
        return AndExpr(self, _coerce(other))

    def __rshift__(self, other: "Expr") -> "Expr":
        return SeqExpr(self, _coerce(other))

    def then(self, other: "Expr") -> "Expr":
        """SEQUENCE(self, other) — method form of ``>>``."""
        return SeqExpr(self, _coerce(other))

    def plus(self, delta: float) -> "Expr":
        """PLUS(self, delta): fire ``delta`` seconds after self."""
        return PlusExpr(self, float(delta))

    def define(self, detector: EventDetector, name: str,
               mode: ConsumptionMode | str = ConsumptionMode.RECENT
               ) -> str:
        """Define this expression tree in the detector; returns ``name``.

        Subexpressions are defined bottom-up with derived names;
        primitives are ensured (created if absent).
        """
        mode = ConsumptionMode.parse(mode)
        counter = itertools.count(1)

        def derive() -> str:
            return f"{name}#{next(counter)}"

        return self._define(detector, name, mode, derive)

    def _define(self, detector, name, mode, derive) -> str:
        raise NotImplementedError


def _coerce(value: "Expr | str") -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return E(value)
    raise TypeError(f"cannot use {value!r} as an event expression")


@dataclass(frozen=True)
class E(Expr):
    """A named (usually primitive) event leaf.

    Referencing an already-defined composite by name is allowed: the
    leaf simply resolves to that node.
    """

    name: str

    def _define(self, detector, name, mode, derive) -> str:
        if self.name not in detector:
            detector.ensure_primitive(self.name)
        # a leaf used as a tree root under a different name -> alias
        # via a 2-ary OR is surprising; just reject
        if name != self.name:
            raise ValueError(
                f"cannot define leaf {self.name!r} under a different "
                f"name {name!r}; wrap it in an operator")
        return self.name

    def _resolve(self, detector, derive, mode) -> str:
        if self.name not in detector:
            detector.ensure_primitive(self.name)
        return self.name


class _Composite(Expr):
    def _resolve(self, detector, derive, mode) -> str:
        return self._define(detector, derive(), mode, derive)

    @staticmethod
    def _child(child: Expr, detector, derive, mode) -> str:
        return child._resolve(detector, derive, mode)


@dataclass(frozen=True)
class OrExpr(_Composite):
    children: tuple[Expr, ...]

    def __or__(self, other: "Expr") -> "Expr":
        # flatten chains: a | b | c -> OR(a, b, c)
        return OrExpr((*self.children, _coerce(other)))

    def _define(self, detector, name, mode, derive) -> str:
        names = [self._child(c, detector, derive, mode)
                 for c in self.children]
        detector.define_or(name, *names, mode=mode)
        return name


@dataclass(frozen=True)
class AndExpr(_Composite):
    left: Expr
    right: Expr

    def _define(self, detector, name, mode, derive) -> str:
        detector.define_and(
            name,
            self._child(self.left, detector, derive, mode),
            self._child(self.right, detector, derive, mode),
            mode=mode)
        return name


@dataclass(frozen=True)
class SeqExpr(_Composite):
    first: Expr
    second: Expr

    def _define(self, detector, name, mode, derive) -> str:
        detector.define_sequence(
            name,
            self._child(self.first, detector, derive, mode),
            self._child(self.second, detector, derive, mode),
            mode=mode)
        return name


@dataclass(frozen=True)
class PlusExpr(_Composite):
    source: Expr
    delta: float

    def _define(self, detector, name, mode, derive) -> str:
        detector.define_plus(
            name, self._child(self.source, detector, derive, mode),
            self.delta)
        return name


@dataclass(frozen=True)
class NotExpr(_Composite):
    opener: Expr
    forbidden: Expr
    closer: Expr

    def _define(self, detector, name, mode, derive) -> str:
        detector.define_not(
            name,
            self._child(self.opener, detector, derive, mode),
            self._child(self.forbidden, detector, derive, mode),
            self._child(self.closer, detector, derive, mode),
            mode=mode)
        return name


@dataclass(frozen=True)
class AperiodicExpr(_Composite):
    opener: Expr
    middle: Expr
    closer: Expr
    star: bool = field(default=False)

    def _define(self, detector, name, mode, derive) -> str:
        opener = self._child(self.opener, detector, derive, mode)
        middle = self._child(self.middle, detector, derive, mode)
        closer = self._child(self.closer, detector, derive, mode)
        if self.star:
            detector.define_aperiodic_star(name, opener, middle, closer)
        else:
            detector.define_aperiodic(name, opener, middle, closer,
                                      mode=mode)
        return name


@dataclass(frozen=True)
class PeriodicExpr(_Composite):
    opener: Expr
    period: float
    closer: Expr
    star: bool = field(default=False)

    def _define(self, detector, name, mode, derive) -> str:
        opener = self._child(self.opener, detector, derive, mode)
        closer = self._child(self.closer, detector, derive, mode)
        if self.star:
            detector.define_periodic_star(name, opener, self.period,
                                          closer)
        else:
            detector.define_periodic(name, opener, self.period, closer)
        return name


def negation(opener: Expr | str, forbidden: Expr | str,
             closer: Expr | str) -> Expr:
    """NOT: closer after opener with no intervening forbidden event."""
    return NotExpr(_coerce(opener), _coerce(forbidden), _coerce(closer))


def aperiodic(opener: Expr | str, middle: Expr | str,
              closer: Expr | str) -> Expr:
    """APERIODIC: each middle inside an [opener, closer) window."""
    return AperiodicExpr(_coerce(opener), _coerce(middle),
                         _coerce(closer))


def aperiodic_star(opener: Expr | str, middle: Expr | str,
                   closer: Expr | str) -> Expr:
    """A*: accumulate middles; one detection at closer."""
    return AperiodicExpr(_coerce(opener), _coerce(middle),
                         _coerce(closer), star=True)


def periodic(opener: Expr | str, period: float,
             closer: Expr | str) -> Expr:
    """PERIODIC: a tick every ``period`` seconds inside the window."""
    return PeriodicExpr(_coerce(opener), float(period), _coerce(closer))


def periodic_star(opener: Expr | str, period: float,
                  closer: Expr | str) -> Expr:
    """P*: count ticks silently; one detection at closer."""
    return PeriodicExpr(_coerce(opener), float(period), _coerce(closer),
                        star=True)
