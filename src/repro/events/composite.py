"""Composite (complex) event operator nodes — the Snoop algebra.

The detector keeps one node per defined event; composite nodes subscribe
to their children and produce their own occurrences when the operator's
semantics are satisfied (paper §3, "Complex Events").  Implemented
operators, with the access-control reading the paper gives each:

=============  ===========================================================
OR(E1, E2)     either event — e.g. "role disabled by either path" (Rule 6)
AND(E1, E2)    both, any order
SEQUENCE       E1 strictly before E2 — prerequisite roles
NOT(E1,E2,E3)  E2 did *not* occur between E1 and E3
PLUS(E1, d)    d seconds after each E1 — forced file close (Rule 2),
               per-user-role activation duration (Rule 7)
APERIODIC      each E2 inside an [E1, E3) window — transaction-based
               activation (Rule 9)
APERIODIC*     all E2s inside the window, folded into one detection at E3
PERIODIC       a tick every tau seconds inside [E1, E3) — periodic
               monitoring/report generation
PERIODIC*      accumulated ticks, one detection at E3
ABSOLUTE       a calendar expression instant — 10:00:00/*/*/* (Rule 6)
=============  ===========================================================

Binary operators honour the Snoop parameter contexts via
:class:`~repro.events.consumption.InitiatorBuffer`.  Temporal operators
(PLUS, PERIODIC, ABSOLUTE) schedule on the detector's
:class:`~repro.clock.TimerService`, so they are exact and deterministic
under the virtual clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.clock import Timestamp
from repro.events.calendar import CalendarExpression
from repro.events.consumption import ConsumptionMode, InitiatorBuffer
from repro.events.occurrence import Occurrence, compose, from_wire, to_wire

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.events.detector import EventDetector


class EventNode:
    """Base class for every node in the event graph.

    A node knows its name, its detector, and the (parent, input-slot)
    pairs subscribed to it.  ``emit`` hands a fresh occurrence to the
    detector, which fans it out to rule listeners and parent operators.
    """

    #: True only on PrimitiveEventNode — read by the detector's dispatch
    #: to fold raise-counting into the single per-dispatch obs hook.
    is_primitive = False

    #: per-node cache of bound metric children, set lazily by
    #: ObsHub.bind_node on first dispatch (None until then)
    obs_pair = None

    def __init__(self, detector: "EventDetector", name: str) -> None:
        self.detector = detector
        self.name = name
        self.parents: list[tuple["OperatorNode", int]] = []
        self.enabled = True

    def attach_parent(self, parent: "OperatorNode", slot: int) -> None:
        self.parents.append((parent, slot))

    def emit(self, occurrence: Occurrence) -> None:
        if self.enabled:
            self.detector.dispatch(self, occurrence)

    def children(self) -> tuple["EventNode", ...]:
        """Child nodes (empty for primitives)."""
        return ()

    def reset(self) -> None:
        """Discard buffered partial detections (windows, initiators).

        For self-scheduling nodes (ABSOLUTE) this re-arms the next
        firing; use :meth:`detach` when removing the node for good.
        """

    def detach(self) -> None:
        """Tear the node down permanently: like :meth:`reset` but any
        self-scheduled timers stay cancelled (used by undefine)."""
        self.enabled = False
        self.reset()

    def snapshot_state(self) -> dict | None:
        """JSON-serialisable partial-detection state, or None when the
        node holds none (persistence captures non-None states so a
        restored engine resumes in-flight composite detections)."""
        return None

    def restore_state(self, data: dict) -> None:
        """Rebuild buffered partial detections from
        :meth:`snapshot_state` output (timers are re-armed against the
        detector's current clock)."""

    def describe(self) -> str:
        return f"{type(self).__name__}({self.name})"


class PrimitiveEventNode(EventNode):
    """A primitive (simple) event, raised explicitly by the application.

    These model Sentinel's method-invocation events — ``user ->
    F(PA1, ..., PAn)`` in the paper's notation — as well as any other
    domain-specific occurrence of interest.
    """

    is_primitive = True

    def signal(self, params: dict) -> Occurrence:
        stamp = self.detector.clock.stamp()
        occurrence = Occurrence(self.name, stamp, stamp, dict(params))
        self.emit(occurrence)
        return occurrence


class OperatorNode(EventNode):
    """Base for composite operators: wires itself under its children."""

    def __init__(self, detector: "EventDetector", name: str,
                 children: tuple[EventNode, ...],
                 mode: ConsumptionMode = ConsumptionMode.RECENT) -> None:
        super().__init__(detector, name)
        self._children = children
        self.mode = mode
        for slot, child in enumerate(children):
            child.attach_parent(self, slot)

    def children(self) -> tuple[EventNode, ...]:
        return self._children

    def on_child(self, slot: int, occurrence: Occurrence) -> None:
        raise NotImplementedError

    def _detection_stamp(self) -> Timestamp:
        return self.detector.clock.stamp()


class OrNode(OperatorNode):
    """OR(E1, E2, ...): fires on every occurrence of any child."""

    def on_child(self, slot: int, occurrence: Occurrence) -> None:
        self.emit(compose(self.name, (occurrence,), occurrence.end))


class AndNode(OperatorNode):
    """AND(E1, E2): fires once both children have occurred, in any order.

    The arriving occurrence acts as the terminator: it pairs with buffered
    occurrences of the *other* side per the consumption mode.  If nothing
    pairs, it is buffered as an initiator itself.
    """

    def __init__(self, detector: "EventDetector", name: str,
                 children: tuple[EventNode, EventNode],
                 mode: ConsumptionMode = ConsumptionMode.RECENT) -> None:
        super().__init__(detector, name, children, mode)
        self._buffers = (InitiatorBuffer(mode), InitiatorBuffer(mode))

    def on_child(self, slot: int, occurrence: Occurrence) -> None:
        other = self._buffers[1 - slot]
        groups = other.take_matches()
        if not groups:
            self._buffers[slot].add(occurrence)
            return
        for group in groups:
            constituents = tuple(sorted((*group, occurrence),
                                        key=lambda o: o.end))
            self.emit(compose(self.name, constituents, occurrence.end))
        if self.mode is ConsumptionMode.UNRESTRICTED:
            # Nothing is ever consumed in the unrestricted context, so the
            # terminator is also retained for future pairings.
            self._buffers[slot].add(occurrence)

    def reset(self) -> None:
        for buffer in self._buffers:
            buffer.clear()

    def snapshot_state(self) -> dict | None:
        if not any(len(b) for b in self._buffers):
            return None
        return {"buffers": [[to_wire(o) for o in b.peek_all()]
                            for b in self._buffers]}

    def restore_state(self, data: dict) -> None:
        for buffer, wires in zip(self._buffers, data.get("buffers", ())):
            buffer.restore(from_wire(w) for w in wires)


class SequenceNode(OperatorNode):
    """SEQUENCE(E1, E2): E1 must end strictly before E2 starts.

    E1 is the initiator, E2 the terminator (SnoopIB interval order).  The
    paper's prerequisite-role constraint — *a user should be active in
    role A to activate role B* — is this operator.
    """

    def __init__(self, detector: "EventDetector", name: str,
                 children: tuple[EventNode, EventNode],
                 mode: ConsumptionMode = ConsumptionMode.RECENT) -> None:
        super().__init__(detector, name, children, mode)
        self._initiators = InitiatorBuffer(mode)

    def on_child(self, slot: int, occurrence: Occurrence) -> None:
        if slot == 0:
            self._initiators.add(occurrence)
            return
        groups = self._initiators.take_matches(
            eligible=lambda occ: occ.end < occurrence.start
        )
        for group in groups:
            constituents = (*group, occurrence)
            self.emit(compose(self.name, constituents, occurrence.end))

    def reset(self) -> None:
        self._initiators.clear()

    def snapshot_state(self) -> dict | None:
        if not len(self._initiators):
            return None
        return {"initiators": [to_wire(o)
                               for o in self._initiators.peek_all()]}

    def restore_state(self, data: dict) -> None:
        self._initiators.restore(from_wire(w)
                                 for w in data.get("initiators", ()))


class NotNode(OperatorNode):
    """NOT(E1, E2, E3): E3 after E1 with no intervening E2.

    E1 opens a window; any E2 contaminates every open window; E3 detects
    against the uncontaminated windows per the consumption mode.
    """

    def __init__(self, detector: "EventDetector", name: str,
                 children: tuple[EventNode, EventNode, EventNode],
                 mode: ConsumptionMode = ConsumptionMode.RECENT) -> None:
        super().__init__(detector, name, children, mode)
        self._initiators = InitiatorBuffer(mode)
        self._contaminated: set[int] = set()

    def on_child(self, slot: int, occurrence: Occurrence) -> None:
        if slot == 0:  # E1 opens a clean window
            self._initiators.add(occurrence)
            # RECENT mode dropped older windows; prune stale marks.
            live = {id(occ) for occ in self._initiators.peek_all()}
            self._contaminated &= live
            return
        if slot == 1:  # E2 contaminates every open window
            for open_occ in self._initiators.peek_all():
                self._contaminated.add(id(open_occ))
            return
        # slot == 2: E3 terminates
        groups = self._initiators.take_matches(
            eligible=lambda occ: (occ.end < occurrence.start
                                  and id(occ) not in self._contaminated)
        )
        for group in groups:
            constituents = (*group, occurrence)
            self.emit(compose(self.name, constituents, occurrence.end))

    def reset(self) -> None:
        self._initiators.clear()
        self._contaminated.clear()

    def snapshot_state(self) -> dict | None:
        open_windows = self._initiators.peek_all()
        if not open_windows:
            return None
        # contamination marks are object identities; persist them as a
        # parallel boolean list and rebuild against the restored objects
        return {"initiators": [to_wire(o) for o in open_windows],
                "contaminated": [id(o) in self._contaminated
                                 for o in open_windows]}

    def restore_state(self, data: dict) -> None:
        restored = [from_wire(w) for w in data.get("initiators", ())]
        self._initiators.restore(restored)
        self._contaminated = {
            id(occ) for occ, dirty in zip(restored,
                                          data.get("contaminated", ()))
            if dirty
        }


class AperiodicNode(OperatorNode):
    """APERIODIC(E1, E2, E3): each E2 inside an open [E1, E3) window fires.

    Windows are *not* consumed by detections — only E3 closes them — so a
    single window can detect many E2s (paper Rule 9: every JuniorEmp
    activation while the Manager window is open).  The consumption mode
    decides which open windows an E2 pairs with when several are open:
    RECENT -> newest, CHRONICLE -> oldest, others -> all.
    """

    def __init__(self, detector: "EventDetector", name: str,
                 children: tuple[EventNode, EventNode, EventNode],
                 mode: ConsumptionMode = ConsumptionMode.RECENT) -> None:
        super().__init__(detector, name, children, mode)
        self._open: list[Occurrence] = []

    @property
    def window_open(self) -> bool:
        return bool(self._open)

    def on_child(self, slot: int, occurrence: Occurrence) -> None:
        if slot == 0:  # E1 opens
            if self.mode is ConsumptionMode.RECENT:
                self._open.clear()
            self._open.append(occurrence)
            return
        if slot == 2:  # E3 closes every window
            self._open.clear()
            return
        # slot == 1: E2 occurred — detect against open windows
        if not self._open:
            return
        if self.mode is ConsumptionMode.RECENT:
            openers = [self._open[-1]]
        elif self.mode is ConsumptionMode.CHRONICLE:
            openers = [self._open[0]]
        else:
            openers = list(self._open)
        for opener in openers:
            constituents = (opener, occurrence)
            self.emit(compose(self.name, constituents, occurrence.end))

    def reset(self) -> None:
        self._open.clear()

    def snapshot_state(self) -> dict | None:
        if not self._open:
            return None
        return {"open": [to_wire(o) for o in self._open]}

    def restore_state(self, data: dict) -> None:
        self._open = [from_wire(w) for w in data.get("open", ())]


class AperiodicStarNode(OperatorNode):
    """A*(E1, E2, E3): accumulate E2s in the window; one detection at E3.

    The detection's constituents are (opener, e2..., closer).  A window
    with zero E2s still detects at E3 (the cumulative fold is empty), which
    lets rules distinguish "window ended with no activity".
    """

    def __init__(self, detector: "EventDetector", name: str,
                 children: tuple[EventNode, EventNode, EventNode],
                 mode: ConsumptionMode = ConsumptionMode.CUMULATIVE) -> None:
        super().__init__(detector, name, children, mode)
        self._opener: Occurrence | None = None
        self._accumulated: list[Occurrence] = []

    def on_child(self, slot: int, occurrence: Occurrence) -> None:
        if slot == 0:
            self._opener = occurrence
            self._accumulated = []
            return
        if self._opener is None:
            return
        if slot == 1:
            self._accumulated.append(occurrence)
            return
        # slot == 2: fold and close
        constituents = (self._opener, *self._accumulated, occurrence)
        self.emit(compose(self.name, constituents, occurrence.end))
        self._opener = None
        self._accumulated = []

    def reset(self) -> None:
        self._opener = None
        self._accumulated = []

    def snapshot_state(self) -> dict | None:
        if self._opener is None:
            return None
        return {"opener": to_wire(self._opener),
                "accumulated": [to_wire(o) for o in self._accumulated]}

    def restore_state(self, data: dict) -> None:
        self._opener = from_wire(data["opener"])
        self._accumulated = [from_wire(w)
                             for w in data.get("accumulated", ())]


class PeriodicNode(OperatorNode):
    """PERIODIC(E1, tau, E3): fire every ``tau`` seconds inside [E1, E3).

    The paper's example: *periodically monitor the underlying system and
    generate reports*.  Each tick's occurrence carries ``tick`` (1-based)
    and inherits the opener's parameters.
    """

    def __init__(self, detector: "EventDetector", name: str,
                 children: tuple[EventNode, EventNode],
                 period: float) -> None:
        if period <= 0:
            raise ValueError(f"PERIODIC period must be positive, got {period}")
        super().__init__(detector, name, children)
        self.period = float(period)
        self._opener: Occurrence | None = None
        self._timer_id: int | None = None
        self._next_fire: float | None = None
        self._tick = 0

    def on_child(self, slot: int, occurrence: Occurrence) -> None:
        if slot == 0:
            if self._opener is None:  # first opener wins; E3 must close it
                self._opener = occurrence
                self._tick = 0
                self._arm()
            return
        # slot == 1: E3 closes
        self._disarm()
        self._opener = None

    def _arm(self) -> None:
        self._arm_at(self.detector.clock.now + self.period)

    def _arm_at(self, deadline: float) -> None:
        self._next_fire = deadline
        self._timer_id = self.detector.timers.schedule_at(
            deadline, self._fire
        )

    def _disarm(self) -> None:
        if self._timer_id is not None:
            self.detector.timers.cancel(self._timer_id)
            self._timer_id = None
            self._next_fire = None

    def _fire(self) -> None:
        if self._opener is None:
            return
        self._tick += 1
        stamp = self.detector.clock.stamp()
        params = dict(self._opener.params)
        params["tick"] = self._tick
        self.emit(Occurrence(self.name, self._opener.start, stamp, params,
                             constituents=(self._opener,)))
        self._arm()

    def reset(self) -> None:
        self._disarm()
        self._opener = None
        self._tick = 0

    def snapshot_state(self) -> dict | None:
        if self._opener is None:
            return None
        return {"opener": to_wire(self._opener), "tick": self._tick,
                "next_fire": self._next_fire}

    def restore_state(self, data: dict) -> None:
        self._disarm()
        self._opener = from_wire(data["opener"])
        self._tick = int(data.get("tick", 0))
        next_fire = data.get("next_fire")
        if next_fire is not None:
            # a tick owed from before the restart fires on the next
            # clock advance; subsequent ticks resume the cadence
            self._arm_at(float(next_fire))


class PeriodicStarNode(OperatorNode):
    """P*(E1, tau, E3): count ticks silently; one detection at E3.

    The closing detection carries ``ticks`` — how many periods elapsed —
    alongside the opener's parameters.
    """

    def __init__(self, detector: "EventDetector", name: str,
                 children: tuple[EventNode, EventNode],
                 period: float) -> None:
        if period <= 0:
            raise ValueError(f"PERIODIC* period must be positive, got {period}")
        super().__init__(detector, name, children)
        self.period = float(period)
        self._opener: Occurrence | None = None
        self._opened_at: float = 0.0

    def on_child(self, slot: int, occurrence: Occurrence) -> None:
        if slot == 0:
            if self._opener is None:
                self._opener = occurrence
                self._opened_at = self.detector.clock.now
            return
        if self._opener is None:
            return
        elapsed = self.detector.clock.now - self._opened_at
        params = dict(self._opener.params)
        params["ticks"] = int(elapsed // self.period)
        self.emit(Occurrence(self.name, self._opener.start, occurrence.end,
                             params, constituents=(self._opener, occurrence)))
        self._opener = None

    def reset(self) -> None:
        self._opener = None

    def snapshot_state(self) -> dict | None:
        if self._opener is None:
            return None
        return {"opener": to_wire(self._opener),
                "opened_at": self._opened_at}

    def restore_state(self, data: dict) -> None:
        self._opener = from_wire(data["opener"])
        self._opened_at = float(data.get("opened_at", 0.0))


class PlusNode(OperatorNode):
    """PLUS(E1, delta): fires ``delta`` seconds after each E1 occurrence.

    The detection inherits E1's parameters, so a rule like the paper's
    Rule 2 (*close patient.dat two hours after Bob opened it*) sees which
    file/session started the countdown.  Each E1 occurrence arms its own
    timer; overlapping countdowns are independent.
    """

    def __init__(self, detector: "EventDetector", name: str,
                 children: tuple[EventNode], delta: float) -> None:
        if delta < 0:
            raise ValueError(f"PLUS delta must be non-negative, got {delta}")
        super().__init__(detector, name, children)
        self.delta = float(delta)
        #: timer id -> (initiating occurrence, absolute fire deadline);
        #: the deadline is kept so persistence can re-arm the remaining
        #: countdowns after a restore
        self._pending: dict[int, tuple[Occurrence, float]] = {}

    def on_child(self, slot: int, occurrence: Occurrence) -> None:
        self._arm(occurrence, self.detector.clock.now + self.delta)

    def _arm(self, occurrence: Occurrence, deadline: float) -> None:
        timer_box: list[int] = []

        def fire() -> None:
            self._pending.pop(timer_box[0], None)
            stamp = self.detector.clock.stamp()
            self.emit(Occurrence(self.name, occurrence.start, stamp,
                                 dict(occurrence.params),
                                 constituents=(occurrence,)))

        timer_id = self.detector.timers.schedule_at(deadline, fire)
        timer_box.append(timer_id)
        self._pending[timer_id] = (occurrence, deadline)

    def cancel_pending(self) -> int:
        """Cancel every armed countdown (e.g. role deactivated early)."""
        cancelled = 0
        for timer_id in list(self._pending):
            if self.detector.timers.cancel(timer_id):
                cancelled += 1
        self._pending.clear()
        return cancelled

    def reset(self) -> None:
        self.cancel_pending()

    def snapshot_state(self) -> dict | None:
        if not self._pending:
            return None
        return {"pending": [
            {"occurrence": to_wire(occ), "deadline": deadline}
            for occ, deadline in self._pending.values()
        ]}

    def restore_state(self, data: dict) -> None:
        # countdowns that expired while the engine was down fire on the
        # next clock advance (schedule_at accepts past deadlines)
        for entry in data.get("pending", ()):
            self._arm(from_wire(entry["occurrence"]),
                      float(entry["deadline"]))


class AbsoluteNode(EventNode):
    """An absolute temporal event: fires at calendar-expression instants.

    ``[10:00:00/*/*/*]`` (paper Rule 6) becomes an AbsoluteNode that
    re-arms itself after every firing.  Occurrence parameters carry the
    matched ``instant`` (simulated seconds).
    """

    def __init__(self, detector: "EventDetector", name: str,
                 expression: CalendarExpression) -> None:
        super().__init__(detector, name)
        self.expression = expression
        self._timer_id: int | None = None
        self._arm()

    def _arm(self) -> None:
        if not self.enabled:
            self._timer_id = None
            return
        next_at = self.expression.next_after(self.detector.clock.now)
        if next_at is None:
            self._timer_id = None
            return
        self._timer_id = self.detector.timers.schedule_at(next_at, self._fire)

    def _fire(self) -> None:
        stamp = self.detector.clock.stamp()
        self.emit(Occurrence(self.name, stamp, stamp,
                             {"instant": stamp.seconds,
                              "expression": str(self.expression)}))
        self._arm()

    def reset(self) -> None:
        if self._timer_id is not None:
            self.detector.timers.cancel(self._timer_id)
        self._arm()

    def describe(self) -> str:
        return f"Absolute({self.name}, {self.expression})"


#: Factory table used by the detector's generic ``define_composite``.
OPERATOR_FACTORIES: dict[str, Callable] = {
    "OR": OrNode,
    "AND": AndNode,
    "SEQUENCE": SequenceNode,
    "SEQ": SequenceNode,
    "NOT": NotNode,
    "APERIODIC": AperiodicNode,
    "APERIODIC_STAR": AperiodicStarNode,
}
