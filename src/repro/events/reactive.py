"""Reactive objects: Sentinel's primitive-event interface for methods.

"In Sentinel, a reactive object is an object that has traditional object
definition plus an event interface ... The event interface lets the object
designate some or all of reactive object methods as primitive event
generators" (paper §5).

A :class:`ReactiveObject` subclass marks methods with the
:func:`primitive_event` decorator; invoking a marked method raises a
primitive event named ``<EventPrefix>.<method>`` (or an explicit name)
into the object's detector, carrying the call's keyword-visible arguments
as event parameters — the ``U -> F(PA1, ..., PAn)`` form from paper §3.

Example::

    class FileServer(ReactiveObject):
        @primitive_event()
        def open_file(self, user, filename):
            return f"{user} opened {filename}"

    server = FileServer(detector, event_prefix="fs")
    server.open_file("Bob", "patient.dat")   # raises event "fs.open_file"

Events are raised *before* the method body runs ("begin" modifier in
Sentinel terms) so authorization rules can veto the call by raising
:class:`~repro.errors.AccessDenied` from their ELSE branch — the method
body then never executes.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, TypeVar

from repro.events.detector import EventDetector

F = TypeVar("F", bound=Callable[..., Any])

_EVENT_ATTR = "_repro_primitive_event"


def primitive_event(name: str | None = None) -> Callable[[F], F]:
    """Mark a :class:`ReactiveObject` method as a primitive event generator.

    ``name`` overrides the default event name (``<prefix>.<method>``).
    The decorated method raises its event with the bound call arguments as
    parameters, then executes normally.
    """

    def decorate(method: F) -> F:
        signature = inspect.signature(method)

        @functools.wraps(method)
        def wrapper(self: "ReactiveObject", *args: Any, **kwargs: Any) -> Any:
            bound = signature.bind(self, *args, **kwargs)
            bound.apply_defaults()
            params = {
                key: value for key, value in bound.arguments.items()
                if key != "self"
            }
            event_name = name or f"{self.event_prefix}.{method.__name__}"
            self.detector.raise_event(event_name, **params)
            return method(self, *args, **kwargs)

        setattr(wrapper, _EVENT_ATTR, name or True)
        return wrapper  # type: ignore[return-value]

    return decorate


class ReactiveObject:
    """Base class whose decorated methods generate primitive events.

    On construction, every :func:`primitive_event`-decorated method's
    event is registered with the detector (idempotently), so rules can
    subscribe before the first invocation.
    """

    def __init__(self, detector: EventDetector, event_prefix: str = "") -> None:
        self.detector = detector
        self.event_prefix = event_prefix or type(self).__name__
        for attr_name in dir(type(self)):
            attr = getattr(type(self), attr_name, None)
            marker = getattr(attr, _EVENT_ATTR, None)
            if marker is None:
                continue
            event_name = (marker if isinstance(marker, str)
                          else f"{self.event_prefix}.{attr_name}")
            detector.ensure_primitive(event_name)

    def event_names(self) -> list[str]:
        """Names of the primitive events this object can generate."""
        names = []
        for attr_name in dir(type(self)):
            attr = getattr(type(self), attr_name, None)
            marker = getattr(attr, _EVENT_ATTR, None)
            if marker is None:
                continue
            names.append(marker if isinstance(marker, str)
                         else f"{self.event_prefix}.{attr_name}")
        return sorted(names)


class NotifiableObject:
    """An object capable of being informed of event occurrences (paper §5).

    Thin adapter: subclasses override :meth:`notify` and are subscribed to
    events of interest via :meth:`listen_to`.
    """

    def __init__(self, detector: EventDetector) -> None:
        self.detector = detector

    def listen_to(self, event_name: str) -> None:
        self.detector.subscribe(event_name, self.notify)

    def notify(self, occurrence: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
