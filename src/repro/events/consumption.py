"""Parameter (consumption) contexts for composite event detection.

When a binary operator such as ``SEQUENCE(E1, E2)`` can pair a terminator
occurrence with *several* buffered initiator occurrences, Snoop's
*parameter contexts* decide which pairings are produced and which buffered
occurrences are consumed:

* **RECENT** — only the most recent initiator participates; it keeps
  initiating until a newer initiator replaces it; terminators are consumed.
  (Sentinel's default, and the right context for authorization rules where
  only the latest request matters.)
* **CHRONICLE** — initiator and terminator are paired in FIFO order and
  both are consumed; every occurrence participates in exactly one
  detection.  (Right for request/response style auditing.)
* **CONTINUOUS** — every buffered initiator starts its own window; one
  terminator detects one composite event per open window and consumes all
  of them.  (Sliding windows.)
* **CUMULATIVE** — all buffered initiators are folded into a single
  detection when the terminator arrives; all are consumed.  (Batching.)
* **UNRESTRICTED** — nothing is ever consumed; all valid combinations are
  produced.  Unbounded memory; exposed for completeness and for the B8
  ablation benchmark.

The :class:`InitiatorBuffer` here encapsulates those five policies over a
buffer of occurrences, so each operator implements only its pairing
predicate and delegates retention/consumption decisions.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable

from repro.events.occurrence import Occurrence


class ConsumptionMode(enum.Enum):
    """Snoop parameter context governing occurrence reuse."""

    RECENT = "recent"
    CHRONICLE = "chronicle"
    CONTINUOUS = "continuous"
    CUMULATIVE = "cumulative"
    UNRESTRICTED = "unrestricted"

    @classmethod
    def parse(cls, text: "str | ConsumptionMode") -> "ConsumptionMode":
        """Accept either a member or its lowercase name."""
        if isinstance(text, ConsumptionMode):
            return text
        try:
            return cls(text.strip().lower())
        except ValueError as exc:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown consumption mode {text!r}; expected one of: {valid}"
            ) from exc


class InitiatorBuffer:
    """A buffer of initiator occurrences obeying one consumption mode.

    Operators call :meth:`add` when an initiator-side occurrence arrives
    and :meth:`take_matches` when a terminator-side occurrence arrives.
    ``take_matches`` returns the *groups* of initiators to combine with the
    terminator — one group per detection — and consumes according to the
    mode:

    ========== ===============================  =========================
    mode       groups returned                  consumed afterwards
    ========== ===============================  =========================
    RECENT     ``[[most recent eligible]]``     nothing (initiator stays)
    CHRONICLE  ``[[oldest eligible]]``          that initiator
    CONTINUOUS one group per eligible, oldest   all eligible initiators
               first: ``[[i1], [i2], ...]``
    CUMULATIVE ``[[i1, i2, ...]]`` (one group)  all eligible initiators
    UNRESTRICTED one group per eligible         nothing
    ========== ===============================  =========================
    """

    def __init__(self, mode: ConsumptionMode) -> None:
        self.mode = mode
        self._buffer: list[Occurrence] = []

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterable[Occurrence]:
        return iter(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def peek_all(self) -> list[Occurrence]:
        """Non-consuming view of the buffered occurrences (oldest first)."""
        return list(self._buffer)

    def restore(self, occurrences: Iterable[Occurrence]) -> None:
        """Replace the buffered occurrences (persistence restore)."""
        self._buffer = list(occurrences)

    def add(self, occurrence: Occurrence) -> None:
        """Buffer an initiator occurrence per the retention policy."""
        if self.mode is ConsumptionMode.RECENT:
            # Only the most recent initiator is ever eligible.
            self._buffer.clear()
        self._buffer.append(occurrence)

    def take_matches(
        self,
        eligible: Callable[[Occurrence], bool] = lambda occ: True,
    ) -> list[list[Occurrence]]:
        """Pair buffered initiators with an arriving terminator.

        ``eligible`` filters initiators (e.g. SEQUENCE requires the
        initiator to end strictly before the terminator starts).  Returns
        the constituent groups, one per composite detection, and consumes
        buffered occurrences per the mode's policy.
        """
        candidates = [occ for occ in self._buffer if eligible(occ)]
        if not candidates:
            return []

        mode = self.mode
        if mode is ConsumptionMode.RECENT:
            return [[candidates[-1]]]
        if mode is ConsumptionMode.CHRONICLE:
            oldest = candidates[0]
            self._buffer.remove(oldest)
            return [[oldest]]
        if mode is ConsumptionMode.CONTINUOUS:
            for occ in candidates:
                self._buffer.remove(occ)
            return [[occ] for occ in candidates]
        if mode is ConsumptionMode.CUMULATIVE:
            for occ in candidates:
                self._buffer.remove(occ)
            return [candidates]
        # UNRESTRICTED: everything pairs, nothing is consumed.
        return [[occ] for occ in candidates]
