"""The event detector: Sentinel+'s central dispatch component.

"Sentinel includes an event detector that is responsible for processing
all the notifications from different objects and eventually signaling to
the rules that some event has occurred, triggering them" (paper §5).

The :class:`EventDetector` owns

* the registry of named events (primitive, composite, temporal),
* the event graph (composite nodes wired beneath their constituents),
* listener subscriptions (the rule manager subscribes here), and
* dispatch: when a node emits an occurrence, listeners are notified and
  the occurrence is propagated to parent operator nodes.

Dispatch is synchronous and depth-first: an action that raises a further
event (cascaded rules, paper §3) is processed immediately, in raise order.
Cascade-depth protection lives in the rule manager, which is the only
component that re-enters the detector.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.clock import TimerService, VirtualClock
from repro.errors import DuplicateEventError, EventError, UnknownEventError
from repro.events.calendar import CalendarExpression
from repro.events.composite import (
    OPERATOR_FACTORIES,
    AbsoluteNode,
    AndNode,
    AperiodicNode,
    AperiodicStarNode,
    EventNode,
    NotNode,
    OperatorNode,
    OrNode,
    PeriodicNode,
    PeriodicStarNode,
    PlusNode,
    PrimitiveEventNode,
    SequenceNode,
)
from repro.events.consumption import ConsumptionMode
from repro.events.occurrence import Occurrence

Listener = Callable[[Occurrence], None]


class EventDetector:
    """Registry + dispatch hub for the event graph.

    Create one per engine, sharing a :class:`TimerService` (and hence a
    :class:`VirtualClock`) with every temporal component.
    """

    def __init__(self, timers: TimerService | None = None) -> None:
        if timers is None:
            timers = TimerService(VirtualClock())
        self.timers = timers
        self._nodes: dict[str, EventNode] = {}
        self._listeners: dict[str, list[Listener]] = {}
        self._global_listeners: list[Listener] = []
        self._raised_count = 0
        self._detected_count = 0
        #: optional :class:`~repro.obs.hub.ObsHub`; the engine wires one
        #: in.  When None, raise/dispatch run the bare (seed) path.
        self.obs = None
        #: bumped on every graph/listener mutation (define, undefine,
        #: subscribe, unsubscribe); one leg of the PolicyKernel
        #: validity triple
        self.version = 0

    # -- clock plumbing ------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        return self.timers.clock

    def advance_time(self, seconds: float) -> int:
        """Advance simulated time, firing due temporal events.

        Returns the number of timer callbacks that fired.
        """
        return self.timers.advance(seconds)

    # -- registry ------------------------------------------------------------

    def _register(self, node: EventNode) -> EventNode:
        if node.name in self._nodes:
            raise DuplicateEventError(
                f"event {node.name!r} is already defined"
            )
        self._nodes[node.name] = node
        self.version += 1
        return node

    def _node(self, name: str) -> EventNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownEventError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def names(self) -> Iterator[str]:
        return iter(self._nodes)

    def node(self, name: str) -> EventNode:
        """Public node lookup (read-only use: inspection, window queries)."""
        return self._node(name)

    def undefine(self, name: str) -> None:
        """Remove an event that nothing depends on.

        Used by rule regeneration when a role (and its events) disappears.
        Refuses to remove an event that still feeds composite events.
        """
        node = self._node(name)
        if node.parents:
            parents = ", ".join(p.name for p, _ in node.parents)
            raise EventError(
                f"cannot undefine {name!r}: still feeds composite "
                f"event(s) {parents}"
            )
        if isinstance(node, OperatorNode):
            for child in node.children():
                child.parents = [
                    (p, s) for p, s in child.parents if p is not node
                ]
        node.detach()
        del self._nodes[name]
        self._listeners.pop(name, None)
        self.version += 1

    # -- event definition ----------------------------------------------------

    def define_primitive(self, name: str) -> PrimitiveEventNode:
        """Define a primitive (simple) event."""
        node = PrimitiveEventNode(self, name)
        self._register(node)
        return node

    def ensure_primitive(self, name: str) -> PrimitiveEventNode:
        """Define the primitive event if absent; return its node."""
        if name in self._nodes:
            node = self._nodes[name]
            if not isinstance(node, PrimitiveEventNode):
                raise EventError(
                    f"event {name!r} exists but is not primitive"
                )
            return node
        return self.define_primitive(name)

    def define_or(self, name: str, *children: str,
                  mode: ConsumptionMode | str = ConsumptionMode.RECENT
                  ) -> OrNode:
        if len(children) < 2:
            raise EventError("OR needs at least two constituent events")
        node = OrNode(self, name, tuple(self._node(c) for c in children),
                      ConsumptionMode.parse(mode))
        self._register(node)
        return node

    def define_and(self, name: str, left: str, right: str,
                   mode: ConsumptionMode | str = ConsumptionMode.RECENT
                   ) -> AndNode:
        node = AndNode(self, name, (self._node(left), self._node(right)),
                       ConsumptionMode.parse(mode))
        self._register(node)
        return node

    def define_sequence(self, name: str, first: str, second: str,
                        mode: ConsumptionMode | str = ConsumptionMode.RECENT
                        ) -> SequenceNode:
        node = SequenceNode(self, name,
                            (self._node(first), self._node(second)),
                            ConsumptionMode.parse(mode))
        self._register(node)
        return node

    def define_not(self, name: str, opener: str, forbidden: str,
                   closer: str,
                   mode: ConsumptionMode | str = ConsumptionMode.RECENT
                   ) -> NotNode:
        node = NotNode(self, name,
                       (self._node(opener), self._node(forbidden),
                        self._node(closer)),
                       ConsumptionMode.parse(mode))
        self._register(node)
        return node

    def define_aperiodic(self, name: str, opener: str, middle: str,
                         closer: str,
                         mode: ConsumptionMode | str = ConsumptionMode.RECENT
                         ) -> AperiodicNode:
        node = AperiodicNode(self, name,
                             (self._node(opener), self._node(middle),
                              self._node(closer)),
                             ConsumptionMode.parse(mode))
        self._register(node)
        return node

    def define_aperiodic_star(self, name: str, opener: str, middle: str,
                              closer: str) -> AperiodicStarNode:
        node = AperiodicStarNode(self, name,
                                 (self._node(opener), self._node(middle),
                                  self._node(closer)))
        self._register(node)
        return node

    def define_periodic(self, name: str, opener: str, period: float,
                        closer: str) -> PeriodicNode:
        node = PeriodicNode(self, name,
                            (self._node(opener), self._node(closer)),
                            period)
        self._register(node)
        return node

    def define_periodic_star(self, name: str, opener: str, period: float,
                             closer: str) -> PeriodicStarNode:
        node = PeriodicStarNode(self, name,
                                (self._node(opener), self._node(closer)),
                                period)
        self._register(node)
        return node

    def define_plus(self, name: str, source: str, delta: float) -> PlusNode:
        node = PlusNode(self, name, (self._node(source),), delta)
        self._register(node)
        return node

    def define_absolute(self, name: str,
                        expression: CalendarExpression | str) -> AbsoluteNode:
        if isinstance(expression, str):
            expression = CalendarExpression.parse(expression)
        node = AbsoluteNode(self, name, expression)
        self._register(node)
        return node

    def define_composite(self, name: str, operator: str, *children: str,
                         mode: ConsumptionMode | str = ConsumptionMode.RECENT
                         ) -> OperatorNode:
        """Generic definition by operator name (used by the policy DSL)."""
        operator = operator.upper()
        factory = OPERATOR_FACTORIES.get(operator)
        if factory is None:
            valid = ", ".join(sorted(OPERATOR_FACTORIES))
            raise EventError(
                f"unknown operator {operator!r}; expected one of: {valid}"
            )
        child_nodes = tuple(self._node(c) for c in children)
        node = factory(self, name, child_nodes, ConsumptionMode.parse(mode))
        self._register(node)
        return node

    # -- subscriptions & dispatch ---------------------------------------------

    def subscribe(self, name: str, listener: Listener) -> None:
        """Call ``listener(occurrence)`` on every detection of ``name``."""
        self._node(name)  # validate existence
        self._listeners.setdefault(name, []).append(listener)
        self.version += 1

    def unsubscribe(self, name: str, listener: Listener) -> bool:
        listeners = self._listeners.get(name, [])
        try:
            listeners.remove(listener)
            self.version += 1
            return True
        except ValueError:
            return False

    def subscribe_all(self, listener: Listener) -> None:
        """Observe every detection (used by the audit log)."""
        self._global_listeners.append(listener)
        self.version += 1

    def exclusive_listener(self, name: str) -> Listener | None:
        """The *only* listener a dispatch of ``name`` would reach, or
        None when there are zero, several, or any global observers.
        The decision plane uses this to prove the compiled fast path
        sees everything the interpreted dispatch would do."""
        if self._global_listeners:
            return None
        listeners = self._listeners.get(name)
        if listeners is None or len(listeners) != 1:
            return None
        return listeners[0]

    def fanout(self, name: str) -> int:
        """How many listeners a dispatch of ``name`` reaches right now
        (event listeners plus global observers) — the observability
        hub derives the fan-out distribution from this at collect
        time instead of paying a histogram update per dispatch."""
        listeners = self._listeners.get(name)
        return ((len(listeners) if listeners else 0)
                + len(self._global_listeners))

    def raise_event(self, name: str, /, **params: Any) -> Occurrence:
        """Signal a primitive event occurrence with keyword parameters.

        ``name`` is positional-only so parameters may themselves be
        called ``name`` (e.g. the ``context.update`` external event).
        """
        node = self._node(name)
        if not isinstance(node, PrimitiveEventNode):
            raise EventError(
                f"only primitive events can be raised; {name!r} is "
                f"{type(node).__name__}"
            )
        self._raised_count += 1
        obs = self.obs
        if obs is None:
            return node.signal(params)
        if not node.enabled:
            # signal() will not dispatch, so the raise must be counted
            # here; the normal path counts it in dispatch (event_flow).
            obs.event_raised(name)
        tracer = obs.tracer
        if not (obs.enabled and tracer.enabled):
            return node.signal(params)
        # A raise while another span is open is a cascade (a rule action
        # re-entered the detector); otherwise it is an external root.
        span = tracer.start(
            name, "cascade" if tracer.in_flight else "event",
            params=dict(params),
        )
        try:
            return node.signal(params)
        except Exception as exc:
            span.set_error(exc)
            raise
        finally:
            tracer.end(span)

    def dispatch(self, node: EventNode, occurrence: Occurrence) -> None:
        """Fan an occurrence out to listeners, observers and parents.

        Listener order: rule listeners for the event first (registration
        order — the rule manager layers priority on top), then global
        observers, then parent operator nodes.  Synchronous: cascaded
        raises complete before this call returns.
        """
        self._detected_count += 1
        obs = self.obs
        if obs is not None and obs.enabled:
            # inline counter bumps (see ObsHub.bind_node): dispatch is
            # the hottest call in the engine and a hook call per event
            # alone is measurable against the smoke-test budget
            pair = node.obs_pair
            if pair is None:
                pair = obs.bind_node(node)
            child = pair[0]
            if child is not None:
                child._value += 1
            pair[1]._value += 1
        listeners = self._listeners.get(node.name)
        for listener in list(listeners or ()):
            listener(occurrence)
        for listener in self._global_listeners:
            listener(occurrence)
        for parent, slot in node.parents:
            if parent.name in self._nodes:  # skip detached/undefined parents
                parent.on_child(slot, occurrence)

    # -- maintenance / introspection ------------------------------------------

    def reset_state(self) -> None:
        """Clear every node's buffered partial detections (not definitions)."""
        for node in self._nodes.values():
            node.reset()

    def state_snapshot(self) -> dict[str, dict]:
        """Partial-detection state of every node that holds any.

        Buffered initiators, open windows and armed countdowns —
        everything :meth:`reset_state` would discard — rendered
        JSON-serialisable so persistence can capture in-flight
        SEQUENCE/PLUS/APERIODIC/... detections across a restart.
        """
        state: dict[str, dict] = {}
        for name, node in self._nodes.items():
            node_state = node.snapshot_state()
            if node_state is not None:
                node_state["kind"] = type(node).__name__
                state[name] = node_state
        return state

    def state_restore(self, state: dict[str, dict]) -> int:
        """Rebuild partial detections from :meth:`state_snapshot` output.

        Nodes absent from the current graph (e.g. a role — and its
        events — deleted since the snapshot) are skipped, as are nodes
        whose operator kind changed.  Returns how many nodes restored.
        """
        restored = 0
        for name, node_state in state.items():
            node = self._nodes.get(name)
            if node is None or type(node).__name__ != node_state.get("kind"):
                continue
            node.restore_state(node_state)
            restored += 1
        return restored

    def stats(self) -> dict[str, int]:
        """Counters for benchmarking: events raised and detections made."""
        return {
            "defined": len(self._nodes),
            "raised": self._raised_count,
            "detected": self._detected_count,
        }

    def graph_edges(self) -> list[tuple[str, str]]:
        """(child, parent) edges of the event graph, for inspection."""
        edges = []
        for node in self._nodes.values():
            for parent, _slot in node.parents:
                edges.append((node.name, parent.name))
        return edges
