"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness used by the chaos suite and the ``repro-rbac health --chaos``
demo; it lives in the package (not under ``tests/``) so downstream
users can chaos-test their own policies.
"""

from repro.testing.faults import FaultInjector

__all__ = ["FaultInjector"]
