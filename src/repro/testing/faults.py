"""Deterministic fault-injection harness for the rule pipeline.

Chaos testing an *authorization* system has one extra requirement over
ordinary chaos testing: failures must be reproducible, because the
property under test ("no fault yields a spurious grant") is only
auditable when the exact fault schedule can be replayed.  The
:class:`FaultInjector` therefore derives every probabilistic decision
from a per-point ``random.Random(f"{seed}:{point}")`` stream — two
injectors with the same seed fire identical schedules regardless of
how many *other* points are armed or in which order they are hit.

Fault points are plain string names.  The harness can attach them to

* rule clauses, via :meth:`FaultInjector.instrument_rule` (a probe
  condition/action prepended to the W/T/E clause);
* any callable attribute, via :meth:`FaultInjector.patch` (e.g.
  ``repro.persistence._write_payload`` or
  ``Federation._home_is_authorized``);
* arbitrary code, by calling :meth:`FaultInjector.hit` directly.

A firing point either raises (``error``) or *stalls* (``stall=N``
advances the virtual clock without firing timers — a deterministic
model of a hung clause that deadline budgets must catch), or both.

**Network chaos.**  :class:`NetFaultPlan` extends the same
determinism discipline to the service plane's transport: it assigns
each request *index* a :class:`NetFault` (connection reset, stall,
partial write, garbage frame, or none) drawn from a per-index seeded
stream, so a chaos schedule replays identically regardless of worker
count or completion order.  The plan is transport-agnostic — it only
*decides*; ``repro.serve.loadgen.ChaosHttpClient`` executes the
faults against a live server and the chaos-serve CI job asserts the
server survives them fail-closed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.clock import VirtualClock
from repro.errors import TransientError
from repro.rules.rule import Action, Condition, OWTERule


class SimulatedCrash(BaseException):
    """A process death injected at a kill-point.

    Deliberately a ``BaseException``: a real crash is not an error any
    layer can handle, so it must sail past both the rule manager's
    containment boundary (``except Exception``) and
    ``retry_transient`` — reaching the test harness exactly the way
    ``SIGKILL`` would, with all in-memory state abandoned mid-step.
    """


@dataclass
class FaultPoint:
    """One armed fault point and its call/fire accounting."""

    name: str
    error: Callable[[], BaseException] | None = None
    rate: float | None = None
    at: frozenset[int] = frozenset()
    stall: float = 0.0
    limit: int | None = None
    calls: int = 0
    fires: int = 0
    rng: random.Random = field(default_factory=random.Random)

    def should_fire(self) -> bool:
        self.calls += 1
        if self.limit is not None and self.fires >= self.limit:
            return False
        if self.at:
            return self.calls in self.at
        if self.rate is not None:
            return self.rng.random() < self.rate
        return True  # armed with no schedule: fire every call


class FaultInjector:
    """Seeded registry of fault points, patches and rule probes.

    Usable as a context manager; leaving the ``with`` block restores
    every patched attribute and instrumented rule::

        with FaultInjector(seed=7, clock=engine.clock) as chaos:
            chaos.arm("persistence.write", rate=0.5)
            chaos.patch(persistence, "_write_payload",
                        "persistence.write")
            ...
    """

    def __init__(self, seed: int = 0,
                 clock: VirtualClock | None = None) -> None:
        self.seed = seed
        self.clock = clock
        self._points: dict[str, FaultPoint] = {}
        self._patches: list[tuple[Any, str, Any]] = []
        self._rules: list[tuple[OWTERule, str, tuple]] = []

    # -- arming --------------------------------------------------------------

    def arm(self, point: str, *,
            error: BaseException | type[BaseException] |
            Callable[[], BaseException] | None = TransientError,
            rate: float | None = None,
            at: Sequence[int] = (),
            stall: float = 0.0,
            limit: int | None = None) -> FaultPoint:
        """Arm ``point``.

        ``error`` may be an exception class, instance, factory, or
        ``None`` (stall-only point).  Exactly one scheduling mode:
        ``at`` (explicit 1-based call indices) beats ``rate``
        (per-call probability from the point's seeded stream) beats
        the default of firing on every call.  ``limit`` caps total
        fires; ``stall`` advances the injector's virtual clock by that
        many seconds on each fire (a deterministic "hang").
        """
        factory: Callable[[], BaseException] | None
        if error is None:
            factory = None
            if stall <= 0:
                raise ValueError(
                    f"point {point!r} armed with neither error nor stall")
        elif isinstance(error, BaseException):
            captured = error
            factory = lambda: captured  # noqa: E731
        elif isinstance(error, type):
            cls = error
            factory = lambda: cls(f"injected fault at {point}")  # noqa: E731
        else:
            factory = error
        spec = FaultPoint(
            name=point, error=factory, rate=rate,
            at=frozenset(at), stall=stall, limit=limit,
            rng=random.Random(f"{self.seed}:{point}"),
        )
        self._points[point] = spec
        return spec

    def disarm(self, point: str) -> None:
        self._points.pop(point, None)

    # -- firing --------------------------------------------------------------

    def hit(self, point: str) -> bool:
        """Record one pass through ``point``; stall/raise when due.

        Returns False (and costs nothing) when the point is not armed,
        so permanent probes in production-shaped code are safe.
        """
        spec = self._points.get(point)
        if spec is None or not spec.should_fire():
            return False
        spec.fires += 1
        if spec.stall > 0 and self.clock is not None:
            # a "hang": simulated time passes with no timers firing,
            # which is precisely what a deadline budget must detect
            self.clock.advance(spec.stall)
        if spec.error is not None:
            raise spec.error()
        return True

    def calls(self, point: str) -> int:
        spec = self._points.get(point)
        return spec.calls if spec else 0

    def fires(self, point: str) -> int:
        spec = self._points.get(point)
        return spec.fires if spec else 0

    # -- attachment ----------------------------------------------------------

    def patch(self, obj: Any, attr: str, point: str) -> None:
        """Wrap callable ``obj.attr`` so every call passes through
        ``point`` first (works on modules, classes and instances)."""
        original = getattr(obj, attr)

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            self.hit(point)
            return original(*args, **kwargs)

        self._patches.append((obj, attr, original))
        setattr(obj, attr, wrapper)

    def instrument_rule(self, rule: OWTERule, clause: str = "then",
                        point: str | None = None) -> str:
        """Prepend a fault probe to one OWTE clause of ``rule``.

        ``clause`` is ``"when"`` (a probe condition that passes through
        the point then answers TRUE), ``"then"`` or ``"else"`` (a probe
        action).  Returns the point name (default
        ``rule.<name>.<clause>``) — arm it separately with :meth:`arm`.
        """
        name = point or f"rule.{rule.name}.{clause}"
        if clause == "when":
            probe = Condition(f"chaos probe {name}",
                              lambda ctx: self.hit(name) or True)
            self._rules.append((rule, "conditions", tuple(rule.conditions)))
            rule.conditions = (probe, *rule.conditions)
        elif clause == "then":
            self._rules.append((rule, "actions", tuple(rule.actions)))
            rule.actions = (Action(f"chaos probe {name}",
                                   lambda ctx: self.hit(name)),
                            *rule.actions)
        elif clause == "else":
            self._rules.append(
                (rule, "alt_actions", tuple(rule.alt_actions)))
            rule.alt_actions = (Action(f"chaos probe {name}",
                                       lambda ctx: self.hit(name)),
                                *rule.alt_actions)
        else:
            raise ValueError(f"unknown clause {clause!r}")
        return name

    def restore(self) -> None:
        """Undo every patch and rule probe (points stay armed but are
        no longer reachable through instrumented code)."""
        while self._patches:
            obj, attr, original = self._patches.pop()
            setattr(obj, attr, original)
        while self._rules:
            rule, attr, original = self._rules.pop()
            setattr(rule, attr, original)

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.restore()

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict[str, dict[str, int]]:
        return {
            name: {"calls": spec.calls, "fires": spec.fires}
            for name, spec in sorted(self._points.items())
        }


# ---------------------------------------------------------------------------
# Network chaos: deterministic per-request transport faults
# ---------------------------------------------------------------------------

#: fault kinds a :class:`NetFaultPlan` can schedule
NET_FAULT_KINDS = ("reset", "stall", "partial", "garbage")


@dataclass(frozen=True)
class NetFault:
    """One transport fault assigned to one request index.

    ``kind`` is one of :data:`NET_FAULT_KINDS` or ``"none"``:

    * ``reset``   — abort the connection before the request is sent
      (the server sees a clean disconnect mid-keep-alive);
    * ``stall``   — hold the connection ``delay_s`` seconds before
      writing (slow-loris shaped; the server's read timeout must
      reap it, not hang on it);
    * ``partial`` — send the head claiming a body of N bytes, write
      only ``fraction`` of it, then abort (truncated body: the
      server must time the read out fail-closed, never block);
    * ``garbage`` — send a malformed frame (bad request line /
      non-numeric Content-Length); the server must answer 4xx and
      keep serving.
    """

    kind: str
    delay_s: float = 0.0
    fraction: float = 0.5


class NetFaultPlan:
    """Seeded request-index -> :class:`NetFault` schedule.

    Each index draws from ``random.Random(f"{seed}:net:{index}")``, so
    the schedule is a pure function of ``(seed, rates, index)`` —
    independent of how many workers replay it or in which order they
    finish, mirroring :class:`FaultInjector`'s per-point streams.
    ``rates`` maps fault kind -> probability; the remainder is fault-
    free.  ``counts`` tallies what was actually dealt.
    """

    def __init__(self, seed: int = 0,
                 rates: dict[str, float] | None = None,
                 stall_s: float = 0.25,
                 partial_fraction: float = 0.5) -> None:
        self.seed = seed
        self.rates = dict(rates) if rates is not None else {
            "reset": 0.05, "stall": 0.05, "partial": 0.05,
            "garbage": 0.05}
        unknown = set(self.rates) - set(NET_FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown net fault kinds {sorted(unknown)}")
        if sum(self.rates.values()) > 1.0:
            raise ValueError("net fault rates must sum to <= 1")
        self.stall_s = stall_s
        self.partial_fraction = partial_fraction
        self.counts: dict[str, int] = dict.fromkeys(
            (*NET_FAULT_KINDS, "none"), 0)

    def decide(self, index: int) -> NetFault:
        """The fault dealt to request ``index`` (deterministic)."""
        draw = random.Random(f"{self.seed}:net:{index}").random()
        edge = 0.0
        for kind in NET_FAULT_KINDS:
            edge += self.rates.get(kind, 0.0)
            if draw < edge:
                self.counts[kind] += 1
                return NetFault(kind, delay_s=self.stall_s,
                                fraction=self.partial_fraction)
        self.counts["none"] += 1
        return NetFault("none")
