"""The service plane: asyncio HTTP front-end over sharded engines.

``repro-rbac serve`` turns the library into a long-running server —
one :class:`~repro.engine.ActiveRBACEngine` (plus WAL and compiled
kernel) per tenant shard, routed by home domain, read lock-free via
RCU-style epoch swaps.  ``repro-rbac loadgen`` is the closed-loop
client that drives it and emits ``BENCH_serve.json``.

Layout:

* :mod:`repro.serve.shard` — :class:`Shard` (the published-kernel RCU
  surface, including the degraded frozen-kernel read path) and
  :class:`ShardRouter` (home-domain routing over the federation);
* :mod:`repro.serve.bulkhead` — per-shard overload isolation:
  :class:`Bulkhead`, :class:`CircuitBreaker`, :class:`ShardGuard`;
* :mod:`repro.serve.http` — :class:`ServeApp`, the zero-dependency
  HTTP/1.1 server with admission control, i/o timeouts, per-request
  deadlines, degraded-mode serving and graceful drain/flush/dump
  shutdown;
* :mod:`repro.serve.loadgen` — the keep-alive client (backoff
  reconnect), closed-loop saturation sweep, open-loop overload
  harness, chaos replay, and bench emission.
"""

from repro.serve.bulkhead import Bulkhead, CircuitBreaker, ShardGuard
from repro.serve.http import HttpError, ServeApp
from repro.serve.loadgen import (
    ChaosHttpClient,
    ChaosReport,
    HttpClient,
    LoadLevel,
    LoadReport,
    OverloadReport,
    run_chaos,
    run_loadgen,
    run_overload,
    write_bench,
    write_json,
)
from repro.serve.shard import ADMIN_OPS, Shard, ShardRouter

__all__ = [
    "ADMIN_OPS",
    "Bulkhead",
    "ChaosHttpClient",
    "ChaosReport",
    "CircuitBreaker",
    "HttpClient",
    "HttpError",
    "LoadLevel",
    "LoadReport",
    "OverloadReport",
    "ServeApp",
    "Shard",
    "ShardGuard",
    "ShardRouter",
    "run_chaos",
    "run_loadgen",
    "run_overload",
    "write_bench",
    "write_json",
]
