"""The service plane: asyncio HTTP front-end over sharded engines.

``repro-rbac serve`` turns the library into a long-running server —
one :class:`~repro.engine.ActiveRBACEngine` (plus WAL and compiled
kernel) per tenant shard, routed by home domain, read lock-free via
RCU-style epoch swaps.  ``repro-rbac loadgen`` is the closed-loop
client that drives it and emits ``BENCH_serve.json``.

Layout:

* :mod:`repro.serve.shard` — :class:`Shard` (the published-kernel RCU
  surface) and :class:`ShardRouter` (home-domain routing over the
  federation);
* :mod:`repro.serve.http` — :class:`ServeApp`, the zero-dependency
  HTTP/1.1 server with graceful drain/flush/dump shutdown;
* :mod:`repro.serve.loadgen` — the keep-alive client, saturation
  sweep, and bench emission.
"""

from repro.serve.http import HttpError, ServeApp
from repro.serve.loadgen import (
    HttpClient,
    LoadLevel,
    LoadReport,
    run_loadgen,
    write_bench,
)
from repro.serve.shard import ADMIN_OPS, Shard, ShardRouter

__all__ = [
    "ADMIN_OPS",
    "HttpClient",
    "HttpError",
    "LoadLevel",
    "LoadReport",
    "ServeApp",
    "Shard",
    "ShardRouter",
    "run_loadgen",
    "write_bench",
]
