"""Closed-loop load harness for the service plane.

``repro-rbac loadgen`` drives a running ``repro-rbac serve`` instance
with the deterministic service plan from
:func:`repro.workloads.generate_service_plan`: tens of thousands of
simulated users spread across the shards, issuing a mixed
check / batch-check / explain / metrics / health stream with periodic
control-plane mutations (grant/revoke toggles) interleaved — the
closed loop every ``concurrency`` worker runs is *send one request,
await the response, record the latency, repeat*.

Each concurrency level in ``levels`` replays a slice of the plan and
yields one :class:`LoadLevel` row (throughput, p50/p99, error count);
the whole run is summarized into ``BENCH_serve.json`` —
:func:`write_bench` — which the CI smoke job gates on a p99 budget.

The HTTP client is the same zero-dependency asyncio discipline as the
server: one persistent keep-alive connection per worker, requests
serialized on it (closed loop ⇒ no pipelining needed).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.workloads.generator import ServiceOp

__all__ = ["HttpClient", "LoadLevel", "LoadReport", "run_level",
           "run_loadgen", "write_bench", "percentile"]


class HttpClient:
    """Minimal HTTP/1.1 keep-alive client for one worker's closed loop."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def request(self, method: str, target: str,
                      payload: dict[str, Any] | None = None
                      ) -> tuple[int, Any]:
        """One request/response round trip on the persistent
        connection; reconnects once if the server closed it."""
        if self._writer is None:
            await self.connect()
        body = b""
        if payload is not None:
            body = json.dumps(payload,
                              separators=(",", ":")).encode("utf-8")
        head = (f"{method} {target} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                + (f"Content-Length: {len(body)}\r\n"
                   f"Content-Type: application/json\r\n"
                   if body else "")
                + "\r\n").encode("latin-1")
        try:
            self._writer.write(head + body)
            await self._writer.drain()
            return await self._read_response()
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            # server rotated the connection (drain, restart): retry once
            await self.close()
            await self.connect()
            self._writer.write(head + body)
            await self._writer.drain()
            return await self._read_response()

    async def _read_response(self) -> tuple[int, Any]:
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        if headers.get("content-type", "").startswith("application/json"):
            return status, json.loads(raw) if raw else None
        return status, raw.decode("utf-8", "replace")


@dataclass
class LoadLevel:
    """One saturation-curve point: a plan slice at fixed concurrency."""

    concurrency: int
    requests: int = 0
    errors: int = 0
    allowed: int = 0
    denied: int = 0
    swaps: int = 0
    elapsed_s: float = 0.0
    by_kind: dict[str, int] = field(default_factory=dict)
    latencies_us: list[float] = field(default_factory=list)

    @property
    def rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s else 0.0

    def p(self, q: float) -> float:
        return percentile(self.latencies_us, q)

    def to_dict(self) -> dict[str, Any]:
        return {
            "concurrency": self.concurrency,
            "requests": self.requests,
            "errors": self.errors,
            "allowed": self.allowed,
            "denied": self.denied,
            "admin_swaps": self.swaps,
            "elapsed_s": round(self.elapsed_s, 4),
            "rps": round(self.rps, 1),
            "p50_us": round(self.p(0.50), 1),
            "p90_us": round(self.p(0.90), 1),
            "p99_us": round(self.p(0.99), 1),
            "max_us": round(max(self.latencies_us, default=0.0), 1),
            "by_kind": dict(sorted(self.by_kind.items())),
        }


@dataclass
class LoadReport:
    """The whole run: one row per concurrency level."""

    users: int
    shards: int
    levels: list[LoadLevel] = field(default_factory=list)

    @property
    def overall_p50_us(self) -> float:
        return percentile(self._all_latencies(), 0.50)

    @property
    def overall_p99_us(self) -> float:
        return percentile(self._all_latencies(), 0.99)

    def _all_latencies(self) -> list[float]:
        merged: list[float] = []
        for level in self.levels:
            merged.extend(level.latencies_us)
        return merged

    def to_dict(self) -> dict[str, Any]:
        return {
            "simulated_users": self.users,
            "shards": self.shards,
            "requests": sum(level.requests for level in self.levels),
            "errors": sum(level.errors for level in self.levels),
            "admin_swaps": sum(level.swaps for level in self.levels),
            "p50_us": round(self.overall_p50_us, 1),
            "p99_us": round(self.overall_p99_us, 1),
            "saturation": [level.to_dict() for level in self.levels],
        }


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
    return ordered[rank]


def _op_request(op: ServiceOp) -> tuple[str, str, dict[str, Any] | None]:
    """Translate one plan op into (method, target, body)."""
    if op.kind == "check":
        return "POST", "/v1/check", dict(op.payload)
    if op.kind == "check_batch":
        return "POST", "/v1/check_batch", {"checks": list(op.payload["checks"])}
    if op.kind == "explain":
        args = op.payload
        query = "&".join(f"{k}={v}" for k, v in sorted(args.items()))
        return "GET", f"/v1/explain?{query}", None
    if op.kind == "metrics":
        return "GET", "/metrics", None
    if op.kind == "health":
        return "GET", "/healthz", None
    if op.kind == "admin":
        return "POST", "/v1/admin", dict(op.payload)
    raise ValueError(f"unknown service op kind {op.kind!r}")


async def run_level(host: str, port: int, ops: Sequence[ServiceOp],
                    concurrency: int) -> LoadLevel:
    """Replay ``ops`` closed-loop over ``concurrency`` connections."""
    level = LoadLevel(concurrency=concurrency)
    queue: asyncio.Queue[ServiceOp] = asyncio.Queue()
    for op in ops:
        queue.put_nowait(op)

    async def worker() -> None:
        client = HttpClient(host, port)
        await client.connect()
        try:
            while True:
                try:
                    op = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                method, target, body = _op_request(op)
                start = time.perf_counter()
                try:
                    status, payload = await client.request(
                        method, target, body)
                except (ConnectionError, asyncio.IncompleteReadError,
                        OSError):
                    level.errors += 1
                    continue
                level.latencies_us.append(
                    (time.perf_counter() - start) * 1e6)
                level.requests += 1
                level.by_kind[op.kind] = level.by_kind.get(op.kind, 0) + 1
                if status >= 500 or (status >= 400 and op.kind != "check"):
                    level.errors += 1
                elif op.kind == "check" and isinstance(payload, dict):
                    if payload.get("allowed"):
                        level.allowed += 1
                    else:
                        level.denied += 1
                elif op.kind == "admin" and isinstance(payload, dict):
                    if payload.get("swapped"):
                        level.swaps += 1
        finally:
            await client.close()

    start = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    level.elapsed_s = time.perf_counter() - start
    return level


async def run_loadgen(host: str, port: int, plan: Sequence[ServiceOp],
                      levels: Sequence[int] = (1, 4, 16),
                      users: int = 0, shards: int = 0) -> LoadReport:
    """The full saturation sweep: the plan is split evenly across the
    concurrency levels (each level replays a distinct slice, so session
    warm-up cost is spread rather than all charged to level one)."""
    report = LoadReport(users=users, shards=shards)
    if not plan or not levels:
        return report
    slice_size = max(1, len(plan) // len(levels))
    for index, concurrency in enumerate(levels):
        lo = index * slice_size
        hi = len(plan) if index == len(levels) - 1 else lo + slice_size
        ops = plan[lo:hi]
        if not ops:
            break
        report.levels.append(
            await run_level(host, port, ops, concurrency))
    return report


def write_bench(report: LoadReport, path: str,
                extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """Write ``BENCH_serve.json``; returns the payload written."""
    payload = report.to_dict()
    if extra:
        payload.update(extra)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
