"""Load and chaos harness for the service plane.

``repro-rbac loadgen`` drives a running ``repro-rbac serve`` instance
with the deterministic service plan from
:func:`repro.workloads.generate_service_plan`.  Three modes:

* **closed loop** (:func:`run_loadgen`) — every worker runs *send one
  request, await the response, record the latency, repeat* over a
  persistent keep-alive connection; one :class:`LoadLevel` row per
  concurrency level, summarized into ``BENCH_serve.json``;
* **open loop** (:func:`run_overload`) — requests are launched on a
  fixed wall-clock schedule (``rps``) whether or not earlier ones have
  answered, which is the only honest way to measure *overload*: a
  closed loop self-throttles to whatever the server admits, an open
  loop keeps offering and forces the server to shed.  The
  :class:`OverloadReport` separates goodput from shed rate and counts
  hung connections (a response that never came) and shed 503s missing
  their ``Retry-After``;
* **chaos** (:func:`run_chaos`) — replays the plan through a
  :class:`ChaosHttpClient` whose transport executes the deterministic
  :class:`~repro.testing.faults.NetFaultPlan` schedule (connection
  resets, slow-loris stalls, truncated bodies, garbage frames) and
  verifies the server answers fail-closed 4xx — or closes — without
  ever hanging or 500ing; summarized into ``BENCH_resilience.json``.

The HTTP client is the same zero-dependency asyncio discipline as the
server.  A worker whose connection is reset does not die: it
reconnects through :func:`repro.containment.retry_transient_async`
with jittered exponential backoff, and the retries are counted in the
report.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.containment import retry_transient_async
from repro.errors import RetryExhausted
from repro.testing.faults import NetFault, NetFaultPlan
from repro.workloads.generator import ServiceOp

__all__ = ["HttpClient", "ChaosHttpClient", "LoadLevel", "LoadReport",
           "OverloadReport", "ChaosReport", "run_level", "run_loadgen",
           "run_overload", "run_chaos", "write_bench", "write_json",
           "percentile"]

#: transport failures a client survives by reconnecting
_NET_ERRORS = (ConnectionError, asyncio.IncompleteReadError, OSError)


class HttpClient:
    """Minimal HTTP/1.1 keep-alive client for one worker's loop.

    A failed round trip (reset, mid-response EOF) is retried through
    :func:`~repro.containment.retry_transient_async` — fresh
    connection, jittered exponential backoff — up to ``attempts``
    total tries; only then does :class:`~repro.errors.RetryExhausted`
    reach the caller.  ``retries`` counts re-attempts, ``reconnects``
    counts connections established after the first.
    """

    def __init__(self, host: str, port: int, *,
                 attempts: int = 4,
                 base_delay: float = 0.02,
                 max_delay: float = 0.5,
                 jitter: Callable[[], float] | None = None) -> None:
        self.host = host
        self.port = port
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.retries = 0
        self.reconnects = 0
        self.last_headers: dict[str, str] = {}
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._connected_once = False

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        if self._connected_once:
            self.reconnects += 1
        self._connected_once = True

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except _NET_ERRORS:
                pass
            self._writer = None
            self._reader = None

    async def request(self, method: str, target: str,
                      payload: dict[str, Any] | None = None,
                      headers: dict[str, str] | None = None
                      ) -> tuple[int, Any]:
        """One round trip, surviving resets by backoff-reconnect."""

        async def attempt() -> tuple[int, Any]:
            return await self._roundtrip(method, target, payload,
                                         headers)

        def note(_attempt: int, _exc: BaseException) -> None:
            self.retries += 1

        return await retry_transient_async(
            attempt, attempts=self.attempts,
            base_delay=self.base_delay, max_delay=self.max_delay,
            retry_on=_NET_ERRORS, jitter=self.jitter, on_retry=note)

    async def _roundtrip(self, method: str, target: str,
                         payload: dict[str, Any] | None = None,
                         headers: dict[str, str] | None = None
                         ) -> tuple[int, Any]:
        """One unretried request/response on the persistent
        connection; transport failures close it and propagate."""
        if self._writer is None:
            await self.connect()
        body = b""
        if payload is not None:
            body = json.dumps(payload,
                              separators=(",", ":")).encode("utf-8")
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in (headers or {}).items())
        head = (f"{method} {target} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                + extra
                + (f"Content-Length: {len(body)}\r\n"
                   f"Content-Type: application/json\r\n"
                   if body else "")
                + "\r\n").encode("latin-1")
        try:
            self._writer.write(head + body)
            await self._writer.drain()
            return await self._read_response()
        except _NET_ERRORS:
            await self.close()
            raise

    async def _read_response(self) -> tuple[int, Any]:
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        self.last_headers = headers
        length = int(headers.get("content-length", "0") or "0")
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        if headers.get("content-type", "").startswith("application/json"):
            return status, json.loads(raw) if raw else None
        return status, raw.decode("utf-8", "replace")


class ChaosHttpClient(HttpClient):
    """An :class:`HttpClient` whose transport misbehaves on schedule.

    Each :meth:`request` consults the
    :class:`~repro.testing.faults.NetFaultPlan` for its request index:
    fault-free requests ride the normal keep-alive path; faulty ones
    run on a *fresh* connection (so the persistent stream never
    desyncs) and execute the scheduled abuse — reset, slow-loris
    stall, truncated body, or garbage frame.  For faults the return
    value is ``(status, {"fault": kind, ...})`` where ``status`` is
    the server's answer (fail-closed 4xx expected), or ``-1`` when
    the server (correctly) just closed the connection.  A server that
    neither answers nor closes within ``response_timeout`` counts in
    ``hung`` — the one outcome the chaos gate forbids.
    """

    def __init__(self, host: str, port: int, plan: NetFaultPlan, *,
                 response_timeout: float = 5.0, **kwargs: Any) -> None:
        super().__init__(host, port, **kwargs)
        self.plan = plan
        self.response_timeout = response_timeout
        self.index = 0
        self.hung = 0

    async def request(self, method: str, target: str,
                      payload: dict[str, Any] | None = None,
                      headers: dict[str, str] | None = None
                      ) -> tuple[int, Any]:
        fault = self.plan.decide(self.index)
        self.index += 1
        if fault.kind == "none":
            return await super().request(method, target, payload,
                                         headers)
        return await self._execute_fault(fault, method, target, payload)

    async def _execute_fault(self, fault: NetFault, method: str,
                             target: str,
                             payload: dict[str, Any] | None
                             ) -> tuple[int, Any]:
        reader, writer = await asyncio.open_connection(self.host,
                                                       self.port)
        try:
            if fault.kind == "reset":
                # abort mid-request-line: the server sees a client
                # that vanished and must just reap the connection
                writer.write(f"{method} {target} HT".encode("latin-1"))
                writer.transport.abort()
                return -1, {"fault": "reset"}
            if fault.kind == "garbage":
                writer.write(b"\x00\xfe GARBAGE\x01\r\n\r\n")
                await writer.drain()
                return await self._expect_response(reader, fault.kind)
            if fault.kind == "stall":
                # slow-loris: a head that never completes; the read
                # timeout must reap it (408), not hang on it
                writer.write(f"{method} {target} HTTP/1.1\r\n"
                             f"Host: sl".encode("latin-1"))
                await writer.drain()
                await asyncio.sleep(fault.delay_s)
                return await self._expect_response(reader, fault.kind)
            # truncated body: the head promises more bytes than the
            # client will ever send
            body = json.dumps(payload or {"pad": "x" * 64},
                              separators=(",", ":")).encode("utf-8")
            sent = body[:max(0, int(len(body) * fault.fraction))]
            head = (f"{method} {target} HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"\r\n").encode("latin-1")
            writer.write(head + sent)
            await writer.drain()
            return await self._expect_response(reader, fault.kind)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except _NET_ERRORS:
                pass

    async def _expect_response(self, reader: asyncio.StreamReader,
                               kind: str) -> tuple[int, Any]:
        """The server must answer or close — hanging is the failure."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.response_timeout)
        except asyncio.TimeoutError:
            self.hung += 1
            return -1, {"fault": kind, "hung": True}
        except _NET_ERRORS:
            return -1, {"fault": kind, "closed": True}
        status = int(head.split(b" ", 2)[1])
        return status, {"fault": kind}


@dataclass
class LoadLevel:
    """One saturation-curve point: a plan slice at fixed concurrency."""

    concurrency: int
    requests: int = 0
    errors: int = 0
    allowed: int = 0
    denied: int = 0
    swaps: int = 0
    reconnects: int = 0
    retries: int = 0
    elapsed_s: float = 0.0
    by_kind: dict[str, int] = field(default_factory=dict)
    latencies_us: list[float] = field(default_factory=list)

    @property
    def rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s else 0.0

    def p(self, q: float) -> float:
        return percentile(self.latencies_us, q)

    def to_dict(self) -> dict[str, Any]:
        return {
            "concurrency": self.concurrency,
            "requests": self.requests,
            "errors": self.errors,
            "allowed": self.allowed,
            "denied": self.denied,
            "admin_swaps": self.swaps,
            "reconnects": self.reconnects,
            "retries": self.retries,
            "elapsed_s": round(self.elapsed_s, 4),
            "rps": round(self.rps, 1),
            "p50_us": round(self.p(0.50), 1),
            "p90_us": round(self.p(0.90), 1),
            "p99_us": round(self.p(0.99), 1),
            "max_us": round(max(self.latencies_us, default=0.0), 1),
            "by_kind": dict(sorted(self.by_kind.items())),
        }


@dataclass
class LoadReport:
    """The whole run: one row per concurrency level."""

    users: int
    shards: int
    levels: list[LoadLevel] = field(default_factory=list)

    @property
    def overall_p50_us(self) -> float:
        return percentile(self._all_latencies(), 0.50)

    @property
    def overall_p99_us(self) -> float:
        return percentile(self._all_latencies(), 0.99)

    def _all_latencies(self) -> list[float]:
        merged: list[float] = []
        for level in self.levels:
            merged.extend(level.latencies_us)
        return merged

    def to_dict(self) -> dict[str, Any]:
        return {
            "simulated_users": self.users,
            "shards": self.shards,
            "requests": sum(level.requests for level in self.levels),
            "errors": sum(level.errors for level in self.levels),
            "admin_swaps": sum(level.swaps for level in self.levels),
            "reconnects": sum(level.reconnects
                              for level in self.levels),
            "retries": sum(level.retries for level in self.levels),
            "p50_us": round(self.overall_p50_us, 1),
            "p99_us": round(self.overall_p99_us, 1),
            "saturation": [level.to_dict() for level in self.levels],
        }


@dataclass
class OverloadReport:
    """Open-loop offered load vs. what the server did with it.

    ``admitted`` requests got a real answer (200 grant/deny or an
    engine 4xx); ``shed`` got the admission-control/bulkhead/breaker
    503 (each checked for its ``Retry-After``); ``errors`` are
    transport failures or non-shed 5xx; ``hung`` never answered
    within ``client_timeout`` — the gate requires zero of those.
    Latencies cover admitted requests only: shedding is supposed to
    be fast, and folding it in would flatter the percentiles.
    """

    offered: int
    target_rps: float
    elapsed_s: float = 0.0
    admitted: int = 0
    goodput: int = 0
    served_4xx: int = 0
    shed: int = 0
    errors: int = 0
    hung: int = 0
    retry_after_missing: int = 0
    latencies_us: list[float] = field(default_factory=list)

    @property
    def goodput_rps(self) -> float:
        return self.goodput / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def p(self, q: float) -> float:
        return percentile(self.latencies_us, q)

    def to_dict(self) -> dict[str, Any]:
        return {
            "offered": self.offered,
            "target_rps": round(self.target_rps, 1),
            "elapsed_s": round(self.elapsed_s, 4),
            "admitted": self.admitted,
            "goodput": self.goodput,
            "goodput_rps": round(self.goodput_rps, 1),
            "served_4xx": self.served_4xx,
            "shed": self.shed,
            "shed_rate": round(self.shed_rate, 4),
            "errors": self.errors,
            "hung": self.hung,
            "retry_after_missing": self.retry_after_missing,
            "admitted_p50_us": round(self.p(0.50), 1),
            "admitted_p99_us": round(self.p(0.99), 1),
        }


@dataclass
class ChaosReport:
    """One chaos replay: what the fault schedule did to the server."""

    ops: int = 0
    clean_ok: int = 0            # fault-free requests answered sanely
    clean_errors: int = 0
    faults: dict[str, int] = field(default_factory=dict)
    failclosed_4xx: int = 0      # faults answered 400/408/413
    closed: int = 0              # faults the server answered by EOF
    server_5xx: int = 0          # must stay 0
    hung: int = 0                # must stay 0
    retries: int = 0
    alive_after: bool = False    # the post-run liveness probe

    def to_dict(self) -> dict[str, Any]:
        return {
            "ops": self.ops,
            "clean_ok": self.clean_ok,
            "clean_errors": self.clean_errors,
            "faults": dict(sorted(self.faults.items())),
            "failclosed_4xx": self.failclosed_4xx,
            "closed": self.closed,
            "server_5xx": self.server_5xx,
            "hung": self.hung,
            "retries": self.retries,
            "alive_after": self.alive_after,
        }


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
    return ordered[rank]


def _op_request(op: ServiceOp) -> tuple[str, str, dict[str, Any] | None]:
    """Translate one plan op into (method, target, body)."""
    if op.kind == "check":
        return "POST", "/v1/check", dict(op.payload)
    if op.kind == "check_batch":
        return "POST", "/v1/check_batch", {"checks": list(op.payload["checks"])}
    if op.kind == "explain":
        args = op.payload
        query = "&".join(f"{k}={v}" for k, v in sorted(args.items()))
        return "GET", f"/v1/explain?{query}", None
    if op.kind == "metrics":
        return "GET", "/metrics", None
    if op.kind == "health":
        return "GET", "/healthz", None
    if op.kind == "admin":
        return "POST", "/v1/admin", dict(op.payload)
    raise ValueError(f"unknown service op kind {op.kind!r}")


async def run_level(host: str, port: int, ops: Sequence[ServiceOp],
                    concurrency: int, seed: int = 0) -> LoadLevel:
    """Replay ``ops`` closed-loop over ``concurrency`` connections."""
    level = LoadLevel(concurrency=concurrency)
    queue: asyncio.Queue[ServiceOp] = asyncio.Queue()
    for op in ops:
        queue.put_nowait(op)

    async def worker(worker_id: int) -> None:
        # per-worker seeded jitter: reconnect storms de-synchronize
        # deterministically rather than hammering in lockstep
        jitter = random.Random(f"{seed}:client:{worker_id}").random
        client = HttpClient(host, port, jitter=jitter)
        await client.connect()
        try:
            while True:
                try:
                    op = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                method, target, body = _op_request(op)
                start = time.perf_counter()
                try:
                    status, payload = await client.request(
                        method, target, body)
                except RetryExhausted:
                    level.errors += 1
                    continue
                level.latencies_us.append(
                    (time.perf_counter() - start) * 1e6)
                level.requests += 1
                level.by_kind[op.kind] = level.by_kind.get(op.kind, 0) + 1
                if status >= 500 or (status >= 400 and op.kind != "check"):
                    level.errors += 1
                elif op.kind == "check" and isinstance(payload, dict):
                    if payload.get("allowed"):
                        level.allowed += 1
                    else:
                        level.denied += 1
                elif op.kind == "admin" and isinstance(payload, dict):
                    if payload.get("swapped"):
                        level.swaps += 1
        finally:
            level.reconnects += client.reconnects
            level.retries += client.retries
            await client.close()

    start = time.perf_counter()
    await asyncio.gather(*(worker(i) for i in range(concurrency)))
    level.elapsed_s = time.perf_counter() - start
    return level


async def run_loadgen(host: str, port: int, plan: Sequence[ServiceOp],
                      levels: Sequence[int] = (1, 4, 16),
                      users: int = 0, shards: int = 0,
                      seed: int = 0) -> LoadReport:
    """The full saturation sweep: the plan is split evenly across the
    concurrency levels (each level replays a distinct slice, so session
    warm-up cost is spread rather than all charged to level one)."""
    report = LoadReport(users=users, shards=shards)
    if not plan or not levels:
        return report
    slice_size = max(1, len(plan) // len(levels))
    for index, concurrency in enumerate(levels):
        lo = index * slice_size
        hi = len(plan) if index == len(levels) - 1 else lo + slice_size
        ops = plan[lo:hi]
        if not ops:
            break
        report.levels.append(
            await run_level(host, port, ops, concurrency, seed=seed))
    return report


async def run_overload(host: str, port: int, ops: Sequence[ServiceOp],
                       rps: float, *,
                       client_timeout: float = 5.0,
                       max_outstanding: int = 1024) -> OverloadReport:
    """Offer ``ops`` open-loop at ``rps`` and tally the server's triage.

    Request *i* launches at ``t0 + i/rps`` regardless of how many
    predecessors are still in flight (bounded only by
    ``max_outstanding`` as a client-side safety valve), each on its
    own connection with no retries — a retry would silently re-offer
    load and corrupt the shed-rate arithmetic.
    """
    report = OverloadReport(offered=len(ops), target_rps=rps)
    if not ops or rps <= 0:
        return report
    gate = asyncio.Semaphore(max_outstanding)
    loop = asyncio.get_running_loop()
    t0 = loop.time()

    async def one(op: ServiceOp) -> None:
        async with gate:
            client = HttpClient(host, port, attempts=1)
            method, target, body = _op_request(op)
            start = loop.time()
            try:
                status, payload = await asyncio.wait_for(
                    client._roundtrip(method, target, body),
                    client_timeout)
            except asyncio.TimeoutError:
                report.hung += 1
                if client._writer is not None:
                    client._writer.transport.abort()
                return
            except _NET_ERRORS:
                report.errors += 1
                return
            finally:
                await client.close()
            elapsed_us = (loop.time() - start) * 1e6
            if (status == 503 and isinstance(payload, dict)
                    and payload.get("error") in ("shed", "breaker")):
                report.shed += 1
                if "retry-after" not in client.last_headers:
                    report.retry_after_missing += 1
            elif status >= 500:
                report.errors += 1
            else:
                report.admitted += 1
                report.latencies_us.append(elapsed_us)
                if status == 200:
                    report.goodput += 1
                else:
                    report.served_4xx += 1

    tasks = []
    for index, op in enumerate(ops):
        delay = t0 + index / rps - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(op)))
    await asyncio.gather(*tasks)
    report.elapsed_s = loop.time() - t0
    return report


async def run_chaos(host: str, port: int, ops: Sequence[ServiceOp],
                    plan: NetFaultPlan, *,
                    response_timeout: float = 5.0) -> ChaosReport:
    """Replay ``ops`` sequentially through the chaos transport.

    Sequential on purpose: the fault schedule is per request index,
    so a single client replays it exactly; the properties under test
    (fail-closed answers, no hangs, the server outlives the abuse)
    are about the server's per-connection discipline, not throughput.
    """
    report = ChaosReport(ops=len(ops))
    client = ChaosHttpClient(host, port, plan,
                             response_timeout=response_timeout)
    for op in ops:
        method, target, body = _op_request(op)
        try:
            status, payload = await client.request(method, target, body)
        except RetryExhausted:
            report.clean_errors += 1
            continue
        fault = (payload or {}).get("fault") if isinstance(payload, dict) \
            else None
        if fault is not None:
            report.faults[fault] = report.faults.get(fault, 0) + 1
            if status >= 500:
                report.server_5xx += 1
            elif 400 <= status < 500:
                report.failclosed_4xx += 1
            elif status == -1 and not payload.get("hung"):
                report.closed += 1
        elif status >= 500:
            report.clean_errors += 1
        else:
            report.clean_ok += 1
    await client.close()
    report.hung = client.hung
    report.retries = client.retries
    # liveness probe: the server must still answer after the abuse
    # (503-degraded still counts as alive — that is the breaker tal-
    # king, not a corpse)
    probe = HttpClient(host, port, attempts=2)
    try:
        status, _ = await probe.request("GET", "/healthz")
        report.alive_after = status in (200, 503)
    except RetryExhausted:
        report.alive_after = False
    finally:
        await probe.close()
    return report


def write_json(payload: dict[str, Any], path: str) -> dict[str, Any]:
    """Write one bench payload as pretty JSON; returns it."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def write_bench(report: LoadReport, path: str,
                extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """Write ``BENCH_serve.json``; returns the payload written."""
    payload = report.to_dict()
    if extra:
        payload.update(extra)
    return write_json(payload, path)
