"""Zero-dependency asyncio HTTP front-end for the shard router.

``repro-rbac serve`` boots a :class:`ServeApp` — a small HTTP/1.1
server written directly on :func:`asyncio.start_server` (no external
web framework; the whole repo stays stdlib-only):

====================  ====================================================
``POST /v1/check``    one access decision ``{user, operation, object,
                      domain?, purpose?}`` -> ``{allowed, path, epoch}``
``POST /v1/check_batch``  ``{checks: [...]}`` looped over single checks
                      (the vectorized kernel path is a later PR)
``GET  /v1/explain``  read-only derivation (query-string parameters)
``POST /v1/admin``    control-plane mutation -> epoch swap summary
``GET  /metrics``     server-plane Prometheus exposition; with
                      ``?shard=NAME`` the shard engine's full registry
``GET  /healthz``     aggregate ``engine.health()`` + kernel epoch /
                      staleness per shard (503 when degraded)
====================  ====================================================

All request handling runs on the event loop thread: a single check is
~tens of microseconds, so the loop *is* the concurrency model — no
locks anywhere, and control-plane mutations interleave between
requests, never inside one.  Readers consult each shard's published
kernel reference (see ``serve/shard.py``); mutations recompile on the
control plane and publish by one reference swap, so no request ever
blocks on a recompile.

**Graceful shutdown** (SIGTERM/SIGINT, or :meth:`ServeApp.shutdown`):
stop accepting, drain in-flight requests (bounded by ``drain_grace``),
flush every shard's WAL group-commit buffer, and dump every flight
recorder — the forensic ring survives the exit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    AccessDenied,
    AdministrationError,
    ReproError,
    RetryExhausted,
    UnknownRoleError,
    UnknownUserError,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.shard import ShardRouter

__all__ = ["ServeApp", "HttpError", "parse_request_head",
           "response_bytes"]

#: request-head size bound (request line + headers)
MAX_HEAD_BYTES = 16 * 1024
#: request-body size bound
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            403: "Forbidden", 405: "Method Not Allowed",
            413: "Payload Too Large", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: serve-plane latency buckets in ns: 10us .. 1s
SERVE_LATENCY_BUCKETS_NS = (
    1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6,
    1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8, 1e9,
)


class HttpError(Exception):
    """A request the server answers with an error status + JSON body."""

    def __init__(self, status: int, message: str,
                 error: str = "http") -> None:
        super().__init__(message)
        self.status = status
        self.error = error


def parse_request_head(head: bytes) -> tuple[str, str, dict[str, str]]:
    """Parse ``METHOD TARGET HTTP/1.x`` + headers from a request head.

    Header names are lower-cased; duplicate headers keep the last
    value (none of the headers this server reads repeat legally).
    Raises :class:`HttpError` (400) on anything malformed.
    """
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable request head")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


def response_bytes(status: int, payload: dict[str, Any] | str,
                   close: bool = False) -> bytes:
    """One full HTTP/1.1 response (JSON unless ``payload`` is text)."""
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        ctype = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        ctype = "application/json"
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body


def _error_status(exc: ReproError) -> int:
    """Map engine errors onto HTTP statuses: unknown entities are 404,
    fail-closed conditions (including an unreachable home domain) and
    denials are 403."""
    if isinstance(exc, (UnknownUserError, UnknownRoleError)):
        return 404
    if isinstance(exc, AdministrationError):
        return 404 if "unknown" in str(exc).lower() else 400
    if isinstance(exc, (AccessDenied, RetryExhausted)):
        return 403
    return 400


class ServeApp:
    """The service plane: router + HTTP surface + server-side metrics."""

    def __init__(self, router: ShardRouter, *,
                 drain_grace: float = 5.0,
                 flightrec_dir: str | None = None) -> None:
        self.router = router
        self.drain_grace = drain_grace
        #: where shutdown flight-recorder dumps land; None keeps each
        #: engine's own configured/auto directory
        self.flightrec_dir = flightrec_dir
        if flightrec_dir is not None:
            for shard in router.shards():
                shard.engine.flight.dump_dir = flightrec_dir
        self._server: asyncio.base_events.Server | None = None
        self._inflight = 0
        self._draining = False
        self._shutdown_summary: dict[str, Any] | None = None
        self.port: int | None = None

        # -- server-plane metrics (the shard engines keep their own
        # registries; /metrics?shard=NAME exposes those verbatim) ------
        m = self.metrics = MetricsRegistry()
        self._requests = m.counter(
            "repro_serve_requests_total",
            "HTTP requests served, by route and status",
            ("route", "status"))
        self._request_ns = m.histogram(
            "repro_serve_request_ns",
            "request handling latency in ns, by route", ("route",),
            buckets=SERVE_LATENCY_BUCKETS_NS)
        self._inflight_gauge = m.gauge(
            "repro_serve_inflight_requests",
            "requests currently being handled")
        self._connections = m.counter(
            "repro_serve_connections_total",
            "client connections accepted")
        self._shard_epoch = m.gauge(
            "repro_serve_shard_epoch",
            "published kernel policy epoch, by shard", ("shard",))
        self._shard_swaps = m.gauge(
            "repro_serve_shard_epoch_swaps_total",
            "kernel reference swaps published, by shard", ("shard",))
        self._shard_checks = m.gauge(
            "repro_serve_shard_checks_total",
            "access checks served, by shard", ("shard",))
        self._shard_sessions = m.gauge(
            "repro_serve_shard_sessions",
            "live served sessions, by shard", ("shard",))
        self._shard_decisions = m.gauge(
            "repro_serve_shard_decisions_total",
            "engine checkAccess decisions, mirrored per shard",
            ("shard", "decision"))
        m.add_collector(self._collect_shards)

    def _collect_shards(self) -> None:
        self._inflight_gauge.set(self._inflight)
        for shard in self.router.shards():
            name = shard.name
            self._shard_epoch.labels(name).set(shard.epoch)
            self._shard_swaps.labels(name).set(shard.swaps)
            self._shard_checks.labels(name).set(shard.checks)
            self._shard_sessions.labels(name).set(shard.sessions())
            decisions = shard.engine.obs.decisions
            for outcome in ("grant", "deny"):
                self._shard_decisions.labels(name, outcome).set(
                    decisions.labels(outcome).value)

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.base_events.Server:
        """Bind and start serving; ``port=0`` picks an ephemeral port
        (read it back from :attr:`port`)."""
        self._server = await asyncio.start_server(
            self._serve_connection, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self._server

    async def shutdown(self) -> dict[str, Any]:
        """Drain, flush, dump — the graceful exit sequence.

        Idempotent; returns (and caches) the shutdown summary:
        ``drained`` says whether every in-flight request completed
        inside ``drain_grace``, ``wal_flushed`` counts group-commit
        buffers fsynced, ``flight_dumps`` maps shard -> dump path.
        """
        if self._shutdown_summary is not None:
            return self._shutdown_summary
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_grace
        while self._inflight and loop.time() < deadline:
            await asyncio.sleep(0.005)
        wal_flushed = 0
        flight_dumps: dict[str, str | None] = {}
        for shard in self.router.shards():
            if shard.durability is not None:
                # flush the group-commit buffer: a drained request's
                # commit must not die in an unsynced batch
                if shard.durability.wal.sync():
                    wal_flushed += 1
            # the shard name is part of the dump cause: every shard's
            # recorder keeps its own dump counter, so a shared
            # --flightrec-dir would otherwise collide on the filename
            flight_dumps[shard.name] = shard.engine.dump_flight(
                f"serve.shutdown.{shard.name}",
                directory=self.flightrec_dir)
            shard.engine.audit.record("serve.shutdown", shard=shard.name)
        self._shutdown_summary = {
            "drained": self._inflight == 0,
            "inflight": self._inflight,
            "wal_flushed": wal_flushed,
            "flight_dumps": flight_dumps,
        }
        return self._shutdown_summary

    async def run(self, host: str = "127.0.0.1", port: int = 0,
                  port_file: str | None = None,
                  out=None) -> dict[str, Any]:
        """Serve until SIGTERM/SIGINT, then shut down gracefully.

        The daemon entry point behind ``repro-rbac serve``: binds,
        optionally writes the bound port to ``port_file`` (ephemeral
        ports are how the CI smoke job finds the server), installs
        signal handlers, and blocks until a signal trips the drain.
        """
        out = out if out is not None else sys.stdout
        await self.start(host, port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        # the port file is the external readiness signal (the smoke
        # harness SIGTERMs as soon as it appears) — write it only
        # after the handlers are armed, or a prompt signal kills the
        # process with the default disposition instead of draining
        if port_file:
            with open(port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{self.port}\n")
        print(f"serving {len(self.router)} shard(s) on "
              f"http://{host}:{self.port}", file=out, flush=True)
        await stop.wait()
        summary = await self.shutdown()
        print("shutdown: " + json.dumps(summary, sort_keys=True),
              file=out, flush=True)
        return summary

    # -- connection handling -----------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._connections._value += 1
        try:
            while not self._draining:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client went away between requests
                except asyncio.LimitOverrunError:
                    writer.write(response_bytes(
                        413, {"error": "http",
                              "message": "request head too large"},
                        close=True))
                    await writer.drain()
                    return
                if len(head) > MAX_HEAD_BYTES:
                    writer.write(response_bytes(
                        413, {"error": "http",
                              "message": "request head too large"},
                        close=True))
                    await writer.drain()
                    return
                close = await self._serve_request(head, reader, writer)
                if close:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_request(self, head: bytes,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> bool:
        """Handle one request; returns True when the connection must
        close (protocol error or drain)."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        route = "?"
        self._inflight += 1
        try:
            try:
                method, target, headers = parse_request_head(head)
                parts = urlsplit(target)
                route = parts.path
                length = int(headers.get("content-length", "0") or "0")
                if length > MAX_BODY_BYTES:
                    raise HttpError(413, "request body too large")
                body = await reader.readexactly(length) if length else b""
                status, payload = self._dispatch(
                    method, parts.path,
                    {k: v[-1] for k, v in
                     parse_qs(parts.query).items()},
                    body)
            except HttpError as exc:
                status, payload = exc.status, {
                    "error": exc.error, "message": str(exc)}
            except (asyncio.IncompleteReadError, ConnectionError):
                return True
            except ReproError as exc:
                status = _error_status(exc)
                payload = {"error": type(exc).__name__,
                           "message": str(exc)}
            except Exception as exc:  # noqa: BLE001 - the server must
                # answer; a handler bug becomes a 500, not a dead socket
                status, payload = 500, {"error": type(exc).__name__,
                                        "message": str(exc)}
            close = self._draining
            writer.write(response_bytes(status, payload, close=close))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return True
            self._requests.labels(route, str(status))._value += 1
            hist = self._request_ns.labels(route)
            hist.observe((loop.time() - start) * 1e9)
            return close
        finally:
            self._inflight -= 1

    # -- routing -----------------------------------------------------------

    def _dispatch(self, method: str, path: str, query: dict[str, str],
                  body: bytes) -> tuple[int, dict[str, Any] | str]:
        if path == "/v1/check":
            self._require(method, "POST")
            return self._handle_check(self._json(body))
        if path == "/v1/check_batch":
            self._require(method, "POST")
            return self._handle_check_batch(self._json(body))
        if path == "/v1/explain":
            self._require(method, "GET")
            return self._handle_explain(query)
        if path == "/v1/admin":
            self._require(method, "POST")
            return self._handle_admin(self._json(body))
        if path == "/metrics":
            self._require(method, "GET")
            return self._handle_metrics(query)
        if path == "/healthz":
            self._require(method, "GET")
            return self._handle_healthz()
        raise HttpError(404, f"no route {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(405, f"use {expected}")

    @staticmethod
    def _json(body: bytes) -> dict[str, Any]:
        if not body:
            raise HttpError(400, "missing JSON body")
        try:
            payload = json.loads(body)
        except ValueError as exc:
            raise HttpError(400, f"bad JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        return payload

    @staticmethod
    def _field(payload: dict[str, Any], name: str) -> str:
        value = payload.get(name)
        if not isinstance(value, str) or not value:
            raise HttpError(400, f"missing field {name!r}")
        return value

    # -- handlers ----------------------------------------------------------

    def _check_args(self, payload: dict[str, Any]) -> dict[str, Any]:
        return {
            "user": self._field(payload, "user"),
            "operation": self._field(payload, "operation"),
            "obj": self._field(payload, "object"),
            "domain": payload.get("domain"),
            "purpose": payload.get("purpose"),
        }

    def _handle_check(self, payload: dict[str, Any]
                      ) -> tuple[int, dict[str, Any]]:
        return 200, self.router.check(**self._check_args(payload))

    def _handle_check_batch(self, payload: dict[str, Any]
                            ) -> tuple[int, dict[str, Any]]:
        checks = payload.get("checks")
        if not isinstance(checks, list):
            raise HttpError(400, "field 'checks' must be a list")
        results = []
        for index, item in enumerate(checks):
            if not isinstance(item, dict):
                raise HttpError(400, f"checks[{index}] must be an object")
            # a per-item engine error fails that item, not the batch
            try:
                results.append(self.router.check(**self._check_args(item)))
            except ReproError as exc:
                results.append({"allowed": False,
                                "error": type(exc).__name__,
                                "message": str(exc)})
        return 200, {"count": len(results), "results": results}

    def _handle_explain(self, query: dict[str, str]
                        ) -> tuple[int, dict[str, Any]]:
        for field in ("user", "operation", "object"):
            if not query.get(field):
                raise HttpError(400, f"missing query parameter {field!r}")
        return 200, self.router.explain(
            query["user"], query["operation"], query["object"],
            domain=query.get("domain"), purpose=query.get("purpose"))

    def _handle_admin(self, payload: dict[str, Any]
                      ) -> tuple[int, dict[str, Any]]:
        shard = self.router.shard(self._field(payload, "domain"))
        op = self._field(payload, "op")
        args = payload.get("args", {})
        if not isinstance(args, dict):
            raise HttpError(400, "field 'args' must be an object")
        try:
            return 200, shard.admin_op(op, args)
        except KeyError as exc:
            raise HttpError(400, f"admin op {op!r} missing "
                                 f"argument {exc}") from None

    def _handle_metrics(self, query: dict[str, str]
                        ) -> tuple[int, str]:
        name = query.get("shard")
        if name:
            registry = self.router.shard(name).engine.obs.metrics
            return 200, registry.render_prometheus()
        return 200, self.metrics.render_prometheus()

    def _handle_healthz(self) -> tuple[int, dict[str, Any]]:
        report = self.router.health()
        report["serve"] = {
            "inflight": self._inflight,
            "draining": self._draining,
            "flightrec_dir": self.flightrec_dir,
        }
        return (200 if report["status"] == "ok" else 503), report
