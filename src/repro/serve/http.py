"""Zero-dependency asyncio HTTP front-end for the shard router.

``repro-rbac serve`` boots a :class:`ServeApp` — a small HTTP/1.1
server written directly on :func:`asyncio.start_server` (no external
web framework; the whole repo stays stdlib-only):

====================  ====================================================
``POST /v1/check``    one access decision ``{user, operation, object,
                      domain?, purpose?, scope?}`` -> ``{allowed,
                      path, epoch}``
``POST /v1/check_batch``  ``{checks: [...]}`` looped over single checks
                      (the vectorized kernel path is a later PR)
``GET  /v1/explain``  read-only derivation (query-string parameters)
``POST /v1/admin``    control-plane mutation -> epoch swap summary
``GET  /metrics``     server-plane Prometheus exposition; with
                      ``?shard=NAME`` the shard engine's full registry
``GET  /healthz``     aggregate ``engine.health()`` + kernel epoch /
                      breaker + bulkhead state per shard (503 when
                      degraded)
====================  ====================================================

All request handling runs on the event loop thread: a single check is
~tens of microseconds, so the loop *is* the concurrency model — no
locks anywhere, and control-plane mutations interleave between
requests, never inside one.  Readers consult each shard's published
kernel reference (see ``serve/shard.py``); mutations recompile on the
control plane and publish by one reference swap, so no request ever
blocks on a recompile.

**Overload resilience** (see ``docs/ARCHITECTURE.md`` §"Overload,
backpressure & degraded mode"):

* *admission control* — at most ``max_inflight`` requests are handled
  at once; excess load is shed immediately with ``503`` +
  ``Retry-After`` (counted in ``repro_serve_shed_total{reason}``),
  never queued behind a hidden backlog;
* *i/o timeouts* — reading a request head or body, and draining a
  response, are each bounded by ``request_timeout``; a slow-loris
  head or truncated body gets ``408`` and the connection is closed,
  a non-reading client gets its transport aborted
  (``repro_serve_timeouts_total{stage}``);
* *per-request deadlines* — every request carries a
  :class:`~repro.clock.Deadline` (``X-Deadline-Ms`` header, default
  ``request_timeout``) threaded into the engine, so a saturated shard
  *times out* checks fail-closed instead of queueing them forever;
* *per-shard bulkheads + circuit breakers* — each shard has a bounded
  concurrency slot pool and a consecutive-failure breaker
  (``repro.serve.bulkhead``).  A tripped breaker serves **degraded
  mode**: reads answer from the last published kernel epoch
  (:meth:`~repro.serve.shard.Shard.check_degraded`), mutations are
  rejected ``503`` fail-closed.

**Graceful shutdown** (SIGTERM/SIGINT, or :meth:`ServeApp.shutdown`):
remove the port file and close the listener *first* (so no new client
can arrive believing the server is ready), drain in-flight requests
(bounded by ``drain_grace``), flush every shard's WAL group-commit
buffer, and dump every flight recorder — the forensic ring survives
the exit.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.clock import Deadline
from repro.errors import (
    AccessDenied,
    AdministrationError,
    ReproError,
    RetryExhausted,
    TransientError,
    UnknownRoleError,
    UnknownUserError,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.bulkhead import STATE_OPEN, ShardGuard
from repro.serve.shard import ShardRouter

__all__ = ["ServeApp", "HttpError", "parse_request_head",
           "response_bytes"]

#: default request-head size bound (request line + headers)
MAX_HEAD_BYTES = 16 * 1024
#: default request-body size bound
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            403: "Forbidden", 405: "Method Not Allowed",
            408: "Request Timeout", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable"}

#: serve-plane latency buckets in ns: 10us .. 1s
SERVE_LATENCY_BUCKETS_NS = (
    1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6,
    1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8, 1e9,
)


class HttpError(Exception):
    """A request the server answers with an error status + JSON body.

    ``retry_after`` adds a ``Retry-After`` header (load-shed 503s set
    it so well-behaved clients back off); ``close`` forces the
    connection closed after the response — mandatory whenever the
    request body was not fully read, or keep-alive would desync.
    """

    def __init__(self, status: int, message: str,
                 error: str = "http",
                 retry_after: float | None = None,
                 close: bool = False) -> None:
        super().__init__(message)
        self.status = status
        self.error = error
        self.retry_after = retry_after
        self.close = close


def parse_request_head(head: bytes) -> tuple[str, str, dict[str, str]]:
    """Parse ``METHOD TARGET HTTP/1.x`` + headers from a request head.

    Header names are lower-cased; duplicate headers keep the last
    value (none of the headers this server reads repeat legally).
    Raises :class:`HttpError` (400) on anything malformed.
    """
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable request head")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


def response_bytes(status: int, payload: dict[str, Any] | str,
                   close: bool = False,
                   headers: dict[str, str] | None = None) -> bytes:
    """One full HTTP/1.1 response (JSON unless ``payload`` is text).

    ``headers`` adds extra response headers (e.g. ``Retry-After``).
    """
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        ctype = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        ctype = "application/json"
    reason = _REASONS.get(status, "Unknown")
    extra = ""
    if headers:
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in headers.items())
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body


def _error_status(exc: ReproError) -> int:
    """Map engine errors onto HTTP statuses: unknown entities are 404,
    fail-closed conditions (including an unreachable home domain) and
    denials are 403, transient infrastructure faults are 503 (the
    client may retry; the breaker counts them against the shard)."""
    if isinstance(exc, (UnknownUserError, UnknownRoleError)):
        return 404
    if isinstance(exc, AdministrationError):
        return 404 if "unknown" in str(exc).lower() else 400
    if isinstance(exc, (AccessDenied, RetryExhausted)):
        return 403
    if isinstance(exc, TransientError):
        return 503
    return 400


class ServeApp:
    """The service plane: router + HTTP surface + server-side metrics."""

    def __init__(self, router: ShardRouter, *,
                 drain_grace: float = 5.0,
                 flightrec_dir: str | None = None,
                 max_inflight: int = 256,
                 request_timeout: float = 1.0,
                 max_head_bytes: int = MAX_HEAD_BYTES,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 retry_after: float = 1.0,
                 shard_concurrency: int = 64,
                 breaker_threshold: int = 5,
                 breaker_cooldown: float = 2.0,
                 watch_interval: float = 0.0) -> None:
        self.router = router
        self.drain_grace = drain_grace
        #: config file watcher poll period in seconds; 0 disables.
        #: When enabled, each file-backed shard's config is stat-polled
        #: (mtime + size) and a changed file is *staged* through the
        #: rollout lifecycle exactly like SIGHUP — pushing a config to
        #: disk is enough, no signal needed.  The loader's checksum
        #: no-op guard absorbs touch-without-change rewrites.
        self.watch_interval = watch_interval
        #: shard -> (mtime_ns, size) last observed by the watcher
        self._watch_state: dict[str, tuple[int, int]] = {}
        self._watch_task: asyncio.Task | None = None
        #: where shutdown flight-recorder dumps land; None keeps each
        #: engine's own configured/auto directory
        self.flightrec_dir = flightrec_dir
        if flightrec_dir is not None:
            for shard in router.shards():
                shard.engine.flight.dump_dir = flightrec_dir
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.max_head_bytes = max_head_bytes
        self.max_body_bytes = max_body_bytes
        #: Retry-After seconds advertised on every shed 503
        self.retry_after = retry_after
        self.shard_concurrency = shard_concurrency
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._guards: dict[str, ShardGuard] = {}
        for shard in router.shards():
            self._guard(shard.name)
        self._server: asyncio.base_events.Server | None = None
        self._inflight = 0
        self._draining = False
        self._shutdown_summary: dict[str, Any] | None = None
        self.port: int | None = None
        self._port_file: str | None = None

        # -- server-plane metrics (the shard engines keep their own
        # registries; /metrics?shard=NAME exposes those verbatim) ------
        m = self.metrics = MetricsRegistry()
        self._requests = m.counter(
            "repro_serve_requests_total",
            "HTTP requests served, by route and status",
            ("route", "status"))
        self._request_ns = m.histogram(
            "repro_serve_request_ns",
            "request handling latency in ns, by route", ("route",),
            buckets=SERVE_LATENCY_BUCKETS_NS)
        self._inflight_gauge = m.gauge(
            "repro_serve_inflight_requests",
            "requests currently being handled")
        self._connections = m.counter(
            "repro_serve_connections_total",
            "client connections accepted")
        self._shed_total = m.counter(
            "repro_serve_shed_total",
            "requests shed by admission control, by reason",
            ("reason",))
        self._timeouts = m.counter(
            "repro_serve_timeouts_total",
            "request i/o timeouts, by stage", ("stage",))
        self._degraded = m.counter(
            "repro_serve_degraded_total",
            "degraded-mode reads answered from the frozen kernel, "
            "by shard", ("shard",))
        self._reloads = m.counter(
            "repro_serve_config_reloads_total",
            "SIGHUP/admin config reloads, by shard and outcome",
            ("shard", "outcome"))
        self._breaker_state = m.gauge(
            "repro_serve_breaker_state",
            "circuit breaker state by shard "
            "(0 closed / 1 half-open / 2 open)", ("shard",))
        self._breaker_trips = m.gauge(
            "repro_serve_breaker_trips_total",
            "lifetime circuit-breaker trips, by shard", ("shard",))
        self._bulkhead_active = m.gauge(
            "repro_serve_bulkhead_active",
            "bulkhead slots currently held, by shard", ("shard",))
        self._bulkhead_shed = m.gauge(
            "repro_serve_bulkhead_shed_total",
            "requests shed at the shard bulkhead, by shard", ("shard",))
        self._shard_epoch = m.gauge(
            "repro_serve_shard_epoch",
            "published kernel policy epoch, by shard", ("shard",))
        self._shard_swaps = m.gauge(
            "repro_serve_shard_epoch_swaps_total",
            "kernel reference swaps published, by shard", ("shard",))
        self._shard_checks = m.gauge(
            "repro_serve_shard_checks_total",
            "access checks served, by shard", ("shard",))
        self._shard_scoped_checks = m.gauge(
            "repro_serve_shard_scoped_checks_total",
            "access checks that carried an explicit scope, by shard",
            ("shard",))
        self._shard_sessions = m.gauge(
            "repro_serve_shard_sessions",
            "live served sessions, by shard", ("shard",))
        self._shard_decisions = m.gauge(
            "repro_serve_shard_decisions_total",
            "engine checkAccess decisions, mirrored per shard",
            ("shard", "decision"))
        m.add_collector(self._collect_shards)

    def _collect_shards(self) -> None:
        self._inflight_gauge.set(self._inflight)
        for shard in self.router.shards():
            name = shard.name
            self._shard_epoch.labels(name).set(shard.epoch)
            self._shard_swaps.labels(name).set(shard.swaps)
            self._shard_checks.labels(name).set(shard.checks)
            self._shard_scoped_checks.labels(name).set(
                shard.scoped_checks)
            self._shard_sessions.labels(name).set(shard.sessions())
            decisions = shard.engine.obs.decisions
            for outcome in ("grant", "deny"):
                self._shard_decisions.labels(name, outcome).set(
                    decisions.labels(outcome).value)
        for name, guard in self._guards.items():
            self._breaker_state.labels(name).set(guard.breaker.code)
            self._breaker_trips.labels(name).set(guard.breaker.trips)
            self._bulkhead_active.labels(name).set(guard.bulkhead.active)
            self._bulkhead_shed.labels(name).set(guard.bulkhead.shed)

    # -- per-shard guards ----------------------------------------------------

    def _guard(self, name: str) -> ShardGuard:
        """The shard's bulkhead + breaker, created on first touch."""
        guard = self._guards.get(name)
        if guard is None:
            guard = self._guards[name] = ShardGuard(
                name, self.shard_concurrency,
                threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown)
        return guard

    def _slot(self, guard: ShardGuard, ctx: dict[str, Any]) -> None:
        """Take one bulkhead slot for this request or shed it 503.

        The slot is registered in ``ctx`` and held until the response
        has drained (released in :meth:`_serve_request`'s ``finally``),
        so a tenant whose clients read slowly saturates its *own*
        slots, not the global budget.
        """
        if not guard.bulkhead.try_acquire():
            self._shed_total.labels("bulkhead")._value += 1
            raise HttpError(
                503, f"shard {guard.name!r} at concurrency limit",
                error="shed", retry_after=self.retry_after)
        ctx["bulkhead"] = guard.bulkhead

    def _record_breaker(self, guard: ShardGuard, ok: bool) -> None:
        """Feed one real-path outcome to the shard's breaker; on a
        trip, dump the shard's flight recorder and audit the event so
        the outage window has forensics.  A trip during a policy
        rollout also counts against the lifecycle's error budget — a
        candidate that coincides with a faulting shard is refused or
        rolled back, never promoted into an outage."""
        breaker = guard.breaker
        before = breaker.trips
        breaker.record(ok)
        if breaker.trips > before:
            shard = self.router.shard(guard.name)
            engine = shard.engine
            engine.dump_flight(f"serve.breaker.open.{guard.name}",
                               directory=self.flightrec_dir)
            engine.audit.record(
                "serve.breaker.open", shard=guard.name,
                trips=breaker.trips, cooldown=breaker.cooldown)
            try:
                lifecycle = shard.lifecycle
                if lifecycle is not None and lifecycle.armed:
                    lifecycle.note_failure(
                        f"serve.breaker.open.{guard.name}")
                    shard.poll_lifecycle()
            except Exception:  # noqa: BLE001 - the breaker path must
                pass  # never fail because the rollout bookkeeping did

    def _lifecycle_tick(self, shard: Any) -> None:
        """Best-effort control-plane poll after a served decision; a
        transition failure must never fail the client's response (the
        lifecycle re-polls on the next request).  A transition that
        landed (promote/rollback) re-syncs federation mappings from
        the shards' config state."""
        try:
            if shard.poll_lifecycle() is not None:
                self.router.sync_federation()
        except Exception:  # noqa: BLE001 - response already correct
            pass

    def _degraded_check(self, shard: Any, principal: str,
                        operation: str, obj: str,
                        scope: str | None = None) -> dict[str, Any]:
        guard = self._guard(shard.name)
        guard.degraded_served += 1
        self._degraded.labels(shard.name)._value += 1
        return shard.check_degraded(principal, operation, obj,
                                    scope=scope)

    # -- lifecycle ---------------------------------------------------------

    def reload_configs(self, out=None) -> dict[str, Any]:
        """SIGHUP handler: *stage* every file-backed shard's config.

        Classic daemons re-read their config on SIGHUP and swap it in
        blind; here the signal only re-reads each ``--shard NAME=FILE``
        file and **stages** it through the shard's rollout lifecycle —
        the published kernel keeps serving, a shadow canary mirrors the
        live traffic against the candidate, and the swap happens only
        once the divergence/error budget clears (see
        ``repro/config/lifecycle.py``).  A shard with no config file,
        or whose file fails validation / version monotonicity, is
        skipped with the error reported — one bad tenant config never
        blocks the others.
        """
        results: dict[str, Any] = {}
        for shard in self.router.shards():
            if shard.config_path is None:
                continue
            try:
                report = shard.admin_op("reload", {})
                self._reloads.labels(shard.name, "staged")._value += 1
                results[shard.name] = report
            except ReproError as exc:
                self._reloads.labels(shard.name, "error")._value += 1
                results[shard.name] = {"error": type(exc).__name__,
                                       "message": str(exc)}
                shard.engine.audit.record(
                    "serve.reload.error", shard=shard.name,
                    message=str(exc))
        if out is not None:
            print("reload: " + json.dumps(results, sort_keys=True,
                                          default=str),
                  file=out, flush=True)
        return results

    def poll_config_files(self) -> dict[str, Any]:
        """One synchronous watcher pass over file-backed shards.

        Stat-polls every ``--shard NAME=FILE`` config (mtime_ns +
        size); a file that moved since the last pass is staged through
        the shard's rollout lifecycle, exactly like one SIGHUP-ed
        reload.  The first observation of a file only records its
        baseline — the config the server booted from is not re-staged.
        Factored out of the async loop so tests (and embedded callers)
        can drive passes deterministically.
        """
        results: dict[str, Any] = {}
        for shard in self.router.shards():
            path = shard.config_path
            if path is None:
                continue
            try:
                stat = os.stat(path)
            except OSError:
                continue  # mid-rename or deleted: retry next pass
            signature = (stat.st_mtime_ns, stat.st_size)
            seen = self._watch_state.get(shard.name)
            if seen == signature:
                continue
            self._watch_state[shard.name] = signature
            if seen is None:
                continue  # baseline: the booted config is not restaged
            try:
                report = shard.admin_op("reload", {})
                outcome = ("unchanged" if report.get("unchanged")
                           else "staged")
                self._reloads.labels(shard.name, outcome)._value += 1
                results[shard.name] = report
            except ReproError as exc:
                self._reloads.labels(shard.name, "error")._value += 1
                results[shard.name] = {"error": type(exc).__name__,
                                       "message": str(exc)}
                shard.engine.audit.record(
                    "serve.watch.error", shard=shard.name,
                    message=str(exc))
        return results

    async def _watch_loop(self) -> None:
        """The async config watcher: stat-poll every
        ``watch_interval`` seconds until the server drains."""
        while not self._draining:
            await asyncio.sleep(self.watch_interval)
            try:
                self.poll_config_files()
            except Exception:  # noqa: BLE001 - the watcher must
                pass  # survive any one bad pass; next tick retries

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.base_events.Server:
        """Bind and start serving; ``port=0`` picks an ephemeral port
        (read it back from :attr:`port`)."""
        self._server = await asyncio.start_server(
            self._serve_connection, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.watch_interval > 0 and self._watch_task is None:
            self.poll_config_files()  # baseline pass before serving
            self._watch_task = asyncio.get_running_loop().create_task(
                self._watch_loop())
        return self._server

    async def shutdown(self) -> dict[str, Any]:
        """Drain, flush, dump — the graceful exit sequence.

        The external readiness signals go away *first* — the port file
        is unlinked and the listening socket closed before the drain
        starts — so nothing can discover (or connect to) a server that
        is already on its way out.  Idempotent; returns (and caches)
        the shutdown summary: ``drained`` says whether every in-flight
        request completed inside ``drain_grace``, ``wal_flushed``
        counts group-commit buffers fsynced, ``flight_dumps`` maps
        shard -> dump path.
        """
        if self._shutdown_summary is not None:
            return self._shutdown_summary
        self._draining = True
        if self._watch_task is not None:
            self._watch_task.cancel()
            self._watch_task = None
        if self._port_file is not None:
            try:
                os.unlink(self._port_file)
            except OSError:
                pass
            self._port_file = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_grace
        while self._inflight and loop.time() < deadline:
            await asyncio.sleep(0.005)
        wal_flushed = 0
        flight_dumps: dict[str, str | None] = {}
        for shard in self.router.shards():
            if shard.durability is not None:
                # flush the group-commit buffer: a drained request's
                # commit must not die in an unsynced batch
                if shard.durability.wal.sync():
                    wal_flushed += 1
            # the shard name is part of the dump cause: every shard's
            # recorder keeps its own dump counter, so a shared
            # --flightrec-dir would otherwise collide on the filename
            flight_dumps[shard.name] = shard.engine.dump_flight(
                f"serve.shutdown.{shard.name}",
                directory=self.flightrec_dir)
            shard.engine.audit.record("serve.shutdown", shard=shard.name)
        self._shutdown_summary = {
            "drained": self._inflight == 0,
            "inflight": self._inflight,
            "wal_flushed": wal_flushed,
            "flight_dumps": flight_dumps,
        }
        return self._shutdown_summary

    async def run(self, host: str = "127.0.0.1", port: int = 0,
                  port_file: str | None = None,
                  out=None) -> dict[str, Any]:
        """Serve until SIGTERM/SIGINT, then shut down gracefully.

        The daemon entry point behind ``repro-rbac serve``: binds,
        optionally writes the bound port to ``port_file`` (ephemeral
        ports are how the CI smoke job finds the server), installs
        signal handlers, and blocks until a signal trips the drain.
        """
        out = out if out is not None else sys.stdout
        await self.start(host, port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        try:
            loop.add_signal_handler(
                signal.SIGHUP, self.reload_configs, out)
        except (NotImplementedError,  # pragma: no cover - non-POSIX
                AttributeError):
            pass
        # the port file is the external readiness signal (the smoke
        # harness SIGTERMs as soon as it appears) — write it only
        # after the handlers are armed, or a prompt signal kills the
        # process with the default disposition instead of draining
        if port_file:
            with open(port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{self.port}\n")
            self._port_file = port_file
        print(f"serving {len(self.router)} shard(s) on "
              f"http://{host}:{self.port}", file=out, flush=True)
        await stop.wait()
        summary = await self.shutdown()
        print("shutdown: " + json.dumps(summary, sort_keys=True),
              file=out, flush=True)
        return summary

    # -- connection handling -----------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._connections._value += 1
        try:
            while not self._draining:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"),
                        self.request_timeout)
                except asyncio.TimeoutError:
                    # slow-loris (a head that never completes) and
                    # idle keep-alive connections are both reaped;
                    # only the former deserves a response
                    if reader._buffer:
                        self._timeouts.labels("head")._value += 1
                        writer.write(response_bytes(
                            408, {"error": "timeout",
                                  "message": "timed out reading "
                                             "request head"},
                            close=True))
                        with _suppress_net_errors():
                            await writer.drain()
                    else:
                        self._timeouts.labels("idle")._value += 1
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client went away between requests
                except asyncio.LimitOverrunError:
                    self._shed_total.labels("oversize")._value += 1
                    writer.write(response_bytes(
                        413, {"error": "http",
                              "message": "request head too large"},
                        close=True))
                    with _suppress_net_errors():
                        await writer.drain()
                    return
                if len(head) > self.max_head_bytes:
                    self._shed_total.labels("oversize")._value += 1
                    writer.write(response_bytes(
                        413, {"error": "http",
                              "message": "request head too large"},
                        close=True))
                    with _suppress_net_errors():
                        await writer.drain()
                    return
                close = await self._serve_request(head, reader, writer)
                if close:
                    return
        finally:
            writer.close()
            with _suppress_net_errors():
                await writer.wait_closed()

    async def _serve_request(self, head: bytes,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> bool:
        """Handle one request; returns True when the connection must
        close (protocol error, shed, timeout, or drain)."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        route = "?"
        status = 500
        close = False
        headers_out: dict[str, str] | None = None
        ctx: dict[str, Any] = {}
        self._inflight += 1
        try:
            try:
                method, target, headers = parse_request_head(head)
                parts = urlsplit(target)
                route = parts.path
                # -- admission control: shed before reading the body,
                # close after answering (the unread body would desync
                # keep-alive framing)
                if self._inflight > self.max_inflight:
                    self._shed_total.labels("inflight")._value += 1
                    raise HttpError(
                        503,
                        f"server at capacity "
                        f"({self.max_inflight} in flight)",
                        error="shed", retry_after=self.retry_after,
                        close=True)
                deadline = self._request_deadline(headers)
                length = self._content_length(headers)
                body = b""
                if length:
                    try:
                        body = await asyncio.wait_for(
                            reader.readexactly(length),
                            self.request_timeout)
                    except asyncio.TimeoutError:
                        # truncated body: the client claimed more
                        # bytes than it sent — fail closed, never wait
                        self._timeouts.labels("body")._value += 1
                        raise HttpError(
                            408, "timed out reading request body",
                            error="timeout", close=True) from None
                if deadline.exceeded() is not None:
                    # the budget died while the request was being
                    # read/queued: shed it rather than dispatch work
                    # whose answer nobody is waiting for
                    self._shed_total.labels("deadline")._value += 1
                    raise HttpError(
                        503, "request deadline exhausted before "
                             "dispatch", error="shed",
                        retry_after=self.retry_after, close=True)
                ctx["deadline"] = deadline
                status, payload = self._dispatch(
                    method, parts.path,
                    {k: v[-1] for k, v in
                     parse_qs(parts.query).items()},
                    body, ctx)
            except HttpError as exc:
                status, payload = exc.status, {
                    "error": exc.error, "message": str(exc)}
                close = close or exc.close
                if exc.retry_after is not None:
                    headers_out = {"Retry-After":
                                   f"{exc.retry_after:g}"}
            except (asyncio.IncompleteReadError, ConnectionError):
                return True
            except ReproError as exc:
                status = _error_status(exc)
                payload = {"error": type(exc).__name__,
                           "message": str(exc)}
                if status == 503:
                    headers_out = {"Retry-After":
                                   f"{self.retry_after:g}"}
            except Exception as exc:  # noqa: BLE001 - the server must
                # answer; a handler bug becomes a 500, not a dead socket
                status, payload = 500, {"error": type(exc).__name__,
                                        "message": str(exc)}
            close = close or self._draining
            writer.write(response_bytes(status, payload, close=close,
                                        headers=headers_out))
            try:
                await asyncio.wait_for(writer.drain(),
                                       self.request_timeout)
            except asyncio.TimeoutError:
                # the client is not reading its response: abort the
                # transport rather than hold buffers (and a bulkhead
                # slot) for a dead peer
                self._timeouts.labels("write")._value += 1
                writer.transport.abort()
                return True
            except (ConnectionError, OSError):
                return True
            self._requests.labels(route, str(status))._value += 1
            hist = self._request_ns.labels(route)
            hist.observe((loop.time() - start) * 1e9)
            return close
        finally:
            self._inflight -= 1
            guard = ctx.get("guard")
            if guard is not None:
                # a shard failure is a server-side fault or an engine
                # timeout — never a client error or a slow reader
                self._record_breaker(
                    guard, status < 500 and not ctx.get("failure"))
            bulkhead = ctx.get("bulkhead")
            if bulkhead is not None:
                bulkhead.release()

    def _request_deadline(self, headers: dict[str, str]) -> Deadline:
        """The request's wall-clock budget: ``X-Deadline-Ms`` when the
        client sent one (malformed values fail closed 400), else the
        server's default ``request_timeout``."""
        raw = headers.get("x-deadline-ms")
        if raw is None:
            budget = self.request_timeout
        else:
            try:
                budget = float(raw) / 1000.0
            except ValueError:
                raise HttpError(
                    400, f"bad X-Deadline-Ms {raw!r}") from None
            if not (0 < budget < float("inf")):
                raise HttpError(
                    400, f"X-Deadline-Ms must be a positive finite "
                         f"number, got {raw!r}")
        return Deadline(wall_budget=budget)

    def _content_length(self, headers: dict[str, str]) -> int:
        """Validate Content-Length fail-closed (400 on garbage, 413
        over the body bound; both close — the body is unread)."""
        raw = headers.get("content-length", "")
        if not raw:
            return 0
        try:
            length = int(raw)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {raw!r}",
                            close=True) from None
        if length < 0:
            raise HttpError(400, f"negative Content-Length {raw!r}",
                            close=True)
        if length > self.max_body_bytes:
            raise HttpError(413, "request body too large", close=True)
        return length

    # -- routing -----------------------------------------------------------

    def _dispatch(self, method: str, path: str, query: dict[str, str],
                  body: bytes, ctx: dict[str, Any] | None = None
                  ) -> tuple[int, dict[str, Any] | str]:
        ctx = ctx if ctx is not None else {}
        if path == "/v1/check":
            self._require(method, "POST")
            return self._handle_check(self._json(body), ctx)
        if path == "/v1/check_batch":
            self._require(method, "POST")
            return self._handle_check_batch(self._json(body), ctx)
        if path == "/v1/explain":
            self._require(method, "GET")
            return self._handle_explain(query, ctx)
        if path == "/v1/admin":
            self._require(method, "POST")
            return self._handle_admin(self._json(body), ctx)
        if path == "/metrics":
            self._require(method, "GET")
            return self._handle_metrics(query)
        if path == "/healthz":
            self._require(method, "GET")
            return self._handle_healthz()
        raise HttpError(404, f"no route {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(405, f"use {expected}")

    @staticmethod
    def _json(body: bytes) -> dict[str, Any]:
        if not body:
            raise HttpError(400, "missing JSON body")
        try:
            payload = json.loads(body)
        except ValueError as exc:
            raise HttpError(400, f"bad JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        return payload

    @staticmethod
    def _field(payload: dict[str, Any], name: str) -> str:
        value = payload.get(name)
        if not isinstance(value, str) or not value:
            raise HttpError(400, f"missing field {name!r}")
        return value

    # -- handlers ----------------------------------------------------------

    def _check_args(self, payload: dict[str, Any]) -> dict[str, Any]:
        return {
            "user": self._field(payload, "user"),
            "operation": self._field(payload, "operation"),
            "obj": self._field(payload, "object"),
            "domain": payload.get("domain"),
            "purpose": payload.get("purpose"),
            "scope": payload.get("scope"),
        }

    def _handle_check(self, payload: dict[str, Any],
                      ctx: dict[str, Any]
                      ) -> tuple[int, dict[str, Any]]:
        args = self._check_args(payload)
        # pure routing first: the shard's guard decides admission
        # before any engine work (or guest provisioning) happens
        shard, principal = self.router.route(args["user"],
                                             args["domain"])
        guard = self._guard(shard.name)
        verdict = guard.breaker.allow()
        if verdict == "degraded":
            return 200, self._degraded_check(
                shard, principal, args["operation"], args["obj"],
                args["scope"])
        if verdict == "serve":
            self._slot(guard, ctx)
        ctx["guard"] = guard  # outcome recorded after drain
        result = self.router.check(deadline=ctx.get("deadline"), **args)
        if result.get("timed_out"):
            ctx["failure"] = True  # an engine timeout counts against
            # the breaker even though the response is a clean deny
        self._lifecycle_tick(shard)
        return 200, result

    def _handle_check_batch(self, payload: dict[str, Any],
                            ctx: dict[str, Any]
                            ) -> tuple[int, dict[str, Any]]:
        checks = payload.get("checks")
        if not isinstance(checks, list):
            raise HttpError(400, "field 'checks' must be a list")
        results = []
        for index, item in enumerate(checks):
            if not isinstance(item, dict):
                raise HttpError(400, f"checks[{index}] must be an object")
            # a per-item engine error fails that item, not the batch;
            # guards apply per item (items may target different shards)
            results.append(self._batch_item(item, ctx))
        return 200, {"count": len(results), "results": results}

    def _batch_item(self, item: dict[str, Any],
                    ctx: dict[str, Any]) -> dict[str, Any]:
        """One batch entry: the single-check guard flow, with the
        bulkhead slot scoped to the item (a batch is one request; its
        items never overlap in time, but they must still see — and
        count against — the shard's live admission state)."""
        try:
            args = self._check_args(item)
            shard, principal = self.router.route(args["user"],
                                                 args["domain"])
        except (HttpError, ReproError) as exc:
            return {"allowed": False, "error": type(exc).__name__,
                    "message": str(exc)}
        guard = self._guard(shard.name)
        verdict = guard.breaker.allow()
        if verdict == "degraded":
            return self._degraded_check(
                shard, principal, args["operation"], args["obj"],
                args["scope"])
        acquired = False
        if verdict == "serve":
            if not guard.bulkhead.try_acquire():
                self._shed_total.labels("bulkhead")._value += 1
                return {"allowed": False, "error": "shed",
                        "message": f"shard {shard.name!r} at "
                                   f"concurrency limit"}
            acquired = True
        try:
            result = self.router.check(deadline=ctx.get("deadline"),
                                       **args)
            self._record_breaker(guard,
                                 not result.get("timed_out"))
            self._lifecycle_tick(shard)
            return result
        except ReproError as exc:
            self._record_breaker(guard, _error_status(exc) < 500)
            return {"allowed": False, "error": type(exc).__name__,
                    "message": str(exc)}
        finally:
            if acquired:
                guard.bulkhead.release()

    def _handle_explain(self, query: dict[str, str],
                        ctx: dict[str, Any]
                        ) -> tuple[int, dict[str, Any]]:
        for field in ("user", "operation", "object"):
            if not query.get(field):
                raise HttpError(400, f"missing query parameter {field!r}")
        shard, _principal = self.router.route(query["user"],
                                              query.get("domain"))
        guard = self._guard(shard.name)
        verdict = guard.breaker.allow()
        if verdict == "degraded":
            # explain needs the full interpreted derivation — there is
            # no degraded variant, so it waits out the breaker
            raise HttpError(
                503, f"shard {shard.name!r} breaker open",
                error="breaker", retry_after=self.retry_after)
        if verdict == "serve":
            self._slot(guard, ctx)
        ctx["guard"] = guard
        return 200, self.router.explain(
            query["user"], query["operation"], query["object"],
            domain=query.get("domain"), purpose=query.get("purpose"),
            scope=query.get("scope"))

    def _handle_admin(self, payload: dict[str, Any],
                      ctx: dict[str, Any]
                      ) -> tuple[int, dict[str, Any]]:
        shard = self.router.shard(self._field(payload, "domain"))
        guard = self._guard(shard.name)
        verdict = guard.breaker.allow()
        if verdict == "degraded":
            # fail closed: a mutation against a faulting engine could
            # commit half of itself; reads keep flowing degraded, the
            # control plane waits for the breaker
            self._shed_total.labels("breaker_admin")._value += 1
            raise HttpError(
                503, f"shard {shard.name!r} breaker open: "
                     f"mutations rejected fail-closed",
                error="breaker", retry_after=self.retry_after)
        if verdict == "serve":
            self._slot(guard, ctx)
        ctx["guard"] = guard
        op = self._field(payload, "op")
        args = payload.get("args", {})
        if not isinstance(args, dict):
            raise HttpError(400, "field 'args' must be an object")
        try:
            report = shard.admin_op(op, args)
        except KeyError as exc:
            raise HttpError(400, f"admin op {op!r} missing "
                                 f"argument {exc}") from None
        from repro.serve.shard import LIFECYCLE_OPS
        if op in LIFECYCLE_OPS:
            # a promoted/rolled-back config may have moved the
            # federation_maps declarations — reconcile best-effort
            try:
                self.router.sync_federation()
            except Exception:  # noqa: BLE001 - response is correct
                pass
        return 200, report

    def _handle_metrics(self, query: dict[str, str]
                        ) -> tuple[int, str]:
        name = query.get("shard")
        if name:
            registry = self.router.shard(name).engine.obs.metrics
            return 200, registry.render_prometheus()
        return 200, self.metrics.render_prometheus()

    def _handle_healthz(self) -> tuple[int, dict[str, Any]]:
        report = self.router.health()
        open_breakers = sorted(
            name for name, guard in self._guards.items()
            if guard.breaker.state == STATE_OPEN)
        if open_breakers and report["status"] == "ok":
            report["status"] = "degraded"
        for name, guard in self._guards.items():
            shard_report = report["shards"].get(name)
            if shard_report is not None:
                shard_report.setdefault("serve", {})["overload"] = \
                    guard.snapshot()
        report["serve"] = {
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "draining": self._draining,
            "breakers_open": open_breakers,
            "flightrec_dir": self.flightrec_dir,
        }
        return (200 if report["status"] == "ok" else 503), report


class _suppress_net_errors:
    """``with`` guard for best-effort socket writes during teardown."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return exc_type is not None and issubclass(
            exc_type, (ConnectionError, OSError))
