"""Per-shard overload isolation: bulkheads and circuit breakers.

One saturated or faulting tenant must not take the whole service plane
down with it.  Two small, transport-agnostic primitives enforce that
(`serve/http.py` wires them per shard):

* :class:`Bulkhead` — a bounded concurrency slot counter.  A slot
  spans one shard-routed request from dispatch through response
  drain, so a tenant whose clients read slowly (or whose checks fall
  back to the slow interpreted path) saturates *its own* slots and is
  shed with 503s while every other shard keeps its full budget.
* :class:`CircuitBreaker` — the classic three-state machine over
  *consecutive* shard failures (5xx responses, transport aborts).
  ``closed`` serves normally; ``threshold`` consecutive failures trip
  it ``open``; after ``cooldown`` seconds one request is let through
  ``half_open`` as a probe — success closes the breaker, failure
  re-opens it and restarts the cooldown.

While a shard's breaker is open the front-end serves **degraded
mode**: reads keep answering from the shard's last published kernel
epoch (:meth:`repro.serve.shard.Shard.check_degraded` — a pure
bitset read, fail-closed on anything dynamic), and control-plane
mutations are rejected 503 fail-closed, because an admin op against a
faulting engine could commit half a mutation.

Both classes take an injectable monotonic ``now`` so tests drive the
cooldown deterministically.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["Bulkhead", "CircuitBreaker", "ShardGuard",
           "STATE_CLOSED", "STATE_OPEN", "STATE_HALF_OPEN"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

#: numeric encoding for the breaker-state gauge (alert on > 0)
STATE_CODES = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}


class Bulkhead:
    """A bounded pool of concurrency slots (no queue: full == shed).

    ``try_acquire`` never waits — an admission-control layer must shed
    immediately, not build a hidden queue that defeats the bound.
    """

    __slots__ = ("limit", "active", "peak", "shed")

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("bulkhead limit must be >= 1")
        self.limit = limit
        self.active = 0
        self.peak = 0
        self.shed = 0

    def try_acquire(self) -> bool:
        if self.active >= self.limit:
            self.shed += 1
            return False
        self.active += 1
        if self.active > self.peak:
            self.peak = self.active
        return True

    def release(self) -> None:
        if self.active <= 0:
            raise RuntimeError("bulkhead release without acquire")
        self.active -= 1


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe."""

    __slots__ = ("threshold", "cooldown", "state", "failures", "trips",
                 "opened_at", "_now", "_probing")

    def __init__(self, threshold: int = 5, cooldown: float = 2.0,
                 now: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._now = now
        self.state = STATE_CLOSED
        self.failures = 0        # consecutive, reset on success
        self.trips = 0           # lifetime closed/half-open -> open
        self.opened_at: float | None = None
        self._probing = False

    def allow(self) -> str:
        """Admission verdict for one shard-routed request.

        Returns ``"serve"`` (closed: real path), ``"probe"``
        (half-open: this request is *the* probe — its outcome decides
        the breaker), or ``"degraded"`` (open, or a probe is already
        in flight: answer from the frozen kernel, reject mutations).
        """
        if self.state == STATE_CLOSED:
            return "serve"
        if self.state == STATE_OPEN:
            if self._now() - self.opened_at < self.cooldown:
                return "degraded"
            self.state = STATE_HALF_OPEN
            self._probing = False
        if self._probing:
            return "degraded"
        self._probing = True
        return "probe"

    def record(self, ok: bool) -> None:
        """Record one real-path outcome (closed traffic or the probe)."""
        if self.state == STATE_HALF_OPEN:
            self._probing = False
            if ok:
                self.state = STATE_CLOSED
                self.failures = 0
                self.opened_at = None
            else:
                self._trip()
            return
        if ok:
            self.failures = 0
            return
        self.failures += 1
        if self.state == STATE_CLOSED and self.failures >= self.threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = STATE_OPEN
        self.trips += 1
        self.opened_at = self._now()
        self.failures = 0

    @property
    def code(self) -> int:
        """Numeric state for the metrics gauge (0/1/2)."""
        return STATE_CODES[self.state]


class ShardGuard:
    """One shard's overload armor: its bulkhead plus its breaker."""

    __slots__ = ("name", "bulkhead", "breaker", "degraded_served")

    def __init__(self, name: str, concurrency: int,
                 threshold: int = 5, cooldown: float = 2.0,
                 now: Callable[[], float] = time.monotonic) -> None:
        self.name = name
        self.bulkhead = Bulkhead(concurrency)
        self.breaker = CircuitBreaker(threshold, cooldown, now=now)
        self.degraded_served = 0

    def snapshot(self) -> dict[str, Any]:
        """Operator view for ``/healthz`` per-shard reporting."""
        return {
            "breaker": self.breaker.state,
            "breaker_trips": self.breaker.trips,
            "consecutive_failures": self.breaker.failures,
            "bulkhead_limit": self.bulkhead.limit,
            "bulkhead_active": self.bulkhead.active,
            "bulkhead_peak": self.bulkhead.peak,
            "bulkhead_shed": self.bulkhead.shed,
            "degraded_served": self.degraded_served,
        }
