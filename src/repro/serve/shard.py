"""Multi-tenant shards: one engine + WAL + published kernel per domain.

The service plane serves many tenants from one process.  Each tenant
("shard") is a full :class:`~repro.engine.ActiveRBACEngine` — its own
policy, rule pool, WAL and compiled :class:`~repro.kernel.PolicyKernel`
— registered as a domain of a :class:`~repro.federation.Federation`, so
cross-tenant visits ride the existing role-mapping machinery unchanged.

**RCU-style epoch swap.**  The kernel is immutable per policy epoch
(see ``repro/kernel.py``), which makes it exactly the artifact that can
be read lock-free behind a request loop: a :class:`Shard` holds the
*published* kernel in one attribute, request handlers read that
reference once per check (a single atomic load under the GIL), and the
control plane publishes a new epoch by recompiling and then performing
one reference assignment (:meth:`Shard.publish`).  Readers that loaded
the old reference keep deciding against the old epoch until they
finish — the classic read-copy-update contract — and never pay (or
wait on) a recompile: the control plane compiles, readers only swing a
pointer.  ``tests/integration/test_serve.py`` verifies the contract
differentially (old reference keeps answering the old epoch while the
router already serves the new one).

Routing is keyed on **home domain**: ``wei@hq`` routes to shard ``hq``
unless an explicit target domain says otherwise, in which case the
federation's role mappings provision a guest principal in the host
shard (:meth:`ShardRouter.resolve`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.clock import Deadline
from repro.engine import ActiveRBACEngine
from repro.errors import (
    AdministrationError,
    DeadlineExceeded,
    OperationDenied,
    ReproError,
    RuleExecutionError,
)
from repro.federation import Federation, RoleMapping, guest_principal
from repro.kernel import KERNEL_GRANT, PolicyKernel

__all__ = ["Shard", "ShardRouter", "ADMIN_OPS", "LIFECYCLE_OPS"]


#: Control-plane operations the service front-end accepts over
#: ``POST /v1/admin``.  Each applies through the engine's audited
#: admin API; the shard republishes the kernel afterwards, so the
#: mutation becomes one epoch swap from the readers' point of view.
ADMIN_OPS: dict[str, Callable[[ActiveRBACEngine, dict[str, Any]], Any]] = {
    "grant": lambda e, a: e.grant_permission(
        a["role"], a["operation"], a["object"], scope=a.get("scope")),
    "revoke": lambda e, a: e.revoke_permission(
        a["role"], a["operation"], a["object"], scope=a.get("scope")),
    "add_permission": lambda e, a: e.add_permission(
        a["operation"], a["object"]),
    "add_role": lambda e, a: e.add_role(a["role"]),
    "add_scope": lambda e, a: e.add_scope(a["scope"], a.get("parent")),
    "remove_scope": lambda e, a: e.remove_scope(a["scope"]),
    "assign": lambda e, a: e.assign_user(
        a["user"], a["role"], scope=a.get("scope")),
    "deassign": lambda e, a: (
        e.deassign_scope(a["user"], a["role"], a["scope"])
        if a.get("scope") is not None
        else e.deassign_user(a["user"], a["role"])),
    "enable_role": lambda e, a: e.enable_role(a["role"]),
    "disable_role": lambda e, a: e.disable_role(a["role"]),
    "lock_user": lambda e, a: e.lock_user(a["user"]),
    "unlock_user": lambda e, a: e.unlock_user(a["user"]),
}


#: Policy-lifecycle operations (``repro/config/lifecycle.py``) the
#: admin endpoint accepts alongside :data:`ADMIN_OPS`.  Unlike plain
#: admin ops these do not mutate the live policy directly: ``reload``
#: and ``config_stage`` start a shadow-compare canary, and the swap
#: only happens through the lifecycle's budgeted promotion.
LIFECYCLE_OPS = frozenset({
    "reload", "config_stage", "config_promote", "config_rollback",
    "config_status",
})


class Shard:
    """One tenant: an engine, its durability, and the published kernel."""

    def __init__(self, name: str, engine: ActiveRBACEngine,
                 durability: Any = None,
                 config_path: str | None = None) -> None:
        self.name = name
        self.engine = engine
        #: optional :class:`~repro.wal.Durability`; the server's
        #: graceful shutdown flushes its group-commit buffer
        self.durability = durability
        #: config file SIGHUP / ``reload`` re-reads (the ``--shard
        #: NAME=FILE`` path the shard was booted from)
        self.config_path = config_path
        #: staged-rollout controller, created on first lifecycle op
        self.lifecycle: Any = None
        #: user/principal -> live session id (lazily created)
        self._sessions: dict[str, str] = {}
        #: epoch swaps published (reference replacements, not compiles)
        self.swaps = 0
        #: checks served through this shard (both paths)
        self.checks = 0
        #: checks that carried an explicit scope (subset of ``checks``)
        self.scoped_checks = 0
        self._kernel: PolicyKernel | None = None
        self.publish()

    # -- the RCU surface ---------------------------------------------------

    @property
    def kernel(self) -> PolicyKernel | None:
        """The published kernel — the single reference readers load."""
        return self._kernel

    @property
    def epoch(self) -> int:
        kernel = self._kernel
        return -1 if kernel is None else kernel.epoch

    def publish(self) -> PolicyKernel:
        """Compile (if stale) and swap the published reference.

        Compilation happens here, on the control plane; the swap itself
        is one attribute assignment, so a reader either sees the old
        kernel or the new one, never a half-built state.  Returns the
        kernel now published.
        """
        kernel = self.engine.kernel()
        if kernel is not self._kernel:
            self._kernel = kernel
            self.swaps += 1
        return kernel

    def admin(self, fn: Callable[[ActiveRBACEngine], Any]) -> Any:
        """Apply one control-plane mutation, then republish.

        The mutation and the republish run back-to-back on the control
        plane; request handlers keep reading whichever kernel reference
        they already hold.
        """
        try:
            return fn(self.engine)
        finally:
            self.publish()

    def admin_op(self, op: str, args: dict[str, Any]) -> dict[str, Any]:
        """Apply a named :data:`ADMIN_OPS` mutation; returns the swap
        summary the HTTP admin endpoint responds with."""
        if op in LIFECYCLE_OPS:
            return self.lifecycle_op(op, args)
        apply = ADMIN_OPS.get(op)
        if apply is None:
            raise AdministrationError(f"unknown admin op {op!r}")
        before = self.epoch
        self.admin(lambda engine: apply(engine, args))
        return {"op": op, "shard": self.name, "epoch": self.epoch,
                "previous_epoch": before,
                "swapped": self.epoch != before}

    # -- policy lifecycle --------------------------------------------------

    def ensure_lifecycle(self, budget: Any = None) -> Any:
        """The shard's rollout controller, created on first use.

        Versions and manifest persist next to the shard's WAL (its
        Durability directory) when one is attached.
        """
        if self.lifecycle is None:
            from repro.config.lifecycle import PolicyLifecycle
            self.lifecycle = PolicyLifecycle(self.engine, budget=budget)
        return self.lifecycle

    def lifecycle_op(self, op: str, args: dict[str, Any]) -> dict[str, Any]:
        """Apply one staged-rollout operation (``reload``,
        ``config_stage``, ``config_promote``, ``config_rollback``,
        ``config_status``).

        ``reload`` re-reads the shard's config file (or ``args.path``)
        and *stages* it — the hot path keeps serving the published
        kernel; promotion happens through the canary budget (or an
        explicit ``config_promote``).  Every op republishes, so any
        swap the lifecycle performed becomes visible immediately.
        """
        from repro.config.loader import ConfigError, load_config
        lifecycle = self.ensure_lifecycle()
        try:
            if op == "config_status":
                return {"op": op, "shard": self.name,
                        "status": lifecycle.status()}
            if op in ("reload", "config_stage"):
                path = args.get("path") or self.config_path
                version = args.get("version")
                if args.get("source") is not None:
                    from repro.config.loader import parse_config
                    config = parse_config(
                        str(args["source"]), args.get("format", "yaml"),
                        version=version)
                elif path is not None:
                    try:
                        config = load_config(path, version=version)
                    except ConfigError as exc:
                        # raw DSL files carry no version key: a reload
                        # of one auto-assigns the next version id
                        if version is not None \
                                or "version" not in str(exc):
                            raise
                        config = load_config(
                            path,
                            version=(self.engine.config_version or 1) + 1)
                else:
                    raise AdministrationError(
                        f"{op}: shard {self.name!r} has no config path "
                        "and no source was supplied")
                active = lifecycle.active
                if active is not None \
                        and config.checksum == active.checksum:
                    # repeated SIGHUPs of an unchanged file are no-ops:
                    # same canonical policy, nothing to stage
                    return {"op": op, "shard": self.name,
                            "unchanged": True,
                            "active_version": active.version,
                            "checksum": config.checksum}
                if lifecycle.active is None \
                        and self.engine.config_version is None \
                        and config.version > 1:
                    # first rollout ever: version the running policy so
                    # a later rollback has a concrete baseline version
                    # (a v1 stage diffs against the live policy as-is)
                    lifecycle.adopt(config.version - 1)
                report = lifecycle.stage(config)
                return {"op": op, "shard": self.name, **report}
            if op == "config_promote":
                report = lifecycle.promote(force=bool(args.get("force")))
                return {"op": op, "shard": self.name, **report}
            if op == "config_rollback":
                report = lifecycle.rollback(
                    str(args.get("reason", "operator")))
                return {"op": op, "shard": self.name, **report}
            raise AdministrationError(f"unknown lifecycle op {op!r}")
        except ConfigError as exc:
            raise AdministrationError(str(exc)) from None
        finally:
            self.publish()

    def poll_lifecycle(self) -> dict[str, Any] | None:
        """Control-plane tick: let the lifecycle apply any transition
        its tallies justify, republishing if the policy swapped.
        Cheap no-op (two attribute reads) when nothing is in flight."""
        lifecycle = self.lifecycle
        if lifecycle is None or not lifecycle.armed:
            return None
        transition = lifecycle.poll()
        if transition is not None:
            self.publish()
        return transition

    # -- sessions ----------------------------------------------------------

    def session_for(self, user: str) -> str:
        """The user's live served session, created on first touch.

        A served session activates every assigned role (best-effort:
        DSD/cardinality conflicts skip the offending role rather than
        failing the whole login), mirroring what a stateless check API
        means by "may the user do this".  Sessions destroyed underneath
        us (lockout, countermeasures) are transparently re-created on
        the next request — or denied, if the rules now say so.
        """
        engine = self.engine
        sid = self._sessions.get(user)
        if sid is not None and sid in engine.model.sessions:
            return sid
        sid = engine.create_session(user)
        self.activate_assigned(sid, user)
        self._sessions[user] = sid
        return sid

    def activate_assigned(self, sid: str, user: str) -> None:
        """Best-effort activate every assigned role in ``sid``."""
        engine = self.engine
        for role in sorted(engine.model.assigned_roles(user)):
            try:
                engine.add_active_role(sid, role)
            except ReproError:
                pass

    def sessions(self) -> int:
        """Live served sessions (stale cache entries excluded)."""
        live = self.engine.model.sessions
        return sum(1 for sid in self._sessions.values() if sid in live)

    # -- the read path -----------------------------------------------------

    def check(self, user: str, operation: str, obj: str,
              purpose: str | None = None,
              deadline: Deadline | None = None,
              scope: str | None = None) -> dict[str, Any]:
        """Serve one access check against the published kernel.

        Loads the published reference once, answers static checks from
        it with full side-effect parity (the engine's own commit
        helper), and delegates anything the kernel classified dynamic —
        or anything the engine-side parity gates exclude (tracing on,
        extra observers, a default deadline) — to the engine's
        interpreted pipeline, which owns the fallback-reason taxonomy.

        ``deadline`` is the per-request budget the front-end threads
        down from the ``X-Deadline-Ms`` header / ``--request-timeout-ms``
        default.  A budget that is still live does *not* evict a static
        check from the kernel fast path — bitset lookups cannot stall,
        so the budget only has to bound queueing (probed here and again
        by the engine before dispatch) and the interpreted pipeline
        (where it is threaded through to the rule manager's per-firing
        probes).  An exhausted budget denies fail-closed and the
        response carries ``timed_out`` so the front-end can separate
        overload denials from policy denials.
        """
        engine = self.engine
        sid = self.session_for(user)
        self.checks += 1
        if scope is not None:
            self.scoped_checks += 1
        kernel = self._kernel  # the single atomic reference read
        obs = engine.obs
        observers = engine.rules._observers
        expired = deadline is not None and deadline.exceeded() is not None
        if (not expired
                and kernel is not None and engine.kernel_enabled
                and engine.check_deadline is None
                and not (obs.enabled and (obs.tracer.enabled
                                          or obs.timing_interval == 1))
                and len(observers) == 1
                and observers[0] == engine._record_rule_firing):
            verdict = kernel.evaluate(sid, operation, obj, scope)
            if verdict >= 0:
                allowed = verdict == KERNEL_GRANT
                try:
                    engine._commit_kernel_decision(
                        kernel, allowed, sid, operation, obj, user,
                        scope)
                except OperationDenied:
                    pass
                return {"allowed": allowed, "path": "kernel",
                        "shard": self.name, "session": sid,
                        "epoch": kernel.epoch}
        # dynamic feature, parity gate, exhausted budget, or no
        # kernel: the engine's own pipeline decides (and counts the
        # fallback reason, deadline audit and denial exactly once)
        timed_out = False
        try:
            engine.require_access(sid, operation, obj, purpose,
                                  deadline=deadline, scope=scope)
            allowed = True
        except DeadlineExceeded:
            allowed = False
            timed_out = True
        except (OperationDenied, RuleExecutionError):
            allowed = False
        result = {"allowed": allowed, "path": "interpreted",
                  "shard": self.name, "session": sid, "epoch": self.epoch}
        if timed_out:
            result["timed_out"] = True
        return result

    def _after_check(self) -> None:
        """Post-decision control-plane tick (the front-end calls this
        outside the response path; direct callers get it via
        :meth:`checked`)."""
        self.poll_lifecycle()

    def checked(self, user: str, operation: str, obj: str,
                purpose: str | None = None,
                deadline: Deadline | None = None,
                scope: str | None = None) -> dict[str, Any]:
        """:meth:`check` plus the lifecycle tick — the entry point for
        embedded callers that have no serving loop to poll from."""
        try:
            return self.check(user, operation, obj, purpose=purpose,
                              deadline=deadline, scope=scope)
        finally:
            self._after_check()

    def check_degraded(self, user: str, operation: str, obj: str,
                       scope: str | None = None) -> dict[str, Any]:
        """Answer one read from the frozen published kernel only.

        The degraded-mode read path the front-end serves while this
        shard's circuit breaker is open: no engine pipeline, no
        session provisioning, no events — one pure probe against the
        last-good published kernel epoch.  Strictly fail-closed:

        * a caller with no already-live served session is denied (a
          session cannot be provisioned without touching the faulting
          engine);
        * anything the kernel classifies dynamic (context-gated roles,
          privacy-regulated objects, quarantined coverage) is denied
          rather than delegated — there is no interpreted pipeline to
          delegate to.

        Each decision is still recorded in the engine's flight
        recorder (path ``degraded``) so forensics cover the outage
        window.
        """
        self.checks += 1
        if scope is not None:
            self.scoped_checks += 1
        kernel = self._kernel
        sid = self._sessions.get(user)
        verdict, reason = KERNEL_GRANT + 1, "no_kernel"  # placeholder
        allowed = False
        if kernel is not None and sid is not None:
            # probe() is the tally-free evaluate: no fallback counters
            # move, so the taxonomy only ever reflects the live path
            verdict, reason = kernel.probe(sid, operation, obj, scope)
            allowed = verdict == KERNEL_GRANT
        elif sid is None:
            reason = "no_session"
        engine = self.engine
        engine.flight.note_decision(
            engine.clock.now, "degraded", sid or "-", user, operation,
            obj, "grant" if allowed else "deny",
            reason=reason, cause="breaker_open")
        return {"allowed": allowed, "path": "degraded",
                "shard": self.name, "session": sid,
                "epoch": self.epoch, "degraded": True}

    def explain(self, user: str, operation: str, obj: str,
                purpose: str | None = None,
                scope: str | None = None) -> dict[str, Any]:
        """Read-only derivation for one check (``GET /v1/explain``)."""
        sid = self.session_for(user)
        payload = self.engine.explain(sid, operation, obj,
                                      purpose=purpose,
                                      scope=scope).to_dict()
        payload["shard"] = self.name
        payload["epoch"] = self.epoch
        return payload

    # -- health ------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """The engine's degradation summary plus serve-plane fields."""
        report = self.engine.health()
        report["serve"] = {
            "shard": self.name,
            "published_epoch": self.epoch,
            "epoch_swaps": self.swaps,
            "checks": self.checks,
            "scoped_checks": self.scoped_checks,
            "sessions": self.sessions(),
            "wal_attached": self.durability is not None,
        }
        if self.lifecycle is not None:
            status = self.lifecycle.status()
            report["lifecycle"] = {
                "phase": status["phase"],
                "active_version": status["active_version"],
                "candidate_version": status["candidate_version"],
                "canary": status["canary"],
                "hold": status["hold"],
            }
        return report


class ShardRouter:
    """Route requests to tenant shards by home domain.

    A thin registry over a :class:`~repro.federation.Federation`: every
    shard is a federation domain, so the existing cross-domain role
    mappings double as the cross-*shard* entitlement rules.  Routing:

    1. an explicit ``domain`` field wins;
    2. else a ``name@home`` user routes to their home shard;
    3. else, with exactly one shard registered, that shard serves;
    4. anything else is an :class:`~repro.errors.AdministrationError`.

    A ``name@home`` user targeting a *different* domain is a visitor:
    the federation's mappings provision the guest principal (and its
    guest session) in the host shard on first touch, so every host-side
    constraint applies to the visitor exactly as to locals.
    """

    def __init__(self, federation: Federation | None = None) -> None:
        self.federation = federation if federation is not None \
            else Federation()
        self._shards: dict[str, Shard] = {}
        #: mappings :meth:`sync_federation` registered from config
        #: declarations (the only ones it will ever remove)
        self._synced_mappings: set[RoleMapping] = set()

    # -- registry ----------------------------------------------------------

    def add_shard(self, name: str, engine: ActiveRBACEngine,
                  durability: Any = None,
                  config_path: str | None = None) -> Shard:
        self.federation.add_domain(name, engine)
        shard = self._shards[name] = Shard(name, engine, durability,
                                           config_path=config_path)
        return shard

    def add_mapping(self, mapping: RoleMapping) -> None:
        self.federation.add_mapping(mapping)

    def sync_federation(self) -> dict[str, Any]:
        """Reconcile federation mappings with the shards' config state.

        Each shard's ``engine.policy.federation_maps`` declares the
        mappings *originating* from that shard (``home_domain`` is the
        shard itself) — the config-set form of the CLI's ``--map``.
        Desired-state sync: declared-but-missing mappings are added,
        and mappings *this sync itself registered* whose declaration
        disappeared (a promoted config dropped them) are removed.
        Hand-registered mappings (CLI ``--map`` / ``add_mapping``) are
        never touched.  A declaration whose host shard or host role
        does not (yet) exist is *skipped* fail-closed and reported —
        nothing is guessed, and the next sync picks it up once the
        host side exists.
        """
        desired: set[RoleMapping] = set()
        for name, shard in self._shards.items():
            for home_role, host_domain, host_role in getattr(
                    shard.engine.policy, "federation_maps", ()):
                if host_domain == name:
                    continue  # RoleMapping refuses same-domain maps
                desired.add(RoleMapping(name, home_role, host_domain,
                                        host_role))
        added: list[str] = []
        removed: list[str] = []
        skipped: list[dict[str, str]] = []
        current = set(self.federation._mappings)
        for mapping in sorted(desired - current,
                              key=RoleMapping.describe):
            try:
                self.federation.add_mapping(mapping)
                self._synced_mappings.add(mapping)
                added.append(mapping.describe())
            except ReproError as exc:
                skipped.append({"mapping": mapping.describe(),
                                "error": str(exc)})
        for mapping in sorted(self._synced_mappings - desired,
                              key=RoleMapping.describe):
            self.federation.remove_mapping(mapping)
            self._synced_mappings.discard(mapping)
            removed.append(mapping.describe())
        return {"added": added, "removed": removed, "skipped": skipped}

    def shard(self, name: str) -> Shard:
        try:
            return self._shards[name]
        except KeyError:
            raise AdministrationError(f"unknown shard {name!r}") from None

    def shards(self) -> Iterator[Shard]:
        return iter(self._shards.values())

    def __len__(self) -> int:
        return len(self._shards)

    # -- routing -----------------------------------------------------------

    def route(self, user: str,
              domain: str | None = None) -> tuple[Shard, str]:
        """Pure routing: map ``(user, domain?)`` to ``(shard, principal)``.

        Side-effect free — no guest provisioning, no engine touched —
        so the front-end can pick the target shard (and consult its
        bulkhead/breaker guard) *before* committing any work to it.
        The principal is the name the shard's engine knows the caller
        by: the bare name at home, the ``name@home`` guest principal
        when visiting.
        """
        name, at, home = user.partition("@")
        if not name:
            raise AdministrationError(f"empty user in {user!r}")
        if domain is None:
            if at:
                domain = home
            elif len(self._shards) == 1:
                domain = next(iter(self._shards))
            else:
                raise AdministrationError(
                    f"cannot route {user!r}: no domain given and "
                    f"{len(self._shards)} shards registered")
        shard = self.shard(domain)
        if not at or home == domain:
            return shard, name
        return shard, guest_principal(name, home)

    def resolve(self, user: str,
                domain: str | None = None) -> tuple[Shard, str]:
        """:meth:`route`, plus guest provisioning on first touch.

        Guest provisioning (user + mapped roles + session) happens
        here, through :meth:`Federation.visit` — fail-closed: an
        unreachable home domain raises
        :class:`~repro.errors.RetryExhausted` rather than guessing
        entitlements.
        """
        shard, principal = self.route(user, domain)
        name, at, home = user.partition("@")
        if not at or home == shard.name:
            return shard, principal
        # cross-shard visit: provision the guest on first touch
        engine = shard.engine
        if (principal not in engine.model.users
                or not engine.model.assigned_roles(principal)):
            sid = self.federation.visit(home, name, shard.name)
            # visit() opens the guest session with no roles active;
            # a stateless check API means "with everything the guest
            # is entitled to", so activate the mapped roles now
            shard.activate_assigned(sid, principal)
            shard._sessions[principal] = sid
        return shard, principal

    # -- request surface ---------------------------------------------------

    def check(self, user: str, operation: str, obj: str,
              domain: str | None = None,
              purpose: str | None = None,
              deadline: Deadline | None = None,
              scope: str | None = None) -> dict[str, Any]:
        shard, principal = self.resolve(user, domain)
        return shard.check(principal, operation, obj, purpose=purpose,
                           deadline=deadline, scope=scope)

    def explain(self, user: str, operation: str, obj: str,
                domain: str | None = None,
                purpose: str | None = None,
                scope: str | None = None) -> dict[str, Any]:
        shard, principal = self.resolve(user, domain)
        return shard.explain(principal, operation, obj, purpose=purpose,
                             scope=scope)

    def health(self) -> dict[str, Any]:
        """Aggregate health: ``ok`` only when every shard is ``ok``."""
        shards = {name: shard.health()
                  for name, shard in self._shards.items()}
        status = "ok" if all(
            report["status"] == "ok" for report in shards.values()
        ) else "degraded"
        return {"status": status, "shards": shards}

    def describe(self) -> str:
        lines = [f"router: {len(self._shards)} shard(s)"]
        for name, shard in sorted(self._shards.items()):
            lines.append(
                f"  {name}: epoch {shard.epoch}, "
                f"{len(shard.engine.rules)} rules, "
                f"{len(shard.engine.model.users)} users, "
                f"wal={'on' if shard.durability is not None else 'off'}")
        return "\n".join(lines)
