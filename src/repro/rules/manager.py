"""The rule pool: registration, triggering, priorities and cascades.

"All the active authorization rules that are generated form a *rule
pool*" (paper §4.3).  The :class:`RuleManager` owns that pool:

* it subscribes one dispatcher per event to the
  :class:`~repro.events.detector.EventDetector`;
* on detection it fires the enabled rules for that event in priority
  order (higher priority first, insertion order breaking ties);
* actions may raise further events (cascaded / nested rules); the
  manager tracks cascade depth and raises
  :class:`~repro.errors.RuleCascadeError` past a configurable limit;
* rules can be enabled/disabled individually, by classification, by
  granularity, or by tag — active security "disables certain critical
  authorization rules" through exactly this interface;
* every firing is reported to registered observers (the audit log);
* execution is **fault-contained**: an unexpected (non-``ReproError``)
  exception from a rule's W/T/E clause never escapes raw.  Per the
  :class:`~repro.containment.FailurePolicy` it is either converted
  into a typed :class:`~repro.errors.RuleExecutionError` deny (fail
  closed — the default for enforcement-class rules) or contained and
  skipped (fail open — advisory/active-security rules); repeated
  faults trip a per-rule circuit breaker that quarantines the rule,
  and an optional :class:`~repro.clock.Deadline` bounds the whole
  firing pipeline.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.containment import FailurePolicy
from repro.errors import (
    DuplicateRuleError,
    ReproError,
    RuleCascadeError,
    RuleExecutionError,
    UnknownRuleError,
)
from repro.events.detector import EventDetector
from repro.events.occurrence import Occurrence
from repro.rules.rule import (
    Granularity,
    OWTERule,
    RuleClass,
    RuleContext,
    RuleOutcome,
)

#: observer signature: (rule, occurrence, outcome, error-or-None)
FiringObserver = Callable[[OWTERule, Occurrence, RuleOutcome, Exception | None], None]

#: tag stamped on quarantined rules so tag queries/reports see them
QUARANTINE_TAG = "quarantined"


class RuleManager:
    """Registry and execution engine for the OWTE rule pool."""

    def __init__(self, detector: EventDetector, engine: Any = None,
                 max_cascade_depth: int = 64,
                 failure_policy: FailurePolicy | None = None) -> None:
        self.detector = detector
        self.engine = engine
        self.max_cascade_depth = max_cascade_depth
        self._rules: dict[str, OWTERule] = {}
        self._by_event: dict[str, list[OWTERule]] = {}
        #: inverted index (tag key, tag value) -> rule names, so
        #: tag-scoped removal/toggles do not scan the whole pool
        self._by_tag: dict[tuple[str, str], set[str]] = {}
        self._dispatchers: dict[str, Callable[[Occurrence], None]] = {}
        self._observers: list[FiringObserver] = []
        self._depth = 0
        #: optional :class:`~repro.obs.hub.ObsHub` (wired by the engine):
        #: outcome counters, W/T/E latency histograms, cascade depth,
        #: and per-firing trace spans.
        self.obs = None
        #: failure semantics for unexpected clause exceptions
        self.failure_policy = (failure_policy if failure_policy is not None
                               else FailurePolicy())
        #: escape hatch for the benchmark smoke job: False restores the
        #: seed raw-escape behaviour (no deadline probes, faults
        #: propagate unwrapped) so the containment wrapper's own cost
        #: can be measured on the fault-free path.
        self.containment = True
        #: optional :class:`~repro.clock.Deadline` for the *current*
        #: dispatch (a slot, like the engine's decision slot): checked
        #: before each rule fires so a stalled pipeline denies instead
        #: of running unbounded.
        self.deadline = None
        #: observer callbacks that raised (contained, counted)
        self.observer_faults = 0
        #: bumped on every pool mutation (add/remove/quarantine/rearm);
        #: one leg of the PolicyKernel validity triple
        self.version = 0
        #: per-event dispatch snapshots, rebuilt lazily after a
        #: mutation — dispatch and ``rules_for_event`` read these
        #: instead of copying the priority-sorted bucket every firing
        self._dispatch_cache: dict[str, tuple[OWTERule, ...]] = {}

    # -- pool management -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, name: str) -> bool:
        return name in self._rules

    def __iter__(self) -> Iterator[OWTERule]:
        return iter(self._rules.values())

    def get(self, name: str) -> OWTERule:
        try:
            return self._rules[name]
        except KeyError:
            raise UnknownRuleError(name) from None

    def add(self, rule: OWTERule) -> OWTERule:
        """Add a rule to the pool and subscribe it to its event."""
        if rule.name in self._rules:
            raise DuplicateRuleError(
                f"rule {rule.name!r} already exists in the pool"
            )
        self._rules[rule.name] = rule
        for item in rule.tags.items():
            self._by_tag.setdefault(item, set()).add(rule.name)
        bucket = self._by_event.setdefault(rule.event, [])
        bucket.append(rule)
        # Stable sort preserves insertion order among equal priorities.
        bucket.sort(key=lambda r: -r.priority)
        self.version += 1
        self._dispatch_cache.pop(rule.event, None)
        if rule.event not in self._dispatchers:
            dispatcher = self._make_dispatcher(rule.event)
            self._dispatchers[rule.event] = dispatcher
            self.detector.subscribe(rule.event, dispatcher)
        return rule

    def remove(self, name: str) -> OWTERule:
        """Remove a rule, dropping emptied index buckets.

        When the last rule for an event goes, the manager's dispatcher
        is unsubscribed from the detector too — a pool that churns
        rules (regeneration, chaos tests) must not accumulate dead
        dispatchers that fire into empty buckets forever.
        """
        rule = self.get(name)
        del self._rules[name]
        for item in rule.tags.items():
            bucket = self._by_tag.get(item)
            if bucket is not None:
                bucket.discard(name)
                if not bucket:
                    del self._by_tag[item]
        event_bucket = self._by_event[rule.event]
        event_bucket.remove(rule)
        self.version += 1
        self._dispatch_cache.pop(rule.event, None)
        if not event_bucket:
            del self._by_event[rule.event]
            dispatcher = self._dispatchers.pop(rule.event, None)
            if dispatcher is not None:
                self.detector.unsubscribe(rule.event, dispatcher)
        return rule

    def _names_matching_tags(self, tags: dict[str, str]) -> set[str]:
        """Rule names whose tags contain every (key, value) pair, via
        the inverted index (no full-pool scan)."""
        if not tags:
            return set(self._rules)
        buckets = [self._by_tag.get(item, set()) for item in tags.items()]
        smallest = min(buckets, key=len)
        return {
            name for name in smallest
            if all(name in bucket for bucket in buckets)
        }

    def remove_by_tags(self, **tags: str) -> list[OWTERule]:
        """Remove every rule whose tags match; returns the removed rules.

        This is the primitive regeneration builds on: drop all rules
        generated for one policy element, then regenerate them.
        """
        doomed = [self._rules[name]
                  for name in sorted(self._names_matching_tags(tags))]
        for rule in doomed:
            self.remove(rule.name)
        return doomed

    # -- queries ---------------------------------------------------------------

    def rules_for_event(self, event: str) -> list[OWTERule]:
        return list(self._dispatch_snapshot(event))

    def _dispatch_snapshot(self, event: str) -> tuple[OWTERule, ...]:
        """The priority-ordered rules for ``event`` as a cached tuple.

        The seed built a fresh list per dispatch; the cache makes the
        snapshot free on the hot path and is invalidated (per event)
        by add/remove and (wholesale) by quarantine/rearm, which flip
        firing eligibility without moving bucket membership.
        """
        cached = self._dispatch_cache.get(event)
        if cached is None:
            cached = self._dispatch_cache[event] = tuple(
                self._by_event.get(event, ()))
        return cached

    def by_classification(self, classification: RuleClass) -> list[OWTERule]:
        return [r for r in self._rules.values()
                if r.classification is classification]

    def by_granularity(self, granularity: Granularity) -> list[OWTERule]:
        return [r for r in self._rules.values()
                if r.granularity is granularity]

    def by_tags(self, **tags: str) -> list[OWTERule]:
        return [self._rules[name]
                for name in sorted(self._names_matching_tags(tags))]

    def summary(self) -> dict[str, int]:
        """Pool composition counters (used by benches and EXPERIMENTS.md).

        Keys are namespaced (``class.<value>`` / ``granularity.<value>``)
        so a classification and a granularity that happen to share a
        ``.value`` can never silently merge into one counter.
        """
        counts: dict[str, int] = {"total": len(self._rules)}
        quarantined = 0
        for rule in self._rules.values():
            class_key = "class." + rule.classification.value
            counts[class_key] = counts.get(class_key, 0) + 1
            gran_key = "granularity." + rule.granularity.value
            counts[gran_key] = counts.get(gran_key, 0) + 1
            if rule.quarantined:
                quarantined += 1
        counts["quarantined"] = quarantined
        return counts

    # -- enable / disable --------------------------------------------------------

    def enable(self, name: str) -> None:
        self.get(name).enabled = True

    def disable(self, name: str) -> None:
        self.get(name).enabled = False

    def set_enabled_by_tags(self, enabled: bool, **tags: str) -> int:
        """Bulk toggle; returns how many rules changed state."""
        changed = 0
        for name in self._names_matching_tags(tags):
            rule = self._rules[name]
            if rule.enabled != enabled:
                rule.enabled = enabled
                changed += 1
        return changed

    def set_enabled_by_classification(self, classification: RuleClass,
                                      enabled: bool) -> int:
        changed = 0
        for rule in self.by_classification(classification):
            if rule.enabled != enabled:
                rule.enabled = enabled
                changed += 1
        return changed

    # -- quarantine (per-rule circuit breaker) -----------------------------------

    def quarantine(self, name: str, reason: str = "manual") -> OWTERule:
        """Quarantine a rule: disable it, tag it, audit it, count it.

        The rule stops firing until :meth:`rearm` (manual) or — when
        the failure policy sets ``rearm_after`` — a virtual-clock timer
        re-arms it.  Idempotent while already quarantined.
        """
        rule = self.get(name)
        if rule.quarantined:
            return rule
        rule.enabled = False
        rule.quarantined = True
        rule.quarantine_epoch += 1
        self.version += 1
        self._dispatch_cache.pop(rule.event, None)
        rule.tags[QUARANTINE_TAG] = "1"
        self._by_tag.setdefault((QUARANTINE_TAG, "1"), set()).add(name)
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.rule_quarantined(name)
        audit = getattr(self.engine, "audit", None)
        if audit is not None:
            audit.record("rule.quarantine", rule=name, reason=reason)
        wal = getattr(self.engine, "wal", None)
        if wal is not None:
            wal.log("rule.quarantine", rule=name, reason=reason)
        # a quarantine trip is the flight recorder's marquee trigger:
        # dump the run-up (the faulting firings are still in the ring)
        dump_flight = getattr(self.engine, "dump_flight", None)
        if dump_flight is not None:
            dump_flight(f"rule.quarantine.{name}")
        rearm_after = self.failure_policy.rearm_after
        if rearm_after is not None:
            epoch = rule.quarantine_epoch
            self.detector.timers.schedule_after(
                rearm_after, lambda: self._timed_rearm(name, epoch))
        return rule

    def rearm(self, name: str, mode: str = "manual") -> bool:
        """Re-enable a quarantined rule with a reset fault streak.

        Returns False when the rule is not quarantined (including a
        rule that was re-armed already).
        """
        rule = self.get(name)
        if not rule.quarantined:
            return False
        rule.quarantined = False
        rule.enabled = True
        rule.consecutive_faults = 0
        self.version += 1
        self._dispatch_cache.pop(rule.event, None)
        if rule.tags.pop(QUARANTINE_TAG, None) is not None:
            bucket = self._by_tag.get((QUARANTINE_TAG, "1"))
            if bucket is not None:
                bucket.discard(name)
                if not bucket:
                    del self._by_tag[(QUARANTINE_TAG, "1")]
        audit = getattr(self.engine, "audit", None)
        if audit is not None:
            audit.record("rule.rearm", rule=name, mode=mode)
        wal = getattr(self.engine, "wal", None)
        if wal is not None:
            wal.log("rule.rearm", rule=name)
        return True

    def _timed_rearm(self, name: str, epoch: int) -> None:
        """Timer callback: re-arm iff this quarantine is still current
        (the rule may have been removed, manually re-armed, or
        re-quarantined — a later epoch — since the timer was armed)."""
        rule = self._rules.get(name)
        if (rule is None or not rule.quarantined
                or rule.quarantine_epoch != epoch):
            return
        self.rearm(name, mode="timed")

    def quarantined_rules(self) -> list[OWTERule]:
        """Currently quarantined rules (health/report surface)."""
        return [r for r in self._rules.values() if r.quarantined]

    def state_snapshot(self) -> list[dict]:
        """Breaker state worth surviving a restart: one entry per rule
        with a non-default fault history (snapshot v2 ``rules`` key)."""
        state = []
        for rule in self._rules.values():
            if not (rule.fault_count or rule.quarantined
                    or rule.quarantine_epoch):
                continue
            state.append({
                "name": rule.name,
                "fault_count": rule.fault_count,
                "consecutive_faults": rule.consecutive_faults,
                "quarantined": rule.quarantined,
                "quarantine_epoch": rule.quarantine_epoch,
            })
        return state

    def state_restore(self, state: list[dict]) -> int:
        """Re-apply persisted breaker state to the regenerated pool.

        Rules that no longer exist (policy drift between snapshot and
        restore) are skipped.  Quarantined entries go through
        :meth:`quarantine` so tagging/audit/obs stay consistent, then
        the persisted counters overwrite the defaults.  Returns how
        many rules were restored.
        """
        restored = 0
        for entry in state:
            rule = self._rules.get(entry.get("name", ""))
            if rule is None:
                continue
            if entry.get("quarantined"):
                self.quarantine(rule.name, reason="restored")
            rule.fault_count = int(entry.get("fault_count", 0))
            rule.consecutive_faults = int(
                entry.get("consecutive_faults", 0))
            rule.quarantine_epoch = int(entry.get("quarantine_epoch", 0))
            restored += 1
        return restored

    # -- firing ------------------------------------------------------------------

    def observe(self, observer: FiringObserver) -> None:
        """Register an observer called after every rule firing."""
        self._observers.append(observer)

    def raise_cascaded(self, event: str, **params: Any) -> None:
        """Raise an event from inside a rule action (cascaded rules)."""
        self.detector.raise_event(event, **params)

    def _make_dispatcher(self, event: str) -> Callable[[Occurrence], None]:
        def dispatch(occurrence: Occurrence) -> None:
            self._fire_rules(event, occurrence)

        return dispatch

    def _fire_rules(self, event: str, occurrence: Occurrence) -> None:
        if self._depth >= self.max_cascade_depth:
            raise RuleCascadeError(
                f"cascade depth {self._depth} exceeded limit "
                f"{self.max_cascade_depth} while firing rules for {event!r}"
            )
        self._depth += 1
        obs = self.obs
        if obs is not None and not obs.enabled:
            obs = None
        if obs is not None:
            # inline depth-1 fast path (see ObsHub.cascade_entered —
            # almost every dispatch enters at depth 1)
            depth = self._depth
            if depth == 1:
                obs._cascade_shallow += 1
            else:
                obs.cascade_entered(depth)
            tracing = obs.tracer.enabled
        else:
            tracing = False
        containment = self.containment
        deadline = self.deadline if containment else None
        try:
            # Snapshot: a rule that adds/removes rules mid-firing does not
            # perturb this round (mutation pops the cache entry, so this
            # tuple survives unchanged while the next round rebuilds).
            for rule in self._dispatch_snapshot(event):
                if not rule.enabled or rule.name not in self._rules:
                    continue
                if deadline is not None:
                    # a stalled pipeline denies (DeadlineExceeded is an
                    # AccessDenied: it rides the veto path below)
                    deadline.check(rule.name)
                ctx = RuleContext(occurrence=occurrence, rule=rule,
                                  manager=self, engine=self.engine)
                outcome = RuleOutcome.ERROR
                error: Exception | None = None
                timed = False
                if obs is not None:
                    # systematic sampling of the W/T/E latency
                    # histograms: every timing_interval-th firing is
                    # timed (inline — this runs once per firing)
                    tick = obs._timing_tick - 1
                    if tick > 0:
                        obs._timing_tick = tick
                    else:
                        obs._timing_tick = obs.timing_interval
                        timed = True
                span = obs.tracer.start(rule.name, "rule", event=event) \
                    if tracing else None
                try:
                    outcome = rule.execute(ctx, timed)
                    if rule.consecutive_faults:
                        # breaker resets on any clean firing
                        rule.consecutive_faults = 0
                except ReproError as exc:
                    # Expected veto path (AccessDenied & co): observers see
                    # an ELSE with the error attached, then it propagates.
                    outcome = RuleOutcome.ELSE
                    error = exc
                    raise
                except Exception as exc:  # noqa: BLE001 — containment boundary
                    error = exc
                    if not containment:
                        raise  # benchmark/raw mode: seed behaviour
                    wrapped = self._contain(rule, occurrence,
                                            ctx.clause, exc)
                    if wrapped is not None:
                        # fail closed: the fault becomes a typed deny
                        error = wrapped
                        raise wrapped from exc
                    # fail open: contained; the next rule still fires
                finally:
                    if obs is not None:
                        if error is not None:
                            # inline typed-error count (the deny path
                            # comes through here on every veto)
                            child = obs._error_cache.get(
                                (rule.name, type(error)))
                            if child is None:
                                child = obs.bind_error(rule.name, error)
                            child._value += 1
                        if timed:
                            obs.rule_timing(rule.name, rule.last_cond_ns,
                                            rule.last_act_ns)
                    if span is not None:
                        span.set_attr("outcome", outcome.value)
                        obs.tracer.end(span, error)
                    for observer in self._observers:
                        try:
                            observer(rule, occurrence, outcome, error)
                        except Exception as obs_exc:  # noqa: BLE001
                            # observers are advisory: contain, count,
                            # keep notifying the rest
                            self._observer_fault(rule, occurrence,
                                                 obs_exc)
        finally:
            self._depth -= 1

    def _contain(self, rule: OWTERule, occurrence: Occurrence,
                 clause: str, exc: Exception) -> RuleExecutionError | None:
        """Record one clause fault; maybe quarantine; decide the verdict.

        Returns the typed deny to raise (fail-closed) or None when the
        failure policy says this rule fails open.
        """
        rule.fault_count += 1
        rule.consecutive_faults += 1
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.rule_fault(rule.name, exc)
        audit = getattr(self.engine, "audit", None)
        if audit is not None:
            audit.record("rule.fault", rule=rule.name,
                         event=occurrence.event, clause=clause,
                         error=type(exc).__name__, message=str(exc))
        policy = self.failure_policy
        if (policy.quarantine_threshold
                and rule.consecutive_faults >= policy.quarantine_threshold
                and not rule.quarantined):
            self.quarantine(
                rule.name,
                reason=f"{rule.consecutive_faults} consecutive fault(s)")
        if policy.fails_open(rule):
            return None
        return RuleExecutionError(
            f"rule {rule.name!r} {clause} clause failed "
            f"({type(exc).__name__}: {exc}); denied by fail-closed policy",
            rule=rule.name, clause=clause, original=exc)

    def _observer_fault(self, rule: OWTERule, occurrence: Occurrence,
                        exc: Exception) -> None:
        """A firing observer raised: log + count, never propagate."""
        self.observer_faults += 1
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.observer_fault()
        audit = getattr(self.engine, "audit", None)
        if audit is not None:
            try:
                audit.record("observer.fault", rule=rule.name,
                             event=occurrence.event,
                             error=type(exc).__name__)
            except Exception:  # noqa: BLE001 — the audit log itself faulted
                pass

    # -- rendering ----------------------------------------------------------------

    def render_pool(self) -> str:
        """Every rule pretty-printed, grouped by classification."""
        blocks = []
        for classification in RuleClass:
            rules = self.by_classification(classification)
            if not rules:
                continue
            blocks.append(f"-- {classification.value} rules "
                          f"({len(rules)}) --")
            blocks.extend(rule.render() for rule in
                          sorted(rules, key=lambda r: r.name))
        return "\n\n".join(blocks)
