"""OWTE (On-When-Then-Else) active authorization rules.

The paper's enhancement of ECA rules (§3): a rule names an event ("O"),
a conjunction of conditions ("W"), actions run when every condition holds
("T"), and *alternative actions* run when any condition fails ("E") — the
branch that makes denial a first-class outcome in authorization.

:mod:`repro.rules.rule` defines the rule objects and execution context;
:mod:`repro.rules.manager` defines the rule pool that subscribes rules to
the event detector, orders them by priority, guards cascade depth, and
supports the classification (administrative / activity-control /
active-security) and granularity (specialized / localized / globalized)
taxonomy of §4.3.
"""

from repro.rules.manager import RuleManager
from repro.rules.rule import (
    Action,
    Condition,
    Granularity,
    OWTERule,
    RuleClass,
    RuleContext,
    RuleOutcome,
)

__all__ = [
    "Action",
    "Condition",
    "Granularity",
    "OWTERule",
    "RuleClass",
    "RuleContext",
    "RuleManager",
    "RuleOutcome",
]
