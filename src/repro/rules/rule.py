"""OWTE rule objects: On-When-Then-Else authorization rules.

A rule has five components (paper §3):

1. a name,
2. **O**n — the event whose detection triggers it,
3. **W**hen — conditions ``<C1, ..., Cn>`` evaluated on the occurrence,
4. **T**hen — actions ``<A1, ..., An>`` run when every condition is TRUE,
5. **E**lse — alternative actions ``<AA1, ..., AAn>`` run when any
   condition is FALSE.  "Alternative actions are critical in
   authorization management of data" — they are where denials happen.

Conditions and actions are named callables over a :class:`RuleContext`,
so generated rules can be pretty-printed in the paper's RULE [...] layout
(see :meth:`OWTERule.render`) and audited by name.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.events.occurrence import Occurrence

if TYPE_CHECKING:  # pragma: no cover
    from repro.rules.manager import RuleManager


class RuleClass(enum.Enum):
    """The three kinds of rules in the pool (paper §4.3).

    * ADMINISTRATIVE — used with high-level specification of access
      control policies (assignments, grants, hierarchy edits);
    * ACTIVITY_CONTROL — control the activities instances of U can
      perform (activation, access checks, cardinality, temporal);
    * ACTIVE_SECURITY — monitor state changes and take preventive
      measures (alert thresholds, automatic disabling).
    """

    ADMINISTRATIVE = "administrative"
    ACTIVITY_CONTROL = "activity_control"
    ACTIVE_SECURITY = "active_security"


class Granularity(enum.Enum):
    """Rule granularities (paper §4.3).

    * SPECIALIZED — specific to one instance of U (e.g. "Jane at most
      five active roles");
    * LOCALIZED — specific to one role, created from role properties
      (e.g. "Programmer activated by at most five users");
    * GLOBALIZED — not specific to any role; one rule invoked with
      different parameters (e.g. every user-role assignment).
    """

    SPECIALIZED = "specialized"
    LOCALIZED = "localized"
    GLOBALIZED = "globalized"


class RuleOutcome(enum.Enum):
    """What a firing did: the THEN branch, the ELSE branch, or an error."""

    THEN = "then"
    ELSE = "else"
    ERROR = "error"


class EvalClass(enum.Enum):
    """Can the decision plane compile this rule away?

    * STATIC — the rule's W/T/E semantics are a pure function of the
      policy (assignments, permissions, hierarchy), so a per-epoch
      compiled :class:`~repro.kernel.PolicyKernel` can answer for it
      without firing;
    * DYNAMIC — the rule reads runtime state the compiler cannot see
      (temporal windows, context variables, privacy purposes, DSD,
      active-security counters); every occurrence must go through the
      interpreted pipeline.

    The conservative default is DYNAMIC: an unclassified rule can never
    be compiled away, only ever slower, never wrong.
    """

    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclass
class RuleContext:
    """Everything a condition/action can see while a rule fires.

    Attributes:
        occurrence: the triggering event occurrence (parameters included).
        rule: the firing rule.
        manager: the rule manager (for raising cascaded events, disabling
            rules, ...).
        engine: the enclosing enforcement engine, when one exists; typed
            ``Any`` because rules are engine-agnostic.
        scratch: per-firing mutable storage shared between the W clause
            and the T/E clauses (e.g. a condition caches the roles it
            already fetched so an action need not re-query).
        clause: which OWTE clause is currently executing (``when`` /
            ``then`` / ``else``); maintained by :meth:`OWTERule.execute`
            so the manager can attribute a fault to the clause that
            raised it.
    """

    occurrence: Occurrence
    rule: "OWTERule"
    manager: "RuleManager"
    engine: Any = None
    scratch: dict[str, Any] = field(default_factory=dict)
    clause: str = "when"

    @property
    def params(self) -> dict[str, Any]:
        return dict(self.occurrence.params)

    def get(self, key: str, default: Any = None) -> Any:
        return self.occurrence.get(key, default)

    def raise_event(self, name: str, **params: Any) -> None:
        """Raise a cascaded event (the manager enforces depth limits)."""
        self.manager.raise_cascaded(name, **params)


@dataclass(frozen=True)
class Condition:
    """A named predicate over the rule context (one ``Ci`` of the W clause)."""

    description: str
    predicate: Callable[[RuleContext], bool]

    def __call__(self, ctx: RuleContext) -> bool:
        return bool(self.predicate(ctx))


@dataclass(frozen=True)
class Action:
    """A named effect over the rule context (one ``Ai`` / ``AAi``)."""

    description: str
    effect: Callable[[RuleContext], None]

    def __call__(self, ctx: RuleContext) -> None:
        self.effect(ctx)


def condition(description: str
              ) -> Callable[[Callable[[RuleContext], bool]], Condition]:
    """Decorator sugar: ``@condition("user IN userL")`` over a predicate."""

    def wrap(predicate: Callable[[RuleContext], bool]) -> Condition:
        return Condition(description, predicate)

    return wrap


def action(description: str
           ) -> Callable[[Callable[[RuleContext], None]], Action]:
    """Decorator sugar: ``@action("addSessionRole(sessionId)")``."""

    def wrap(effect: Callable[[RuleContext], None]) -> Action:
        return Action(description, effect)

    return wrap


@dataclass
class OWTERule:
    """One On-When-Then-Else authorization rule.

    Attributes:
        name: unique rule name within the pool (``AAR_1``, ``CC_1``, ...).
        event: name of the triggering event (the ON clause).
        conditions: the W clause — every condition must return TRUE for
            the THEN branch; an empty list means ``When TRUE``.
        actions: the T clause.
        alt_actions: the E clause; actions here typically raise
            :class:`~repro.errors.AccessDenied` subclasses.
        priority: rules on the same event fire in descending priority
            (ties broken by insertion order).
        classification / granularity: the paper's taxonomy, used for
            pool queries and bulk enable/disable.
        tags: free-form attribution (``{"role": "PC", "user": "Bob"}``)
            so regeneration can find all rules generated for one policy
            element.
        enabled: disabled rules never fire (active security toggles this).
    """

    name: str
    event: str
    conditions: Sequence[Condition] = ()
    actions: Sequence[Action] = ()
    alt_actions: Sequence[Action] = ()
    priority: int = 0
    classification: RuleClass = RuleClass.ACTIVITY_CONTROL
    granularity: Granularity = Granularity.GLOBALIZED
    tags: dict[str, str] = field(default_factory=dict)
    enabled: bool = True
    #: decision-plane classification (see :class:`EvalClass`): STATIC
    #: rules are eligible for kernel compilation, DYNAMIC rules always
    #: run interpreted.  Defaults DYNAMIC (safe, never-wrong).
    evaluation: EvalClass = EvalClass.DYNAMIC
    fired_count: int = 0
    then_count: int = 0
    else_count: int = 0
    #: fault-containment state (see rules/manager.py): total clause
    #: faults, the consecutive-fault streak feeding the circuit
    #: breaker, whether the rule is currently quarantined, and an
    #: epoch that invalidates stale timed re-arms after a manual
    #: re-arm + re-quarantine.
    fault_count: int = 0
    consecutive_faults: int = 0
    quarantined: bool = False
    quarantine_epoch: int = 0
    #: perf_counter_ns durations of the most recent timed firing
    #: (set by execute(..., timed=True); the manager feeds them to
    #: ObsHub.rule_timing after the firing settles)
    last_cond_ns: int = 0
    last_act_ns: int = 0

    def __post_init__(self) -> None:
        # Clause fingerprint frozen at construction.  The decision
        # plane refuses to compile (and falls back at evaluate time)
        # when the live clause tuples no longer match — which is how
        # fault-injection probes and any other clause rewiring keep
        # the interpreted pipeline, where they can actually run.
        self.clause_baseline = (tuple(self.conditions),
                                tuple(self.actions),
                                tuple(self.alt_actions))

    def evaluate_conditions(self, ctx: RuleContext) -> bool:
        """The W clause: conjunction, short-circuiting on first FALSE."""
        return all(cond(ctx) for cond in self.conditions)

    def execute(self, ctx: RuleContext, timed: bool = False) -> RuleOutcome:
        """Fire the rule: W, then T or E.

        Exceptions from actions propagate to the caller — an ELSE action
        raising :class:`~repro.errors.AccessDenied` is precisely how a
        request is vetoed.

        With ``timed=True`` the W clause and the taken branch are timed
        separately (``perf_counter_ns``) into ``last_cond_ns`` /
        ``last_act_ns`` for the manager to hand to the observability
        hub.  Timing lands even when an action raises — the denial path
        is the one worth measuring.
        """
        self.fired_count += 1
        if not timed:
            if self.evaluate_conditions(ctx):
                ctx.clause = "then"
                self.then_count += 1
                for act in self.actions:
                    act(ctx)
                return RuleOutcome.THEN
            ctx.clause = "else"
            self.else_count += 1
            for alt in self.alt_actions:
                alt(ctx)
            return RuleOutcome.ELSE

        start = time.perf_counter_ns()
        matched = self.evaluate_conditions(ctx)
        mid = time.perf_counter_ns()
        self.last_cond_ns = mid - start
        try:
            if matched:
                ctx.clause = "then"
                self.then_count += 1
                for act in self.actions:
                    act(ctx)
                return RuleOutcome.THEN
            ctx.clause = "else"
            self.else_count += 1
            for alt in self.alt_actions:
                alt(ctx)
            return RuleOutcome.ELSE
        finally:
            self.last_act_ns = time.perf_counter_ns() - mid

    def render(self) -> str:
        """Pretty-print in the paper's RULE [ name ON ... ] layout."""
        lines = [f"RULE [ {self.name}", f"    ON    {self.event}"]
        if self.conditions:
            conjunction = " &&\n          ".join(
                f"({c.description})" for c in self.conditions
            )
            lines.append(f"    WHEN  {conjunction}")
        else:
            lines.append("    WHEN  TRUE")
        if self.actions:
            lines.append("    THEN  " + "; ".join(
                a.description for a in self.actions))
        if self.alt_actions:
            lines.append("    ELSE  " + "; ".join(
                a.description for a in self.alt_actions))
        lines.append("]")
        return "\n".join(lines)

    def matches_tags(self, **tags: str) -> bool:
        """True when every given tag matches this rule's tags."""
        return all(self.tags.get(key) == value for key, value in tags.items())
