"""Write-ahead log and crash recovery for the active-rule engine.

:mod:`repro.persistence` gives the engine restart recovery at snapshot
granularity: everything since the last :func:`~repro.persistence.save`
is lost.  This module closes that window with a classic WAL design:

* every state-mutating operation (session create/drop, role
  activate/deactivate, role enable/disable, context update, user
  lock/unlock, policy regeneration epoch, rule quarantine/re-arm) is
  appended to an append-only log *after* it commits in memory;
* each record is one line — ``crc32 json\\n`` — so a torn tail (the
  crash landed mid-write) is detected by checksum and truncated, never
  replayed;
* fsyncs are batched (group commit): ``batch_size`` appends share one
  fsync, trading a bounded tail-loss window for throughput;
* recovery = newest valid snapshot + replay of every record with an
  LSN past the snapshot's high-water mark, *folded into the snapshot
  dict* and restored once — replay never re-fires rules;
* checkpointing writes a fresh snapshot (stamped with the WAL's last
  LSN) and rotates the log.  A crash between the two leaves stale
  records whose LSNs the snapshot already covers; recovery skips them.

The :class:`Durability` manager owns the wiring: construct it around a
live engine and every commit helper starts logging through
``engine.wal``; :func:`recover` rebuilds an equivalent engine from the
directory after a crash.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any

from repro.containment import fsync_dir, fsync_file

SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.log"

#: ops :func:`_apply` understands; unknown ops fail recovery loudly
#: rather than silently dropping a mutation class
KNOWN_OPS = frozenset({
    "session.create", "session.delete",
    "activation.add", "activation.drop",
    "role.status", "user.lock", "user.unlock",
    "context.set", "policy.epoch",
    "rule.quarantine", "rule.rearm", "clock.advance",
    # policy lifecycle (repro/config/): stage/refuse are audit-only
    # markers; promote/rollback swap the folded policy like
    # policy.epoch and pin the config version the swap deployed
    "config.stage", "config.promote", "config.rollback",
    "config.refuse",
    # opt-in decision journal (engine.decision_journal): not state —
    # recovery skips it, replay (repro/config/replay.py) re-runs it
    "decision.check",
})


def encode_record(record: dict[str, Any]) -> bytes:
    """One WAL line: crc32 of the compact-JSON payload, then the payload."""
    payload = json.dumps(record, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(payload), payload)


def decode_line(line: bytes) -> dict[str, Any] | None:
    """Parse one WAL line; None when torn/corrupt (bad CRC, bad JSON,
    missing newline — a write the crash interrupted)."""
    if not line.endswith(b"\n"):
        return None
    body = line[:-1]
    if len(body) < 10 or body[8:9] != b" ":
        return None
    try:
        crc = int(body[:8], 16)
    except ValueError:
        return None
    payload = body[9:]
    if zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    if not isinstance(record, dict) or not isinstance(
            record.get("lsn"), int):
        return None
    return record


def read_wal(path: str, *, repair: bool = False
             ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Read every valid record from a WAL file, stopping at the tail.

    Validity is per line (CRC + JSON + integer ``lsn``) *and* global:
    LSNs must be strictly increasing — a non-monotone LSN means the
    file was corrupted past what checksums can see, so reading stops
    there too.  With ``repair=True`` the file is truncated at the
    first bad byte (torn-tail repair) and fsynced.

    Returns ``(records, report)`` where the report carries ``torn``
    (bool), ``valid_bytes`` and ``dropped_bytes``.
    """
    records: list[dict[str, Any]] = []
    report: dict[str, Any] = {"torn": False, "valid_bytes": 0,
                              "dropped_bytes": 0}
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return records, report

    offset = 0
    last_lsn = None
    while offset < len(raw):
        end = raw.find(b"\n", offset)
        line = raw[offset:] if end < 0 else raw[offset:end + 1]
        record = decode_line(line)
        if record is None or (last_lsn is not None
                              and record["lsn"] <= last_lsn):
            break
        records.append(record)
        last_lsn = record["lsn"]
        offset += len(line)

    if offset < len(raw):
        report["torn"] = True
        report["dropped_bytes"] = len(raw) - offset
    report["valid_bytes"] = offset
    if repair and report["torn"]:
        with open(path, "r+b") as handle:
            handle.truncate(offset)
            fsync_file(handle)
    return records, report


class WriteAheadLog:
    """The append-only checksummed log file with batched fsync.

    ``batch_size`` appends share one fsync (group commit): a crash can
    lose at most the last ``batch_size - 1`` appended records, never
    corrupt earlier ones.  ``batch_size=1`` is strict write-through.
    """

    def __init__(self, path: str, *, batch_size: int = 8) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.path = path
        self.batch_size = batch_size
        # adopt whatever valid prefix an existing log holds (repairing
        # any torn tail first, so appends land on a clean boundary)
        existing, _ = read_wal(path, repair=True)
        self.last_lsn = existing[-1]["lsn"] if existing else 0
        self.records_kept = len(existing)
        self._handle = open(path, "ab")
        self._unsynced = 0
        self.append_count = 0
        self.fsync_count = 0
        self.rotation_count = 0

    def append(self, op: str, data: dict[str, Any], t: float) -> dict:
        """Append one record; fsync when the batch fills."""
        record = {"lsn": self.last_lsn + 1, "t": t, "op": op,
                  "data": data}
        _write_line(self._handle, encode_record(record))
        self.last_lsn = record["lsn"]
        self.append_count += 1
        self._unsynced += 1
        if self._unsynced >= self.batch_size:
            self.sync()
        return record

    def sync(self) -> bool:
        """Force buffered records to stable storage; True if it fsynced."""
        if self._unsynced == 0:
            self._handle.flush()
            return False
        fsync_file(self._handle)
        self._unsynced = 0
        self.fsync_count += 1
        return True

    def rotate(self) -> None:
        """Truncate the log (checkpoint compaction).  LSNs keep
        counting — they are global, not per-file, so recovery can
        order any surviving record against any snapshot."""
        self._handle.close()
        self._handle = open(self.path, "wb")
        fsync_file(self._handle)
        fsync_dir(os.path.dirname(os.path.abspath(self.path)))
        self._unsynced = 0
        self.records_kept = 0
        self.rotation_count += 1

    def close(self) -> None:
        if not self._handle.closed:
            self.sync()
            self._handle.close()


def _write_line(handle, line: bytes) -> None:
    """Single write site for WAL lines.

    Module-level so the crash harness can patch it
    (``chaos.patch(wal, "_write_line", point)``) to kill the process
    at an exact record boundary.
    """
    handle.write(line)


class Durability:
    """Attach WAL durability to a live engine.

    Wires ``engine.wal`` (the commit helpers in
    :mod:`repro.engine` / :mod:`repro.rules.manager` check it) and the
    context provider's ``on_set`` hook, writes an initial checkpoint,
    and exposes :meth:`checkpoint` / :meth:`close`.

    ``auto_checkpoint`` (records) bounds WAL growth: once that many
    records accumulate since the last checkpoint, the next
    :meth:`log` triggers snapshot + rotation automatically.
    """

    def __init__(self, engine: Any, directory: str, *,
                 batch_size: int = 8,
                 auto_checkpoint: int | None = None) -> None:
        os.makedirs(directory, exist_ok=True)
        self.engine = engine
        self.directory = directory
        self.snapshot_path = os.path.join(directory, SNAPSHOT_FILE)
        self.wal_path = os.path.join(directory, WAL_FILE)
        self.auto_checkpoint = auto_checkpoint
        self.wal = WriteAheadLog(self.wal_path, batch_size=batch_size)
        self._since_checkpoint = self.wal.records_kept
        self._in_checkpoint = False
        engine.wal = self
        engine.context.on_set = self._on_context_set
        self.checkpoint()

    # -- logging ---------------------------------------------------------------

    def log(self, op: str, **data: Any) -> dict[str, Any]:
        """Append one operation record (engine commit helpers call this)."""
        record = self.wal.append(op, data, self.engine.clock.now)
        self._since_checkpoint += 1
        obs = self.engine.obs
        if obs is not None and obs.enabled:
            obs.wal_appended(op, synced=self.wal._unsynced == 0)
        if (self.auto_checkpoint is not None
                and not self._in_checkpoint
                and self._since_checkpoint >= self.auto_checkpoint):
            self.checkpoint()
        return record

    def _on_context_set(self, name: str, value: Any) -> None:
        if isinstance(value, (str, int, float, bool, type(None))):
            self.log("context.set", key=name, value=value)

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot + rotate: the crash-safe compaction sequence.

        Order matters: (1) fsync the WAL so the snapshot never claims
        an LSN that is not durable; (2) atomically write the snapshot
        stamped with that LSN; (3) rotate the log.  A crash after (2)
        but before (3) leaves records the snapshot already covers —
        recovery skips them by LSN.
        """
        from repro import persistence
        self._in_checkpoint = True
        try:
            self.wal.sync()
            payload = persistence.snapshot(self.engine)
            payload["wal"] = {"lsn": self.wal.last_lsn}
            persistence._write_payload(
                self.snapshot_path,
                json.dumps(payload, separators=(",", ":"),
                           sort_keys=True))
            self.wal.rotate()
        finally:
            self._in_checkpoint = False
        self._since_checkpoint = 0
        obs = self.engine.obs
        if obs is not None and obs.enabled:
            obs.wal_rotated()
        self.engine.audit.record("wal.checkpoint",
                                 lsn=self.wal.last_lsn)
        return payload

    def close(self) -> None:
        """Final fsync + detach (the engine keeps running, unlogged)."""
        self.wal.close()
        if getattr(self.engine, "wal", None) is self:
            self.engine.wal = None
        if self.engine.context.on_set == self._on_context_set:
            self.engine.context.on_set = None


# ==========================================================================
# recovery: snapshot + WAL replay (fold, then restore once)
# ==========================================================================


def recover(directory: str) -> tuple[Any, dict[str, Any]]:
    """Rebuild an engine from a :class:`Durability` directory.

    Loads the newest valid snapshot, repairs/reads the WAL, folds every
    record with ``lsn > snapshot.wal.lsn`` into the snapshot *dict*,
    and calls :func:`repro.persistence.restore` once on the result.
    Folding (rather than re-driving a live engine) means replay can
    never re-fire rules, re-deny, or cascade.

    Returns ``(engine, report)``; the engine has **no** Durability
    attached — call ``Durability(engine, directory)`` to resume
    logging (which also checkpoints, folding the replayed tail into a
    fresh snapshot).
    """
    from repro import persistence

    snapshot_path = os.path.join(directory, SNAPSHOT_FILE)
    with open(snapshot_path, encoding="utf-8") as handle:
        state = json.load(handle)
    snapshot_lsn = int(state.get("wal", {}).get("lsn", 0))

    records, wal_report = read_wal(
        os.path.join(directory, WAL_FILE), repair=True)
    replayed = 0
    skipped = 0
    for record in records:
        if record["lsn"] <= snapshot_lsn:
            skipped += 1
            continue
        _apply(state, record)
        replayed += 1

    engine = persistence.restore(state)
    # the decision plane is never persisted (compiled state, not
    # authority state): recompile from the restored policy so the first
    # post-recovery check does not pay the build, and surface the cost
    kernel_us = None
    if engine.kernel_enabled:
        kernel_us = engine.kernel().build_ns / 1000
    report = {
        "snapshot_lsn": snapshot_lsn,
        "records": len(records),
        "replayed": replayed,
        "skipped": skipped,
        "torn": wal_report["torn"],
        "dropped_bytes": wal_report["dropped_bytes"],
        "clock": engine.clock.now,
        "sessions": len(engine.model.sessions),
        "kernel_rebuild_us": kernel_us,
    }
    obs = engine.obs
    if obs is not None and obs.enabled:
        obs.wal_recovered(replayed, torn=wal_report["torn"])
    engine.audit.record("wal.recover", **report)
    # forensics: leave a flight-recorder dump next to the state it was
    # recovered from (the ring holds only the recovery-time view, but
    # the dump's health/report context records what replay found)
    report["flightrec"] = engine.dump_flight("wal.recover",
                                             directory=directory)
    return engine, report


def _apply(state: dict[str, Any], record: dict[str, Any]) -> None:
    """Fold one WAL record into a snapshot-shaped state dict."""
    op = record["op"]
    if op not in KNOWN_OPS:
        raise ValueError(
            f"WAL record lsn={record['lsn']} has unknown op {op!r}; "
            "refusing to recover with a silently-dropped mutation")
    data = record.get("data", {})
    # virtual time only moves forward; every record advances the clock
    state["clock"] = max(float(state.get("clock", 0.0)),
                         float(record.get("t", 0.0)))
    sessions = state.setdefault("sessions", [])
    by_id = {session["id"]: session for session in sessions}
    counters = state.setdefault("counters", {})

    if op == "session.create":
        if data["id"] not in by_id:
            sessions.append({"id": data["id"], "user": data["user"],
                             "activations": {}})
        counters["session_seq"] = max(
            int(counters.get("session_seq", 1)), int(data.get("seq", 1)))
    elif op == "session.delete":
        state["sessions"] = [s for s in sessions if s["id"] != data["id"]]
    elif op == "activation.add":
        session = by_id.get(data["session"])
        if session is not None:
            session["activations"][data["role"]] = {
                "activation_id": int(data["activation_id"]),
                "started": float(data["started"]),
            }
        counters["activation_seq"] = max(
            int(counters.get("activation_seq", 1)),
            int(data.get("seq", 1)))
    elif op == "activation.drop":
        session = by_id.get(data["session"])
        if session is not None:
            session["activations"].pop(data["role"], None)
    elif op == "role.status":
        state.setdefault("role_enabled", {})[data["role"]] = \
            bool(data["enabled"])
    elif op == "user.lock":
        locked = set(state.get("locked_users", ()))
        locked.add(data["user"])
        state["locked_users"] = sorted(locked)
    elif op == "user.unlock":
        locked = set(state.get("locked_users", ()))
        locked.discard(data["user"])
        state["locked_users"] = sorted(locked)
    elif op == "context.set":
        state.setdefault("context", {})[data["key"]] = data["value"]
    elif op == "policy.epoch":
        # the record carries the full re-rendered policy: replay swaps
        # the text the rule pool regenerates from, no diffing needed
        state["policy"] = data["policy"]
        state["policy_epoch"] = int(data["epoch"])
    elif op in ("config.promote", "config.rollback"):
        # a lifecycle swap is a policy.epoch with a version id: fold
        # the deployed policy text and remember which config is live
        state["policy"] = data["policy"]
        state["policy_epoch"] = int(data["epoch"])
        state["config_version"] = int(data["version"])
    elif op in ("config.stage", "config.refuse", "decision.check"):
        # audit/journal records: no authority state to fold (staged
        # candidates never served; journaled decisions already
        # committed their effects through the ops above)
        pass
    elif op == "rule.quarantine":
        rules = {entry["name"]: entry
                 for entry in state.get("rules", ())}
        entry = rules.setdefault(data["rule"], {
            "name": data["rule"], "fault_count": 0,
            "consecutive_faults": 0, "quarantined": False,
            "quarantine_epoch": 0,
        })
        if not entry["quarantined"]:
            entry["quarantined"] = True
            entry["quarantine_epoch"] = \
                int(entry.get("quarantine_epoch", 0)) + 1
        state["rules"] = list(rules.values())
    elif op == "rule.rearm":
        for entry in state.get("rules", ()):
            if entry.get("name") == data["rule"]:
                entry["quarantined"] = False
                entry["consecutive_faults"] = 0
    elif op == "clock.advance":
        state["clock"] = max(float(state.get("clock", 0.0)),
                             float(data["to"]))
