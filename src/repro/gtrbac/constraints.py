"""GTRBAC constraint descriptors.

These are *declarative* records: the rule generator
(:mod:`repro.synthesis`) turns each into OWTE rules and temporal events,
exactly as the paper turns Rule 6/Rule 7 prose into rule + event sets.
Keeping the descriptors separate from the rules means a policy change
edits a descriptor and regenerates, instead of hand-editing "low level
semantic descriptors" (the paper's core maintainability argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gtrbac.periodic import PeriodicInterval


@dataclass(frozen=True)
class DurationConstraint:
    """Deactivate a role ``delta`` seconds after each activation.

    Paper Rule 7: *Deactivate an activated role after a duration Δ ...
    like limiting car parking to a fixed number of hours.*  When ``user``
    is set, the constraint is per user-role (a *specialized* rule is
    generated); otherwise it applies to every activation of the role
    (a *localized* rule).
    """

    role: str
    delta: float
    user: str | None = None

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError(
                f"activation duration must be positive, got {self.delta}"
            )

    def describe(self) -> str:
        who = f"user {self.user!r} in " if self.user else ""
        return f"deactivate {who}role {self.role!r} after {self.delta:g}s"


@dataclass(frozen=True)
class EnablingWindow:
    """A role is enabled only inside a periodic interval (shift times).

    GTRBAC periodic role enabling: the generator creates timers at every
    window boundary; the role is enabled while the window contains the
    current instant and disabled outside it.  The paper's example: *the
    shift time of role "day doctor" is changed from (8 a.m. to 4 p.m.)
    to (9 a.m. to 5 p.m.)* — a one-line policy edit, then regeneration.
    """

    role: str
    interval: PeriodicInterval

    def describe(self) -> str:
        return f"role {self.role!r} enabled {self.interval.describe()}"


@dataclass(frozen=True)
class DisablingTimeSoD:
    """Time-based SoD on *disabling*: within the interval, at most one
    role from ``roles`` may be disabled at a time.

    Paper Rule 6: *both "Nurse" and "Doctor" roles cannot be disabled at
    the same time within the interval ([begin, end], P)* — availability
    constraints: someone must be on duty.  Disabling role X inside the
    interval is denied when any other role in the set is already
    disabled.
    """

    name: str
    roles: frozenset[str]
    interval: PeriodicInterval

    def __post_init__(self) -> None:
        if len(self.roles) < 2:
            raise ValueError(
                f"disabling-time SoD {self.name!r} needs >= 2 roles"
            )

    def describe(self) -> str:
        return (f"at most one of {sorted(self.roles)} disabled during "
                f"{self.interval.describe()}")


@dataclass
class TemporalPolicy:
    """Bundle of every temporal constraint attached to a policy.

    The policy graph stores one of these; regeneration diffs it.
    """

    durations: list[DurationConstraint] = field(default_factory=list)
    windows: list[EnablingWindow] = field(default_factory=list)
    disabling_sod: list[DisablingTimeSoD] = field(default_factory=list)

    def for_role(self, role: str) -> "TemporalPolicy":
        """The slice of constraints mentioning ``role`` (regeneration)."""
        return TemporalPolicy(
            durations=[d for d in self.durations if d.role == role],
            windows=[w for w in self.windows if w.role == role],
            disabling_sod=[s for s in self.disabling_sod
                           if role in s.roles],
        )

    def is_empty(self) -> bool:
        return not (self.durations or self.windows or self.disabling_sod)
