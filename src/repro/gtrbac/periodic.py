"""Periodic expressions: GTRBAC's ``(I, P)`` time structure.

Paper Rule 6: "(I, P) corresponds to ``<[begin, end], P>``, where P is a
periodic expression denoting an infinite set of periodic time instants,
and ``[begin, end]`` is a time interval denoting lower and upper bounds
that are imposed on instants in P."

:class:`PeriodicInterval` models the practically dominant cases — a
daily time-of-day window, optionally restricted to days of the week
(GTRBAC's weekly periodic expressions) and bounded by absolute
``[begin, end]`` instants.  That covers every example in the paper
(shift times, *10 a.m. to 5 p.m. every day*, *start of year to end of
year*) plus weekday-only shifts.  Arbitrary calendar patterns remain
available through :class:`~repro.events.calendar.CalendarExpression`
absolute events.

All times are simulated seconds since :data:`repro.clock.SIMULATED_EPOCH`
(which is a midnight, so seconds-of-day arithmetic is exact).  Weekdays
use Python's convention: Monday = 0 .. Sunday = 6.  A *wrapping* window
(22:00 -> 06:00) belongs to the day it **starts**: a Monday night shift
covers Tuesday 03:00.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import SECONDS_PER_DAY, SIMULATED_EPOCH
from repro.events.calendar import parse_time_of_day

#: weekday of the simulated epoch (Jan 1 2005 is a Saturday = 5)
EPOCH_WEEKDAY = SIMULATED_EPOCH.weekday()

DAY_NAMES = ("mon", "tue", "wed", "thu", "fri", "sat", "sun")


def parse_days(names: "list[str] | tuple[str, ...]") -> frozenset[int]:
    """Parse day names (``mon`` .. ``sun``) to weekday indices."""
    result = set()
    for name in names:
        key = name.strip().lower()[:3]
        if key not in DAY_NAMES:
            raise ValueError(
                f"unknown day name {name!r}; expected one of {DAY_NAMES}")
        result.add(DAY_NAMES.index(key))
    return frozenset(result)


def weekday_of(seconds: float) -> int:
    """Weekday (Mon=0) of a simulated instant."""
    return (EPOCH_WEEKDAY + int(seconds // SECONDS_PER_DAY)) % 7


@dataclass(frozen=True)
class PeriodicInterval:
    """A recurring window bounded by optional absolute instants.

    Attributes:
        start_tod: window start, seconds past midnight (inclusive).
        end_tod: window end, seconds past midnight (exclusive).  When
            ``end_tod <= start_tod`` the window wraps past midnight
            into the next day (a night shift: 22:00 -> 06:00); the
            degenerate ``start_tod == end_tod`` case is a full 24-hour
            window.
        days: weekdays (Mon=0..Sun=6) on which a window *starts*, or
            ``None`` for every day.
        begin: absolute lower bound in simulated seconds (inclusive),
            or ``None`` for unbounded.
        end: absolute upper bound in simulated seconds (exclusive),
            or ``None`` for unbounded.
    """

    start_tod: float
    end_tod: float
    begin: float | None = None
    end: float | None = None
    days: frozenset[int] | None = None

    def __post_init__(self) -> None:
        for name, value in (("start_tod", self.start_tod),
                            ("end_tod", self.end_tod)):
            if not 0 <= value < SECONDS_PER_DAY:
                raise ValueError(
                    f"{name} must be within a day [0, 86400), got {value}"
                )
        if (self.begin is not None and self.end is not None
                and self.end <= self.begin):
            raise ValueError(
                f"interval bound end ({self.end}) must exceed "
                f"begin ({self.begin})"
            )
        if self.days is not None:
            if not self.days:
                raise ValueError("days must be non-empty or None")
            bad = {d for d in self.days if not 0 <= d <= 6}
            if bad:
                raise ValueError(f"weekday indices out of range: {bad}")

    @classmethod
    def daily(cls, start: str, end: str,
              begin: float | None = None,
              bound_end: float | None = None,
              days: "frozenset[int] | list[str] | None" = None
              ) -> "PeriodicInterval":
        """Build from clock-time strings: ``daily("10:00", "17:00")``.

        ``days`` may be weekday indices or day names
        (``["mon", "fri"]``).
        """
        if days is not None and not isinstance(days, frozenset):
            days = parse_days(list(days))
        return cls(parse_time_of_day(start), parse_time_of_day(end),
                   begin, bound_end, days)

    @classmethod
    def always(cls) -> "PeriodicInterval":
        """The degenerate window that contains every instant."""
        return cls(0.0, 0.0, None, None)

    @property
    def _wraps(self) -> bool:
        return self.end_tod <= self.start_tod

    def _day_allowed(self, day_index: int) -> bool:
        if self.days is None:
            return True
        return (EPOCH_WEEKDAY + day_index) % 7 in self.days

    def contains(self, now: float) -> bool:
        """Is the simulated instant inside the periodic window?"""
        if self.begin is not None and now < self.begin:
            return False
        if self.end is not None and now >= self.end:
            return False
        tod = now % SECONDS_PER_DAY
        day = int(now // SECONDS_PER_DAY)
        if self.start_tod == self.end_tod:
            in_window = True
            start_day = day  # 24h window starting at start_tod...
            if tod < self.start_tod:
                start_day = day - 1
        elif not self._wraps:
            in_window = self.start_tod <= tod < self.end_tod
            start_day = day
        else:
            in_window = tod >= self.start_tod or tod < self.end_tod
            start_day = day if tod >= self.start_tod else day - 1
        if not in_window:
            return False
        return self._day_allowed(start_day)

    def _breakpoint_candidates(self, anchor: float) -> list[float]:
        """Instants around ``anchor`` where containment *may* change."""
        base_day = int(anchor // SECONDS_PER_DAY) - 1
        instants: list[float] = []
        for offset in range(10):
            day = base_day + offset
            if not self._day_allowed(day):
                continue
            instants.append(day * SECONDS_PER_DAY + self.start_tod)
            if self._wraps or self.start_tod == self.end_tod:
                instants.append(
                    (day + 1) * SECONDS_PER_DAY + self.end_tod)
            else:
                instants.append(day * SECONDS_PER_DAY + self.end_tod)
        return instants

    def next_boundary(self, now: float) -> tuple[float, bool]:
        """The next *containment transition* strictly after ``now``.

        Returns ``(instant, opens)`` where ``opens`` is the containment
        state from that instant on.  Boundaries where the window closes
        and instantly re-opens (adjacent allowed days of a wrapping or
        full-day window) are coalesced away, as are boundaries masked
        by the absolute ``[begin, end)`` bounds.  ``(inf, False)`` when
        no transition remains — past the ``end`` bound, or a window
        that contains every instant (``always()``).
        """
        candidates = set(self._breakpoint_candidates(now))
        if self.begin is not None:
            candidates.add(self.begin)
            candidates.update(self._breakpoint_candidates(self.begin))
        if self.end is not None:
            candidates.add(self.end)
        current = self.contains(now)
        for instant in sorted(c for c in candidates if c > now):
            state = self.contains(instant)
            if state != current:
                return (instant, state)
        return (float("inf"), False)

    def describe(self) -> str:
        def tod(seconds: float) -> str:
            seconds = int(seconds)
            return (f"{seconds // 3600:02d}:{(seconds % 3600) // 60:02d}"
                    f":{seconds % 60:02d}")

        text = f"{tod(self.start_tod)}-{tod(self.end_tod)}"
        if self.days is None:
            text += " daily"
        else:
            names = ",".join(DAY_NAMES[d] for d in sorted(self.days))
            text += f" on {names}"
        if self.begin is not None or self.end is not None:
            begin = "epoch" if self.begin is None else f"{self.begin:g}s"
            end = "forever" if self.end is None else f"{self.end:g}s"
            text += f" within [{begin}, {end})"
        return text
