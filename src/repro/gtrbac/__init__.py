"""Generalized Temporal RBAC (GTRBAC) constraint support.

The paper (§4.3.2) demonstrates two GTRBAC constraint families on top of
OWTE rules and we implement the machinery for both, plus the periodic
role enabling/disabling that GTRBAC is built around:

* **periodic expressions** ``(I, P)`` — an interval ``[begin, end]``
  bounding an infinite set of periodic instants (e.g. *10 a.m. to 5 p.m.
  every day*): :class:`~repro.gtrbac.periodic.PeriodicInterval`;
* **duration constraints** — deactivate a role Δ seconds after
  activation, globally or per user-role (paper Rule 7):
  :class:`~repro.gtrbac.constraints.DurationConstraint`;
* **time-based SoD** — two roles from a set cannot both be disabled
  inside an interval (paper Rule 6):
  :class:`~repro.gtrbac.constraints.DisablingTimeSoD`;
* **role triggers** — enable/disable a role at calendar instants
  (shift times): :class:`~repro.gtrbac.constraints.EnablingWindow`.
"""

from repro.gtrbac.constraints import (
    DisablingTimeSoD,
    DurationConstraint,
    EnablingWindow,
)
from repro.gtrbac.periodic import PeriodicInterval

__all__ = [
    "DisablingTimeSoD",
    "DurationConstraint",
    "EnablingWindow",
    "PeriodicInterval",
]
