"""repro — Active Authorization Rules for Enforcing RBAC and its Extensions.

A from-scratch reproduction of Adaikkalavan & Chakravarthy (ICDE 2005):
On-When-Then-Else (OWTE) active authorization rules, automatically
generated from high-level enterprise policy, enforcing the NIST/ANSI
RBAC standard and its extensions (Generalized Temporal RBAC,
control-flow dependencies, privacy- and context-aware constraints) over
a Sentinel+-style active-object event substrate, with active security
(threshold monitoring and automatic countermeasures).

Quickstart::

    from repro import ActiveRBACEngine, parse_policy

    POLICY = '''
    policy demo {
      role Doctor; role Nurse;
      user alice;
      assign alice to Doctor;
      permission read on patient.dat;
      grant read on patient.dat to Doctor;
    }
    '''
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    session = engine.create_session("alice")
    engine.add_active_role(session, "Doctor")
    assert engine.check_access(session, "read", "patient.dat")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the reproduced experiments.
"""

from repro.baselines.direct import DirectRBACEngine
from repro.clock import Deadline, TimerService, VirtualClock
from repro.containment import FailurePolicy, retry_transient
from repro.engine import ActiveRBACEngine
from repro.errors import (
    AccessDenied,
    ActivationDenied,
    CardinalityExceeded,
    DeadlineExceeded,
    DsdViolationError,
    OperationDenied,
    PolicySyntaxError,
    PolicyValidationError,
    ReproError,
    RetryExhausted,
    RuleExecutionError,
    SsdViolationError,
    TransientError,
)
from repro.events import ConsumptionMode, EventDetector
from repro.kernel import (
    KERNEL_DENY,
    KERNEL_FALLBACK,
    KERNEL_GRANT,
    PolicyKernel,
)
from repro.obs import MetricsRegistry, ObsHub, Profiler, Tracer
from repro.policy import PolicyGraph, PolicySpec, parse_policy, validate_policy
from repro.rules import OWTERule, RuleManager
from repro.synthesis import PolicyEditor, full_regeneration, regenerate_roles

__version__ = "1.0.0"

__all__ = [
    "AccessDenied",
    "ActivationDenied",
    "ActiveRBACEngine",
    "CardinalityExceeded",
    "ConsumptionMode",
    "Deadline",
    "DeadlineExceeded",
    "DirectRBACEngine",
    "DsdViolationError",
    "EventDetector",
    "FailurePolicy",
    "KERNEL_DENY",
    "KERNEL_FALLBACK",
    "KERNEL_GRANT",
    "MetricsRegistry",
    "OWTERule",
    "ObsHub",
    "OperationDenied",
    "PolicyEditor",
    "PolicyGraph",
    "PolicyKernel",
    "PolicySpec",
    "PolicySyntaxError",
    "PolicyValidationError",
    "Profiler",
    "ReproError",
    "RetryExhausted",
    "RuleExecutionError",
    "RuleManager",
    "SsdViolationError",
    "TimerService",
    "Tracer",
    "TransientError",
    "VirtualClock",
    "full_regeneration",
    "parse_policy",
    "regenerate_roles",
    "retry_transient",
    "validate_policy",
]
