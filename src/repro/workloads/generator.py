"""Deterministic synthetic enterprise and request-stream generators.

All randomness flows from an explicit seed through :class:`random.Random`
so every benchmark run and test case is reproducible.

:func:`generate_enterprise` builds a :class:`~repro.policy.spec.PolicySpec`
shaped by :class:`EnterpriseShape`:

* roles arranged as a forest of seniority trees (``tree_fanout`` wide,
  ``tree_depth`` deep — enterprise org charts are shallow and wide);
* users assigned to a few roles each, respecting SSD;
* permissions spread over operations x objects, granted along the
  trees so hierarchy inheritance matters;
* SSD/DSD sets drawn from sibling roles (conflicts-of-interest arise
  between peers: purchase clerk vs approval clerk).

:func:`generate_request_stream` emits a deterministic operation mix
(session churn, activations, access checks) to drive either engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.policy.spec import PolicySpec


@dataclass(frozen=True)
class EnterpriseShape:
    """Knobs for the synthetic enterprise generator."""

    roles: int = 50
    users: int = 100
    tree_fanout: int = 4
    tree_depth: int = 3
    assignments_per_user: int = 2
    operations: int = 4
    objects: int = 30
    grants_per_role: int = 3
    ssd_sets: int = 2
    dsd_sets: int = 2
    sod_set_size: int = 2
    role_cardinality_fraction: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.roles < 1 or self.users < 1:
            raise ValueError("need at least one role and one user")
        if self.tree_fanout < 1 or self.tree_depth < 1:
            raise ValueError("tree fanout/depth must be >= 1")
        if not 0.0 <= self.role_cardinality_fraction <= 1.0:
            raise ValueError("role_cardinality_fraction must be in [0,1]")


def _role_name(index: int) -> str:
    return f"R{index:04d}"


def generate_enterprise(shape: EnterpriseShape) -> PolicySpec:
    """Build a policy spec for the given shape (deterministic in seed)."""
    rng = random.Random(shape.seed)
    spec = PolicySpec(name=f"synthetic-{shape.roles}r-{shape.users}u")

    roles = [_role_name(i) for i in range(shape.roles)]
    for index, role in enumerate(roles):
        max_users = None
        if rng.random() < shape.role_cardinality_fraction:
            max_users = rng.randint(1, 5)
        spec.add_role(role, max_users)

    # forest of seniority trees: parent of node i (within a tree block)
    # is (i - 1) // fanout; trees are `tree_size` nodes each.
    tree_size = sum(shape.tree_fanout ** d for d in range(shape.tree_depth))
    blocks: list[list[str]] = []
    for start in range(0, shape.roles, tree_size):
        block = roles[start:start + tree_size]
        blocks.append(block)
        for offset in range(1, len(block)):
            parent = block[(offset - 1) // shape.tree_fanout]
            child = block[offset]
            # parent is SENIOR to child: seniors inherit junior perms
            spec.add_hierarchy(parent, child)

    # SoD sets span *different* trees (enterprise-XYZ style: purchase
    # clerk vs approval clerk).  A set within one subtree would conflict
    # with the hierarchy: the common senior is authorized for every
    # member.  When fewer trees than the set size exist, no static sets
    # are generated.
    def cross_tree_members(index: int) -> set[str] | None:
        if len(blocks) < shape.sod_set_size:
            return None
        chosen_blocks = [
            blocks[(index + i) % len(blocks)]
            for i in range(shape.sod_set_size)
        ]
        return {rng.choice(block) for block in chosen_blocks}

    for index in range(shape.ssd_sets):
        members = cross_tree_members(index)
        if members is None or len(members) < shape.sod_set_size:
            continue
        spec.add_ssd(f"ssd{index}", members, 2)
    for index in range(shape.dsd_sets):
        members = cross_tree_members(index + shape.ssd_sets)
        if members is None or len(members) < shape.sod_set_size:
            continue
        spec.add_dsd(f"dsd{index}", members, 2)

    # permissions and grants
    operations = [f"op{i}" for i in range(shape.operations)]
    objects = [f"obj{i:04d}" for i in range(shape.objects)]
    for role in roles:
        for _ in range(shape.grants_per_role):
            operation = rng.choice(operations)
            obj = rng.choice(objects)
            if (role, operation, obj) not in spec.grants:
                spec.add_grant(role, operation, obj)

    # users: assigned to a few roles each, avoiding SSD conflicts by
    # retrying; deterministic given the seed.  The check uses the
    # authorized closure (role + all juniors), matching the model's
    # hierarchical SSD semantics.
    ssd_sets = [s.roles for s in spec.ssd.values()]
    children_of: dict[str, list[str]] = {}
    for senior, junior in spec.hierarchy:
        children_of.setdefault(senior, []).append(junior)

    def juniors_inclusive(role: str) -> set[str]:
        closure = {role}
        stack = list(children_of.get(role, ()))
        while stack:
            node = stack.pop()
            if node in closure:
                continue
            closure.add(node)
            stack.extend(children_of.get(node, ()))
        return closure

    def violates_ssd(assigned: set[str], candidate: str) -> bool:
        authorized: set[str] = set()
        for role in assigned | {candidate}:
            authorized |= juniors_inclusive(role)
        return any(len(authorized & sod) >= 2 for sod in ssd_sets)

    for index in range(shape.users):
        user = f"u{index:04d}"
        spec.add_user(user)
        assigned: set[str] = set()
        attempts = 0
        while (len(assigned) < shape.assignments_per_user
               and attempts < 20 * shape.assignments_per_user):
            attempts += 1
            candidate = rng.choice(roles)
            if candidate in assigned or violates_ssd(assigned, candidate):
                continue
            assigned.add(candidate)
            spec.add_assignment(user, candidate)
    return spec


@dataclass(frozen=True)
class Request:
    """One operation in a request stream."""

    kind: str  # "create_session" | "activate" | "drop" | "check" | "end"
    user: str = ""
    role: str = ""
    operation: str = ""
    obj: str = ""


def generate_request_stream(spec: PolicySpec, length: int,
                            seed: int = 11,
                            mix: tuple[float, float, float] = (0.2, 0.2, 0.6)
                            ) -> Iterator[Request]:
    """A deterministic stream of session/activation/access requests.

    ``mix`` = (session churn, activation churn, access checks) weights.
    Roles and objects are drawn from the spec; some requests reference
    roles the user is not assigned to, producing realistic denials.
    """
    rng = random.Random(seed)
    users = sorted(spec.users)
    roles = sorted(spec.roles)
    perms = spec.permissions or [("op0", "obj0000")]
    assigned: dict[str, list[str]] = {}
    for user, role in spec.assignments:
        assigned.setdefault(user, []).append(role)
    churn, activation, _check = mix
    for _ in range(length):
        user = rng.choice(users)
        draw = rng.random()
        if draw < churn:
            yield Request("create_session", user=user)
        elif draw < churn + activation:
            own = assigned.get(user)
            # 70% of activation attempts target an assigned role
            if own and rng.random() < 0.7:
                role = rng.choice(own)
            else:
                role = rng.choice(roles)
            yield Request("activate", user=user, role=role)
        else:
            operation, obj = rng.choice(perms)
            yield Request("check", user=user, operation=operation, obj=obj)
