"""Deterministic synthetic enterprise and request-stream generators.

All randomness flows from an explicit seed through :class:`random.Random`
so every benchmark run and test case is reproducible.

:func:`generate_enterprise` builds a :class:`~repro.policy.spec.PolicySpec`
shaped by :class:`EnterpriseShape`:

* roles arranged as a forest of seniority trees (``tree_fanout`` wide,
  ``tree_depth`` deep — enterprise org charts are shallow and wide);
* users assigned to a few roles each, respecting SSD;
* permissions spread over operations x objects, granted along the
  trees so hierarchy inheritance matters;
* SSD/DSD sets drawn from sibling roles (conflicts-of-interest arise
  between peers: purchase clerk vs approval clerk).

:func:`generate_request_stream` emits a deterministic operation mix
(session churn, activations, access checks) to drive either engine.

For the service plane, :func:`generate_fleet` builds a multi-shard
fleet of synthetic enterprises (one spec per shard, differently
seeded) and :func:`generate_service_plan` emits the HTTP-level op mix
(check / batch / explain / metrics / health, plus periodic
control-plane grants) that ``repro-rbac loadgen`` replays.  Both
``serve --synthetic`` and ``loadgen`` derive the same fleet from
``(shards, users, seed)``, so client and server agree on every user,
role and object name without any out-of-band coordination.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.policy.spec import PolicySpec


@dataclass(frozen=True)
class EnterpriseShape:
    """Knobs for the synthetic enterprise generator."""

    roles: int = 50
    users: int = 100
    tree_fanout: int = 4
    tree_depth: int = 3
    assignments_per_user: int = 2
    operations: int = 4
    objects: int = 30
    grants_per_role: int = 3
    ssd_sets: int = 2
    dsd_sets: int = 2
    sod_set_size: int = 2
    role_cardinality_fraction: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.roles < 1 or self.users < 1:
            raise ValueError("need at least one role and one user")
        if self.tree_fanout < 1 or self.tree_depth < 1:
            raise ValueError("tree fanout/depth must be >= 1")
        if not 0.0 <= self.role_cardinality_fraction <= 1.0:
            raise ValueError("role_cardinality_fraction must be in [0,1]")


def _role_name(index: int) -> str:
    return f"R{index:04d}"


def generate_enterprise(shape: EnterpriseShape) -> PolicySpec:
    """Build a policy spec for the given shape (deterministic in seed)."""
    rng = random.Random(shape.seed)
    spec = PolicySpec(name=f"synthetic-{shape.roles}r-{shape.users}u")

    roles = [_role_name(i) for i in range(shape.roles)]
    for index, role in enumerate(roles):
        max_users = None
        if rng.random() < shape.role_cardinality_fraction:
            max_users = rng.randint(1, 5)
        spec.add_role(role, max_users)

    # forest of seniority trees: parent of node i (within a tree block)
    # is (i - 1) // fanout; trees are `tree_size` nodes each.
    tree_size = sum(shape.tree_fanout ** d for d in range(shape.tree_depth))
    blocks: list[list[str]] = []
    for start in range(0, shape.roles, tree_size):
        block = roles[start:start + tree_size]
        blocks.append(block)
        for offset in range(1, len(block)):
            parent = block[(offset - 1) // shape.tree_fanout]
            child = block[offset]
            # parent is SENIOR to child: seniors inherit junior perms
            spec.add_hierarchy(parent, child)

    # SoD sets span *different* trees (enterprise-XYZ style: purchase
    # clerk vs approval clerk).  A set within one subtree would conflict
    # with the hierarchy: the common senior is authorized for every
    # member.  When fewer trees than the set size exist, no static sets
    # are generated.
    def cross_tree_members(index: int) -> set[str] | None:
        if len(blocks) < shape.sod_set_size:
            return None
        chosen_blocks = [
            blocks[(index + i) % len(blocks)]
            for i in range(shape.sod_set_size)
        ]
        return {rng.choice(block) for block in chosen_blocks}

    for index in range(shape.ssd_sets):
        members = cross_tree_members(index)
        if members is None or len(members) < shape.sod_set_size:
            continue
        spec.add_ssd(f"ssd{index}", members, 2)
    for index in range(shape.dsd_sets):
        members = cross_tree_members(index + shape.ssd_sets)
        if members is None or len(members) < shape.sod_set_size:
            continue
        spec.add_dsd(f"dsd{index}", members, 2)

    # permissions and grants
    operations = [f"op{i}" for i in range(shape.operations)]
    objects = [f"obj{i:04d}" for i in range(shape.objects)]
    for role in roles:
        for _ in range(shape.grants_per_role):
            operation = rng.choice(operations)
            obj = rng.choice(objects)
            if (role, operation, obj) not in spec.grants:
                spec.add_grant(role, operation, obj)

    # users: assigned to a few roles each, avoiding SSD conflicts by
    # retrying; deterministic given the seed.  The check uses the
    # authorized closure (role + all juniors), matching the model's
    # hierarchical SSD semantics.
    ssd_sets = [s.roles for s in spec.ssd.values()]
    children_of: dict[str, list[str]] = {}
    for senior, junior in spec.hierarchy:
        children_of.setdefault(senior, []).append(junior)

    def juniors_inclusive(role: str) -> set[str]:
        closure = {role}
        stack = list(children_of.get(role, ()))
        while stack:
            node = stack.pop()
            if node in closure:
                continue
            closure.add(node)
            stack.extend(children_of.get(node, ()))
        return closure

    def violates_ssd(assigned: set[str], candidate: str) -> bool:
        authorized: set[str] = set()
        for role in assigned | {candidate}:
            authorized |= juniors_inclusive(role)
        return any(len(authorized & sod) >= 2 for sod in ssd_sets)

    for index in range(shape.users):
        user = f"u{index:04d}"
        spec.add_user(user)
        assigned: set[str] = set()
        attempts = 0
        while (len(assigned) < shape.assignments_per_user
               and attempts < 20 * shape.assignments_per_user):
            attempts += 1
            candidate = rng.choice(roles)
            if candidate in assigned or violates_ssd(assigned, candidate):
                continue
            assigned.add(candidate)
            spec.add_assignment(user, candidate)
    return spec


def add_scoped_layer(spec: PolicySpec, *, orgs: int = 4,
                     collections_per_org: int = 4,
                     resources_per_collection: int = 4,
                     scoped_grants_per_role: int = 1,
                     scoped_assignment_fraction: float = 0.5,
                     extra_scoped_assignments: int = 0,
                     seed: int = 13) -> list[str]:
    """Layer a multi-org scope tree onto an existing enterprise spec.

    Builds the ``org ▸ collection ▸ resource`` tree under the implicit
    platform root, then scatters scoped grants over the org/collection
    anchors and bounds a fraction of the existing user-role assignments
    to a single org.  Because a bound (or grant) at an ancestor covers
    every descendant, the *effective* user-scope-role triple count is
    ``bounded_pairs x scopes_under_the_anchor`` — a few thousand scopes
    and a few thousand bounded pairs imply millions of implicit triples
    without materialising any of them.

    Deterministic in ``seed``; returns the scope names in declaration
    order (parents before children, as the DSL requires).
    """
    if orgs < 1:
        raise ValueError("need at least one org")
    rng = random.Random(seed)
    scopes: list[str] = []
    org_scopes: list[str] = []
    anchor_scopes: list[str] = []
    for o in range(orgs):
        org = f"org{o:02d}"
        spec.add_scope(org)
        scopes.append(org)
        org_scopes.append(org)
        anchor_scopes.append(org)
        for c in range(collections_per_org):
            col = f"{org}/col{c:02d}"
            spec.add_scope(col, org)
            scopes.append(col)
            anchor_scopes.append(col)
            for r in range(resources_per_collection):
                res = f"{col}/res{r:02d}"
                spec.add_scope(res, col)
                scopes.append(res)

    roles = sorted(spec.roles)
    perms = list(spec.permissions) or [("op0", "obj0000")]
    granted = set(spec.scoped_grants)
    for role in roles:
        for _ in range(scoped_grants_per_role):
            operation, obj = rng.choice(perms)
            row = (role, operation, obj, rng.choice(anchor_scopes))
            if row not in granted:
                granted.add(row)
                spec.add_scoped_grant(*row)

    # bound a fraction of the existing assignments to one org: those
    # pairs stop satisfying flat checks and only answer inside the org
    bounded = set(
        (user, role) for user, role, _scope in spec.scoped_assignments)
    for user, role in spec.assignments:
        if (user, role) in bounded:
            continue
        if rng.random() < scoped_assignment_fraction:
            bounded.add((user, role))
            spec.add_scoped_assignment(user, role, rng.choice(org_scopes))

    # fresh scoped-only assignments (pairs the flat layer never made),
    # guarded by the same hierarchical-SSD feasibility the flat
    # generator honours so the validator still accepts the spec
    users = sorted(spec.users)
    flat = set(spec.assignments)
    ssd_sets = [s.roles for s in spec.ssd.values()]
    children_of: dict[str, list[str]] = {}
    for senior, junior in spec.hierarchy:
        children_of.setdefault(senior, []).append(junior)

    def juniors_inclusive(role: str) -> set[str]:
        closure = {role}
        stack = list(children_of.get(role, ()))
        while stack:
            node = stack.pop()
            if node in closure:
                continue
            closure.add(node)
            stack.extend(children_of.get(node, ()))
        return closure

    roles_of: dict[str, set[str]] = {}
    for user, role in flat | bounded:
        roles_of.setdefault(user, set()).add(role)

    def violates_ssd(user: str, candidate: str) -> bool:
        authorized: set[str] = set()
        for role in roles_of.get(user, set()) | {candidate}:
            authorized |= juniors_inclusive(role)
        return any(len(authorized & sod) >= 2 for sod in ssd_sets)

    attempts = 0
    added = 0
    while added < extra_scoped_assignments and attempts < 20 * max(
            1, extra_scoped_assignments):
        attempts += 1
        user, role = rng.choice(users), rng.choice(roles)
        if (user, role) in flat or (user, role) in bounded:
            continue
        if violates_ssd(user, role):
            continue
        bounded.add((user, role))
        roles_of.setdefault(user, set()).add(role)
        spec.add_scoped_assignment(user, role, rng.choice(org_scopes))
        added += 1
    return scopes


@dataclass(frozen=True)
class Request:
    """One operation in a request stream."""

    kind: str  # "create_session" | "activate" | "drop" | "check" | "end"
    user: str = ""
    role: str = ""
    operation: str = ""
    obj: str = ""


def generate_request_stream(spec: PolicySpec, length: int,
                            seed: int = 11,
                            mix: tuple[float, float, float] = (0.2, 0.2, 0.6)
                            ) -> Iterator[Request]:
    """A deterministic stream of session/activation/access requests.

    ``mix`` = (session churn, activation churn, access checks) weights.
    Roles and objects are drawn from the spec; some requests reference
    roles the user is not assigned to, producing realistic denials.
    """
    rng = random.Random(seed)
    users = sorted(spec.users)
    roles = sorted(spec.roles)
    perms = spec.permissions or [("op0", "obj0000")]
    assigned: dict[str, list[str]] = {}
    for user, role in spec.assignments:
        assigned.setdefault(user, []).append(role)
    churn, activation, _check = mix
    for _ in range(length):
        user = rng.choice(users)
        draw = rng.random()
        if draw < churn:
            yield Request("create_session", user=user)
        elif draw < churn + activation:
            own = assigned.get(user)
            # 70% of activation attempts target an assigned role
            if own and rng.random() < 0.7:
                role = rng.choice(own)
            else:
                role = rng.choice(roles)
            yield Request("activate", user=user, role=role)
        else:
            operation, obj = rng.choice(perms)
            yield Request("check", user=user, operation=operation, obj=obj)


# ======================================================================
# service plane: multi-shard fleets and HTTP-level op plans
# ======================================================================


def fleet_shard_name(index: int) -> str:
    return f"shard{index:02d}"


def generate_fleet(shards: int = 2, users: int = 10_000,
                   roles: int = 50, seed: int = 7,
                   **shape_kwargs: Any) -> dict[str, PolicySpec]:
    """A fleet of synthetic enterprises, one spec per shard.

    ``users`` is the *total* simulated population, split evenly across
    the shards; each shard gets its own seed so the tenants differ.
    Extra keyword arguments pass through to :class:`EnterpriseShape`.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    per_shard = max(1, (users + shards - 1) // shards)
    fleet: dict[str, PolicySpec] = {}
    for index in range(shards):
        shape = EnterpriseShape(roles=roles, users=per_shard,
                                seed=seed + index, **shape_kwargs)
        spec = generate_enterprise(shape)
        spec.name = fleet_shard_name(index)
        fleet[spec.name] = spec
    return fleet


@dataclass(frozen=True)
class ServiceOp:
    """One HTTP-level operation in a service-plane plan.

    ``kind`` is one of ``check``, ``check_batch``, ``explain``,
    ``metrics``, ``health``, ``admin``; ``payload`` is the request
    body (POST) or query arguments (GET) the client sends.
    """

    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


def _unused_grants(spec: PolicySpec) -> Iterator[tuple[str, str, str]]:
    """Deterministically enumerate (role, operation, object) triples
    the spec does *not* already grant — the admin-mutation supply.

    Each is a pure addition, so plan replay order (concurrent loadgen
    workers finish out of order) can never double-grant or revoke a
    grant that is not there: every admin op succeeds and bumps the
    policy epoch exactly once.
    """
    granted = set(spec.grants)
    for role in sorted(spec.roles):
        for operation, obj in spec.permissions:
            if (role, operation, obj) not in granted:
                yield role, operation, obj


def generate_service_plan(
        fleet: dict[str, PolicySpec], length: int, seed: int = 23,
        mix: tuple[float, float, float, float, float]
        = (0.82, 0.08, 0.06, 0.02, 0.02),
        admin_every: int = 0, batch_size: int = 8) -> list[ServiceOp]:
    """The deterministic HTTP op mix ``repro-rbac loadgen`` replays.

    ``mix`` weights (check, check_batch, explain, metrics, health).
    With more than one shard, users are addressed as ``name@shard`` so
    the router's home-domain rule picks the right tenant.  When
    ``admin_every`` is N > 0, every Nth op is a control-plane grant
    (``POST /v1/admin``) drawn from :func:`_unused_grants`, round-robin
    across shards — the mid-run mutations whose epoch swaps the
    differential test observes.
    """
    rng = random.Random(seed)
    shard_names = sorted(fleet)
    if not shard_names:
        raise ValueError("empty fleet")
    qualify = len(shard_names) > 1
    per_shard: dict[str, tuple[list[str], list[tuple[str, str]]]] = {}
    admin_supply: dict[str, Iterator[tuple[str, str, str]]] = {}
    for name in shard_names:
        spec = fleet[name]
        users = sorted(spec.users)
        perms = spec.permissions or [("op0", "obj0000")]
        per_shard[name] = (users, list(perms))
        admin_supply[name] = _unused_grants(spec)

    def draw_check(shard: str) -> dict[str, Any]:
        users, perms = per_shard[shard]
        user = rng.choice(users)
        operation, obj = rng.choice(perms)
        return {"user": f"{user}@{shard}" if qualify else user,
                "operation": operation, "object": obj}

    plan: list[ServiceOp] = []
    check_w, batch_w, explain_w, metrics_w, _health_w = mix
    for index in range(length):
        shard = shard_names[index % len(shard_names)]
        if admin_every > 0 and (index + 1) % admin_every == 0:
            try:
                role, operation, obj = next(admin_supply[shard])
            except StopIteration:
                pass  # tenant fully granted; fall through to the mix
            else:
                plan.append(ServiceOp("admin", {
                    "domain": shard, "op": "grant",
                    "args": {"role": role, "operation": operation,
                             "object": obj}}))
                continue
        draw = rng.random()
        if draw < check_w:
            plan.append(ServiceOp("check", draw_check(shard)))
        elif draw < check_w + batch_w:
            checks = [draw_check(shard)
                      for _ in range(max(1, batch_size))]
            plan.append(ServiceOp("check_batch", {"checks": checks}))
        elif draw < check_w + batch_w + explain_w:
            plan.append(ServiceOp("explain", draw_check(shard)))
        elif draw < check_w + batch_w + explain_w + metrics_w:
            plan.append(ServiceOp("metrics", {}))
        else:
            plan.append(ServiceOp("health", {}))
    return plan
