"""Synthetic enterprise workloads for tests and benchmarks.

The paper reports no traces; its scale claims are parametric ("large
enterprises have hundreds of roles, which requires thousands of rules").
:mod:`repro.workloads.generator` builds deterministic synthetic
enterprises — role forests, SoD sets, user populations, permission
matrices — and request streams over them, parameterised by the knobs
each benchmark sweeps.
"""

from repro.workloads.generator import (
    EnterpriseShape,
    ServiceOp,
    add_scoped_layer,
    fleet_shard_name,
    generate_enterprise,
    generate_fleet,
    generate_request_stream,
    generate_service_plan,
)

__all__ = [
    "EnterpriseShape",
    "ServiceOp",
    "add_scoped_layer",
    "fleet_shard_name",
    "generate_enterprise",
    "generate_fleet",
    "generate_request_stream",
    "generate_service_plan",
]
