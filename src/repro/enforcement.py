"""Shared enforcement predicates: the checks both engines agree on.

The active (OWTE-rule) engine and the direct baseline must make
*identical* decisions — the paper's claim is that rules are a better
*mechanism*, not a different policy.  Every non-trivial predicate
therefore lives here, in a mixin both engines inherit; the active engine
calls them from generated W-clause conditions, the baseline calls them
inline.  The differential property tests rely on this single source of
truth only for convenience: each predicate is also unit-tested directly
against hand-computed expectations.

Expected attributes on the inheriting engine:

* ``model`` — an :class:`~repro.rbac.model.RBACModel`;
* ``policy`` — a :class:`~repro.policy.spec.PolicySpec`;
* ``context`` — a :class:`~repro.extensions.context.ContextProvider`;
* ``privacy`` — a :class:`~repro.extensions.privacy.PrivacyRegistry`;
* ``clock`` — a :class:`~repro.clock.VirtualClock`;
* ``locked_users`` — a ``set[str]`` maintained by active security.
"""

from __future__ import annotations


class EnforcementHelpers:
    """Mixin of pure policy predicates over shared engine state."""

    # -- user status ------------------------------------------------------------

    def is_user_locked(self, user: str | None) -> bool:
        return user is not None and user in self.locked_users

    # -- activation revalidation ---------------------------------------------------

    def unauthorized_activations(self, user: str | None = None
                                 ) -> list[tuple[str, str]]:
        """(session, role) pairs whose activation is no longer
        authorized — after a deassignment or hierarchy edit, these must
        be deactivated (paper §1: constraints hold until deactivation).
        ``user`` narrows the scan to one user's sessions."""
        stale = []
        for session_id, session in self.model.sessions.items():
            if user is not None and session.user != user:
                continue
            for role in session.active_roles:
                if not self.model.is_authorized(session.user, role):
                    stale.append((session_id, role))
        return stale

    # -- cardinality (paper Rule 4, scenarios 1 and 2) -----------------------------

    def role_cardinality_ok(self, role: str, user: str) -> bool:
        """May ``user`` activate ``role`` without exceeding the role's
        max-active-users bound?  A user already active in the role does
        not increase the distinct-user count."""
        limit = self.model.roles[role].max_active_users
        if limit is None:
            return True
        active_users = {
            s.user for s in self.model.sessions.values()
            if role in s.active_roles
        }
        if user in active_users:
            return True
        return len(active_users) < limit

    def user_cardinality_ok(self, user: str, role: str) -> bool:
        """May ``user`` activate ``role`` without exceeding their
        max-active-roles bound (counted as distinct roles across all of
        the user's sessions)?"""
        spec = self.model.users.get(user)
        if spec is None or spec.max_active_roles is None:
            return True
        active: set[str] = set()
        for session in self.model.sessions.values():
            if session.user == user:
                active |= session.active_roles
        if role in active:
            return True
        return len(active) < spec.max_active_roles

    # -- control-flow dependencies ---------------------------------------------------

    def prerequisites_ok(self, session_id: str, role: str) -> bool:
        """Every declared prerequisite of ``role`` is active in the
        session (paper §3: SEQUENCE / prerequisite roles)."""
        session = self.model.sessions.get(session_id)
        if session is None:
            return False
        return all(
            p.prerequisite in session.active_roles
            for p in self.policy.prerequisites if p.role == role
        )

    def transaction_anchor_ok(self, role: str) -> bool:
        """Every transaction-activation anchor of ``role`` is currently
        activated by someone (paper Rule 9)."""
        return all(
            self.model.active_user_count(t.anchor_role) > 0
            for t in self.policy.transactions if t.dependent_role == role
        )

    def transaction_dependents_of(self, anchor: str) -> list[str]:
        return [
            t.dependent_role for t in self.policy.transactions
            if t.anchor_role == anchor
        ]

    # -- GTRBAC ---------------------------------------------------------------------

    def disabling_sod_ok(self, role: str) -> bool:
        """May ``role`` be disabled now?  For every disabling-time SoD
        set containing it whose interval contains the current instant,
        every *other* role of the set must still be enabled (paper
        Rule 6: deny when the partner is already disabled)."""
        now = self.clock.now
        for constraint in self.policy.disabling_sod:
            if role not in constraint.roles:
                continue
            if not constraint.interval.contains(now):
                continue
            for other in constraint.roles:
                if other == role:
                    continue
                if other in self.model.roles and \
                        not self.model.roles[other].enabled:
                    return False
        return True

    def duration_for(self, role: str, user: str) -> float | None:
        """The activation duration applying to (user, role): a per-user
        constraint wins over the role-wide one (paper Rule 7 is
        per-user)."""
        role_wide: float | None = None
        for constraint in self.policy.durations:
            if constraint.role != role:
                continue
            if constraint.user == user:
                return constraint.delta
            if constraint.user is None:
                role_wide = constraint.delta
        return role_wide

    # -- context-aware constraints ------------------------------------------------------

    def activation_context_ok(self, role: str) -> bool:
        """Every ``applies_to='activate'`` context constraint on the
        role holds in the current context."""
        return all(
            c.satisfied(self.context)
            for c in self.policy.context_constraints
            if c.role == role and c.applies_to == "activate"
        )

    def access_context_ok(self, role: str) -> bool:
        """Every ``applies_to='access'`` context constraint on the role
        holds — e.g. deny protected file access on an insecure network."""
        return all(
            c.satisfied(self.context)
            for c in self.policy.context_constraints
            if c.role == role and c.applies_to == "access"
        )

    # -- the composite access decision (paper Rule 5 + extensions) ----------------------

    def access_roles_ok(self, session_id: str, operation: str,
                        obj: str, scope: str | None = None) -> bool:
        """The For-ANY clause of Rule 5, context-aware: at least one
        active role of the session holds the permission *and* satisfies
        its access-context constraints.

        ``scope`` is the C of the normalized S-A-O-C tuple: the serving
        role must also hold the permission *at that scope* (flat or via
        a scoped grant at an ancestor) and the assignment behind it
        must cover the scope. ``scope=None`` is the flat (root) check.
        """
        model = self.model
        session = model.sessions.get(session_id)
        if session is None:
            return False
        if scope is None and not model._ua_scopes:
            return any(
                model.role_has_permission(role, operation, obj)
                and self.access_context_ok(role)
                for role in session.active_roles
            )
        return any(
            model.assignment_covers(session.user, role, scope)
            and model.role_has_permission(role, operation, obj, scope)
            and self.access_context_ok(role)
            for role in session.active_roles
        )

    def privacy_ok(self, obj: str, operation: str,
                   purpose: str | None) -> tuple[bool, tuple[str, ...]]:
        """Privacy-aware check: ``(allowed, obligations)``."""
        return self.privacy.compliant(obj, operation, purpose)

    def can_activate(self, session_id: str, role: str) -> tuple[bool, str]:
        """The full activation decision: ``(allowed, reason)``.

        This is the conjunction the generated AAR + CC rules evaluate,
        in the same order; the baseline calls it directly.  ``reason``
        is the paper-style denial message for the first failing check
        (empty on success).
        """
        model = self.model
        session = model.sessions.get(session_id)
        if session is None:
            return (False, "unknown session")
        user = session.user
        if self.is_user_locked(user):
            return (False, "user locked by active security")
        if role not in model.roles:
            return (False, "unknown role")
        if role in session.active_roles:
            return (False, "role already active in session")
        if not model.roles[role].enabled:
            return (False, "role not enabled")
        if not model.is_authorized(user, role):
            return (False, "Access Denied Cannot Activate")
        if not model.sod.dsd_ok(session.active_roles, role):
            return (False, "dynamic SoD violation")
        if not self.prerequisites_ok(session_id, role):
            return (False, "prerequisite role not active")
        if not self.transaction_anchor_ok(role):
            return (False, "anchor role not activated")
        if not self.activation_context_ok(role):
            return (False, "context constraint not satisfied")
        if not self.role_cardinality_ok(role, user):
            return (False, "Maximum Number of Roles Reached")
        if not self.user_cardinality_ok(user, role):
            return (False, "Maximum Number of Roles Reached")
        return (True, "")
