"""Structured tracing: span trees over the event→rule cascade.

Every *external* ``raise_event`` becomes a **root span**; rule firings
and cascaded raises that happen while it is being processed become
nested child spans.  The result is exactly the paper's "operation as an
event cascade" made visible::

    addActiveRole.Doctor (event) 41.2us  !ActivationDenied
      AAR2.Doctor (rule) outcome=else 37.8us  !ActivationDenied: ...

which answers the operational question "explain why this request was
denied": the root event, every rule evaluated on the way down, the
branch each took, and the typed error that vetoed it.

The tracer is **off by default** — when ``enabled`` is False,
instrumented code never constructs a span (the guard is a single
attribute read).  When on, completed root spans are kept in a bounded
ring (oldest dropped first) so long simulations cannot grow without
bound.  Spans time themselves with ``time.perf_counter_ns``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["Span", "Tracer"]


class Span:
    """One timed node in a trace tree.

    ``kind`` describes what the span wraps: ``"event"`` (a root
    ``raise_event``), ``"cascade"`` (a nested raise from a rule action),
    ``"rule"`` (one OWTE rule firing), or anything a caller chooses for
    ad-hoc spans.  ``attrs`` carries structured context (event
    parameters, rule outcome); ``error``/``error_message`` record the
    typed denial that aborted the span, if any.
    """

    __slots__ = ("name", "kind", "attrs", "children",
                 "start_ns", "end_ns", "error", "error_message")

    def __init__(self, name: str, kind: str = "event",
                 attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.kind = kind
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.children: list["Span"] = []
        self.start_ns = time.perf_counter_ns()
        self.end_ns: int | None = None
        self.error: str | None = None
        self.error_message: str | None = None

    # -- lifecycle -----------------------------------------------------------

    def finish(self) -> None:
        if self.end_ns is None:
            self.end_ns = time.perf_counter_ns()

    def set_error(self, exc: BaseException) -> None:
        self.error = type(exc).__name__
        self.error_message = str(exc)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    # -- inspection ----------------------------------------------------------

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def has_error(self) -> bool:
        """True when this span or any descendant recorded an error."""
        return any(span.error is not None for span in self.walk())

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "duration_ns": self.duration_ns,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
            out["error_message"] = self.error_message
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def render(self, indent: int = 0) -> str:
        """Indented text tree rooted at this span."""
        pad = "  " * indent
        parts = [f"{pad}{self.name} ({self.kind})"]
        for key, value in self.attrs.items():
            parts.append(f"{key}={value!r}" if isinstance(value, str)
                         else f"{key}={value}")
        parts.append(f"{self.duration_ns / 1000:.1f}us")
        if self.error is not None:
            parts.append(f"!{self.error}: {self.error_message}")
        lines = [" ".join(parts)]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"children={len(self.children)}, error={self.error!r})")


class Tracer:
    """Span factory + bounded store of completed root spans.

    Nesting is tracked with an explicit stack: a span started while
    another is open becomes its child.  Dispatch in this codebase is
    synchronous and depth-first (see ``EventDetector.dispatch``), so a
    stack models it exactly.
    """

    def __init__(self, capacity: int = 256, enabled: bool = False) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.enabled = enabled
        self.capacity = capacity
        self._roots: list[Span] = []
        self._stack: list[Span] = []
        self._dropped = 0

    # -- span lifecycle ------------------------------------------------------

    @property
    def in_flight(self) -> bool:
        """True while at least one span is open."""
        return bool(self._stack)

    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def start(self, name: str, kind: str = "event",
              **attrs: Any) -> Span:
        """Open a span (child of the current span, else a new root)."""
        span = Span(name, kind, attrs or None)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            if len(self._roots) >= self.capacity:
                overflow = len(self._roots) - self.capacity + 1
                del self._roots[:overflow]
                self._dropped += overflow
            self._roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, error: BaseException | None = None) -> None:
        """Close a span; pops the stack down through it (defensive
        against a child left open by an exception)."""
        if error is not None and span.error is None:
            span.set_error(error)
        span.finish()
        if span not in self._stack:  # already ended: no-op on the stack
            return
        while self._stack:
            top = self._stack.pop()
            top.finish()
            if top is span:
                break

    @contextmanager
    def span(self, name: str, kind: str = "event",
             **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("checkAccess"):`` convenience wrapper that
        records any escaping exception as the span's error."""
        opened = self.start(name, kind, **attrs)
        try:
            yield opened
        except BaseException as exc:
            opened.set_error(exc)
            raise
        finally:
            self.end(opened)

    # -- store ---------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Root spans evicted by the capacity bound."""
        return self._dropped

    def roots(self) -> list[Span]:
        return list(self._roots)

    def __len__(self) -> int:
        return len(self._roots)

    def clear(self) -> None:
        self._roots.clear()
        self._stack.clear()
        self._dropped = 0

    # -- export --------------------------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        return [root.to_dict() for root in self._roots]

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    def render_forest(self, only_errors: bool = False,
                      limit: int | None = None) -> str:
        """Indented text trees for captured roots.

        ``only_errors`` keeps just the traces where some span recorded
        an error (the "explain the denial" view); ``limit`` keeps the
        most recent N after filtering.
        """
        roots = self._roots
        if only_errors:
            roots = [r for r in roots if r.has_error()]
        if limit is not None:
            roots = roots[-limit:]
        return "\n\n".join(root.render() for root in roots)
