"""Zero-dependency metrics primitives: counters, gauges, histograms.

The enforcement pipeline is instrumented with a small, Prometheus-shaped
metric vocabulary so that "every operation becomes an event cascade" is
an observable fact rather than a claim: events raised by name, rule
firings by outcome, condition/action latencies at nanosecond resolution
(``time.perf_counter_ns``), cascade depths, access decisions.

Design constraints (see docs/ARCHITECTURE.md, Observability):

* **zero dependencies** — plain dicts and lists, no prometheus_client;
* **cheap on the hot path** — a labeled counter increment is one dict
  lookup plus an integer add; histograms use :func:`bisect.bisect_left`
  over a small tuple of bucket bounds;
* **two exposition formats** — Prometheus text (`render_prometheus`)
  and JSON (`render_json`), plus a flat snapshot
  (:meth:`MetricsRegistry.snapshot_flat`) that
  :meth:`repro.engine.ActiveRBACEngine.stats` merges under the ``obs.``
  key prefix.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "DEPTH_BUCKETS",
]

#: Default histogram bucket upper bounds for nanosecond latencies:
#: 1us .. 1s in a 1/2.5/5 ladder.  Chosen so a sub-microsecond guard
#: check and a multi-millisecond rule cascade land in different buckets.
DEFAULT_LATENCY_BUCKETS_NS: tuple[float, ...] = (
    1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
    100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
    50_000_000, 100_000_000, 500_000_000, 1_000_000_000,
)

#: Bucket bounds for small integer distributions (cascade depth,
#: listener fan-out).
DEPTH_BUCKETS: tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label value escaping."""
    return (value.replace("\\", "\\\\")
                 .replace("\n", "\\n")
                 .replace('"', '\\"'))


def _format_value(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus-friendly)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class _Metric:
    """Base class: name, help text, and the labeled-children registry.

    A metric either carries label names (then it is a *family* and all
    reads/writes go through :meth:`labels`) or it does not (then it is a
    single time series and is written directly).
    """

    kind = "untyped"

    # __slots__ throughout: metric series are touched on the enforcement
    # hot path (millions of increments/observations per benchmark run),
    # and slot access is measurably cheaper than __dict__ lookups.
    __slots__ = ("name", "help", "label_names", "_children")

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: dict[tuple[str, ...], "_Metric"] = {}

    def _new_child(self) -> "_Metric":
        return type(self)(self.name, self.help)

    def labels(self, *values: Any) -> "_Metric":
        """The child series for one label-value combination (created on
        first use).  Values are coerced to ``str``."""
        if not self.label_names:
            raise ValueError(
                f"metric {self.name!r} has no labels; write it directly")
        if len(values) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects {len(self.label_names)} "
                f"label value(s) ({', '.join(self.label_names)}), "
                f"got {len(values)}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    def _check_unlabeled(self) -> None:
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labeled "
                f"({', '.join(self.label_names)}); use .labels(...)")

    def series(self) -> Iterator[tuple[dict[str, str], "_Metric"]]:
        """Yield ``(label_dict, series)`` pairs, one per time series."""
        if self.label_names:
            for key in sorted(self._children):
                yield dict(zip(self.label_names, key)), self._children[key]
        else:
            yield {}, self

    def reset(self) -> None:
        """Zero this metric and every child series *in place* — child
        objects stay registered, so references cached by hot paths
        (e.g. the ObsHub's per-event child caches) remain live."""
        for child in self._children.values():
            child._reset_values()
        self._reset_values()

    def _reset_values(self) -> None:  # overridden
        pass


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._check_unlabeled()
        self._value += amount

    def total(self) -> int:
        """Sum across every child series (the family total)."""
        if not self.label_names:
            return self._value
        return sum(child.value for _labels, child in self.series())

    def _reset_values(self) -> None:
        self._value = 0


class Gauge(_Metric):
    """A value that can go up and down (pool sizes, pending timers)."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._check_unlabeled()
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._check_unlabeled()
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._check_unlabeled()
        self._value -= amount

    def _reset_values(self) -> None:
        self._value = 0.0


class Histogram(_Metric):
    """Bucketed distribution with count/sum/min/max.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches overflow.  Bucket counts are *non-cumulative* internally and
    cumulated only at render time (Prometheus semantics).
    """

    kind = "histogram"
    __slots__ = ("bounds", "_counts", "_sum")

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_NS
                 ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(set(float(b) for b in buckets)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0

    def _new_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.bounds)

    def observe(self, value: float) -> None:
        # Two mutations per observation — the total count is derived
        # from the bucket array at read time, so the hot path stays a
        # bisect + two adds (the ObsHub inlines this body).
        if self.label_names:
            self._check_unlabeled()
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def mean(self) -> float:
        count = sum(self._counts)
        return self._sum / count if count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out = []
        running = 0
        for bound, n in zip(self.bounds, self._counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th observation); 0 when empty.

        When the q-th observation sits in the ``+Inf`` overflow bucket
        the highest *finite* bound is returned — the same clamp
        Prometheus's ``histogram_quantile`` applies, so consumers
        ranking by p99 never compare infinities."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        count = sum(self._counts)
        if not count:
            return 0.0
        rank = q * count
        running = 0
        for bound, n in zip(self.bounds, self._counts):
            running += n
            if running >= rank:
                return bound
        # q-th observation is in the overflow bucket: clamp
        return self.bounds[-1] if self.bounds else float("inf")

    def _reset_values(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0


class MetricsRegistry:
    """Named registry of metrics with dual exposition formats.

    ``counter``/``gauge``/``histogram`` are get-or-create: registering
    the same name twice returns the existing metric (and raises if the
    kind or labels disagree), so independent components can share one
    registry without coordination.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list = []

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> _Metric:
        return self._metrics[name]

    def _register(self, cls, name: str, help: str,
                  label_names: Sequence[str], **kwargs) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if (type(existing) is not cls
                    or existing.label_names != tuple(label_names)):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels {existing.label_names}")
            return existing
        metric = cls(name, help, label_names, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, label_names)

    def gauge(self, name: str, help: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, label_names)

    def histogram(self, name: str, help: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_NS
                  ) -> Histogram:
        return self._register(Histogram, name, help, label_names,
                              buckets=buckets)

    def reset(self) -> None:
        """Zero every metric (definitions stay registered)."""
        for metric in self._metrics.values():
            metric.reset()

    def add_collector(self, fn) -> None:
        """Register a zero-arg callable run before every exposition
        (Prometheus collector style): series whose truth lives
        elsewhere — e.g. audit-record counts kept by the audit log —
        are filled in here instead of paying a hook on the hot path.
        Collectors must be idempotent (they run on every render)."""
        self._collectors.append(fn)

    def collect(self) -> None:
        """Run every registered collector (exposition calls this)."""
        for fn in self._collectors:
            fn()

    # -- exposition ----------------------------------------------------------

    @staticmethod
    def _label_str(labels: dict[str, str]) -> str:
        if not labels:
            return ""
        inner = ",".join(f'{k}="{_escape_label_value(v)}"'
                         for k, v in labels.items())
        return "{" + inner + "}"

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        self.collect()
        lines: list[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for labels, series in metric.series():
                if isinstance(series, Histogram):
                    for bound, cumulative in series.cumulative_buckets():
                        le = "+Inf" if bound == float("inf") \
                            else _format_value(bound)
                        bucket_labels = dict(labels, le=le)
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{self._label_str(bucket_labels)} {cumulative}")
                    lines.append(f"{metric.name}_sum"
                                 f"{self._label_str(labels)} "
                                 f"{_format_value(series.sum)}")
                    lines.append(f"{metric.name}_count"
                                 f"{self._label_str(labels)} {series.count}")
                else:
                    lines.append(f"{metric.name}"
                                 f"{self._label_str(labels)} "
                                 f"{_format_value(series.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self) -> dict[str, Any]:
        """The registry as a JSON-ready dict: one entry per metric with
        its type, help and every series."""
        self.collect()
        out: dict[str, Any] = {}
        for metric in self._metrics.values():
            entries: list[dict[str, Any]] = []
            for labels, series in metric.series():
                if isinstance(series, Histogram):
                    entries.append({
                        "labels": labels,
                        "count": series.count,
                        "sum": series.sum,
                        "mean": series.mean(),
                        "buckets": [
                            {"le": ("+Inf" if bound == float("inf")
                                    else bound),
                             "count": cumulative}
                            for bound, cumulative
                            in series.cumulative_buckets()
                        ],
                    })
                else:
                    entries.append({"labels": labels,
                                    "value": series.value})
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "series": entries,
            }
        return out

    def render_json_text(self, indent: int = 2) -> str:
        return json.dumps(self.render_json(), indent=indent,
                          sort_keys=True)

    def snapshot_flat(self, prefix: str = "") -> dict[str, float]:
        """Flattened ``{key: number}`` view for stats() merging.

        Keys are ``<prefix><name>`` for plain series and
        ``<prefix><name>{k=v,...}`` for labeled ones; histograms
        contribute ``.count``, ``.sum`` and ``.mean`` sub-keys.
        """
        self.collect()
        flat: dict[str, float] = {}
        for metric in self._metrics.values():
            for labels, series in metric.series():
                key = prefix + metric.name
                if labels:
                    inner = ",".join(f"{k}={v}" for k, v in labels.items())
                    key += "{" + inner + "}"
                if isinstance(series, Histogram):
                    flat[key + ".count"] = series.count
                    flat[key + ".sum"] = series.sum
                    flat[key + ".mean"] = series.mean()
                else:
                    flat[key] = series.value
        return flat
