"""The observability hub: one object the whole pipeline reports to.

An :class:`ObsHub` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.trace.Tracer` and pre-binds every instrument
the enforcement pipeline uses, so hot-path call sites pay one attribute
read + one ``enabled`` check before touching a metric.  The engine
creates a hub by default and wires it into the detector
(``detector.obs``), the rule manager (``manager.obs``) and the timer
service (``timers.on_fire``); audit-record counts are mirrored from
the audit log at collect time (:meth:`ObsHub.attach_audit_log`); see
docs/ARCHITECTURE.md, Observability.

Metrics are **default-on** (cheap counters/histograms); the tracer is
**off** until ``hub.tracer.enabled = True``.  Setting ``hub.enabled =
False`` turns the whole layer into near-no-ops — the benchmark smoke
job compares exactly these two states to bound instrumentation
overhead.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.obs.metrics import (
    DEPTH_BUCKETS,
    MetricsRegistry,
)
from repro.obs.trace import Tracer

__all__ = ["ObsHub"]


class ObsHub:
    """Metrics + tracing facade for the active-rule enforcement pipeline."""

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 enabled: bool = True) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.enabled = enabled
        m = self.metrics
        # -- event substrate ------------------------------------------------
        self.events_raised = m.counter(
            "repro_events_raised_total",
            "primitive event raises (external and cascaded), by event",
            ("event",))
        self.events_detected = m.counter(
            "repro_events_detected_total",
            "occurrence detections dispatched (primitive and composite), "
            "by event", ("event",))
        self.listener_dispatch = m.counter(
            "repro_listener_dispatch_total",
            "listener callbacks invoked by detector dispatch")
        self.listener_fanout = m.histogram(
            "repro_listener_fanout",
            "listeners notified per dispatch", buckets=DEPTH_BUCKETS)
        # -- rule pool ------------------------------------------------------
        self.rule_firings = m.counter(
            "repro_rule_firings_total",
            "rule firings by rule and branch entered (then/else); "
            "derived from the rule pool's own counters at collect time",
            ("rule", "outcome"))
        self.rule_errors = m.counter(
            "repro_rule_errors_total",
            "rule firings that raised a typed error, by rule and error",
            ("rule", "error"))
        self.condition_ns = m.histogram(
            "repro_rule_condition_eval_ns",
            "W-clause (condition) evaluation latency in ns, by rule "
            "(sampled: every timing_interval-th firing)",
            ("rule",))
        self.action_ns = m.histogram(
            "repro_rule_action_ns",
            "T/E-branch (action) execution latency in ns, by rule "
            "(sampled: every timing_interval-th firing)",
            ("rule",))
        self.cascade_depth = m.histogram(
            "repro_rule_cascade_depth",
            "rule-firing cascade depth per dispatch",
            buckets=DEPTH_BUCKETS)
        # -- fault containment ----------------------------------------------
        self.rule_faults = m.counter(
            "repro_rule_faults_total",
            "unexpected (non-ReproError) clause exceptions contained by "
            "the rule manager, by rule and exception type",
            ("rule", "error"))
        self.quarantines = m.counter(
            "repro_rule_quarantines_total",
            "rules quarantined by the per-rule circuit breaker, by rule",
            ("rule",))
        self.deadline_exceeded = m.counter(
            "repro_deadline_exceeded_total",
            "access checks denied because a deadline budget tripped, "
            "by budget axis", ("reason",))
        self.observer_errors = m.counter(
            "repro_observer_errors_total",
            "firing-observer callbacks that raised (contained)")
        self.transient_retries = m.counter(
            "repro_transient_retries_total",
            "transient-fault retry attempts, by call site", ("site",))
        # -- durability (WAL) ----------------------------------------------
        self.wal_appends = m.counter(
            "repro_wal_appends_total",
            "write-ahead-log records appended, by operation", ("op",))
        self.wal_fsyncs = m.counter(
            "repro_wal_fsyncs_total",
            "WAL group-commit fsyncs (batch_size appends share one)")
        self.wal_replays = m.counter(
            "repro_wal_records_replayed_total",
            "WAL records replayed during recovery")
        self.wal_torn_tails = m.counter(
            "repro_wal_torn_tail_truncations_total",
            "recoveries that detected and truncated a torn WAL tail")
        self.wal_rotations = m.counter(
            "repro_wal_rotations_total",
            "WAL rotations (checkpoint compactions)")
        # -- timers / clock -------------------------------------------------
        self.timer_callbacks = m.counter(
            "repro_timer_callbacks_total",
            "timer callbacks fired by TimerService.run_due/advance")
        self.clock_advances = m.counter(
            "repro_clock_advances_total",
            "engine.advance_time calls")
        # -- engine operations ----------------------------------------------
        self.decisions = m.counter(
            "repro_check_access_total",
            "checkAccess decisions by result", ("decision",))
        self.decision_ns = m.histogram(
            "repro_check_access_ns",
            "end-to-end checkAccess latency in ns, by result",
            ("decision",))
        self.session_churn = m.counter(
            "repro_session_churn_total",
            "session lifecycle commits", ("op",))
        self.activation_churn = m.counter(
            "repro_activation_churn_total",
            "role activation/deactivation commits", ("op",))
        self.audit_records = m.counter(
            "repro_audit_records_total",
            "audit log records by kind", ("kind",))
        # -- decision plane (PolicyKernel) -----------------------------------
        self.kernel_builds = m.counter(
            "repro_kernel_builds_total",
            "PolicyKernel compilations, by trigger "
            "(cold/epoch/rules/detector/engine)", ("reason",))
        self.kernel_build_ns = m.histogram(
            "repro_kernel_build_ns",
            "PolicyKernel compile latency in ns")
        self.kernel_decisions = m.counter(
            "repro_kernel_decisions_total",
            "checkAccess decisions by kernel path "
            "(grant/deny answered compiled; fallback ran interpreted)",
            ("path",))
        self.kernel_fallbacks = m.counter(
            "repro_kernel_fallback_reasons_total",
            "checkAccess decisions the compiled kernel did not answer, "
            "by provenance taxonomy reason (kernel-internal punts plus "
            "engine-level bypasses; see repro.obs.provenance)",
            ("reason",))
        self.hierarchy_invalidations = m.counter(
            "repro_hierarchy_closure_invalidations_total",
            "role-hierarchy closure-cache entries dropped by targeted "
            "invalidation; mirrored from the hierarchy at collect time")
        # -- hot-path child caches ------------------------------------------
        # labels() coerces and validates on every call; the recording
        # hooks below memoise the child series per label value so the
        # steady state is one dict lookup + one add.  Safe across
        # reset(): the registry zeroes series in place, keeping these
        # references live.
        self._raised_cache: dict = {}
        self._timing_cache: dict = {}
        self._error_cache: dict = {}
        self._wal_append_cache: dict = {}
        self._fallback_reason_cache: dict = {}
        self._grant_count = self.decisions.labels("grant")
        self._deny_count = self.decisions.labels("deny")
        self._grant_ns = self.decision_ns.labels("grant")
        self._deny_ns = self.decision_ns.labels("deny")
        self._kernel_grant = self.kernel_decisions.labels("grant")
        self._kernel_deny = self.kernel_decisions.labels("deny")
        self._kernel_fallback = self.kernel_decisions.labels("fallback")
        # -- cascade-depth fast path ----------------------------------------
        # Almost every dispatch enters at depth 1; that case is a plain
        # int increment here and folded into the histogram at collect
        # time.  Depth 1 owns bucket index 0 exclusively (DEPTH_BUCKETS
        # starts at 1, deeper observations land at index >= 1), so the
        # fold can overwrite the bucket idempotently.  Deep entries
        # update _counts inline but accumulate their sum here, so the
        # collector can also set _sum absolutely.
        self._cascade_shallow = 0
        self._cascade_deep_sum = 0
        m.add_collector(self._collect_cascade)
        # -- latency-histogram sampling -------------------------------------
        # Rule W/T/E timing is *sampled*: every ``timing_interval``-th
        # firing pays the three perf_counter_ns stamps and the two
        # histogram updates; counters stay exact.  The rule manager
        # reads these attributes inline (plain attrs, not properties —
        # this is a per-firing read); change the interval through
        # :meth:`set_timing_interval` so the tick restarts.
        self.timing_interval = 8
        self._timing_tick = 1

    # -- state ---------------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """True when spans should be constructed on the hot path."""
        return self.enabled and self.tracer.enabled

    def reset(self) -> None:
        """Zero every metric and drop every captured trace."""
        self._cascade_shallow = 0
        self._cascade_deep_sum = 0
        self.metrics.reset()
        self.tracer.clear()

    # -- hot-path recording hooks -------------------------------------------
    # Each guards on ``self.enabled`` so instrumented components can hold
    # a hub unconditionally and still be switched off in one place.
    # Counter children are bumped through ``_value`` directly and the
    # histogram-update body is inlined at the four per-request observe
    # sites below (deliberately duplicating Histogram.observe): the hub
    # only ever touches unlabeled child series with non-negative
    # amounts, and at ~10 hook invocations per checkAccess the method
    # dispatch + guard cost alone blows the <10% budget the benchmark
    # smoke job (benchmarks/smoke_profile.py) enforces.

    def event_raised(self, event: str) -> None:
        """Count a raise that will NOT reach dispatch (disabled node).
        The common raise→dispatch path is counted inline by the
        detector's dispatch through :meth:`bind_node` pairs."""
        if self.enabled:
            child = self._raised_cache.get(event)
            if child is None:
                child = self._raised_cache[event] = \
                    self.events_raised.labels(event)
            child._value += 1

    def bind_node(self, node) -> tuple:
        """Create and cache the ``(raise_child | None, detect_child)``
        pair on an event node.  The detector's dispatch inlines the
        per-detection counter bumps (one attribute read + two adds) and
        calls this once per node to set the cache up; a primitive
        dispatch is exactly a raise, so the pair bakes the raise child
        in (None for composites — their raises never reach dispatch).
        Listener fan-out / dispatch totals are derived at collect time
        (:meth:`attach_detector`), not per dispatch."""
        pair = (
            self.events_raised.labels(node.name)
            if node.is_primitive else None,
            self.events_detected.labels(node.name))
        node.obs_pair = pair
        return pair

    def bind_error(self, rule_name: str, error: Exception):
        """Create and cache the error-counter child for one (rule,
        error-type) pair; the rule manager inlines the per-firing bump
        and calls this on first sight of the pair."""
        child = self._error_cache[(rule_name, type(error))] = \
            self.rule_errors.labels(rule_name, type(error).__name__)
        return child

    def set_timing_interval(self, interval: int) -> None:
        """Sample every ``interval``-th rule firing for the W/T/E
        latency histograms (1 = time every firing); restarts the tick
        so the change takes effect on the next firing."""
        if interval < 1:
            raise ValueError("timing interval must be >= 1")
        self.timing_interval = interval
        self._timing_tick = 1

    def rule_timing(self, rule_name: str, cond_ns: int, act_ns: int) -> None:
        """Record one sampled firing's W-clause and branch latencies
        (the manager calls this for every ``timing_interval``-th
        firing)."""
        if self.enabled:
            pair = self._timing_cache.get(rule_name)
            if pair is None:
                pair = self._timing_cache[rule_name] = (
                    self.condition_ns.labels(rule_name),
                    self.action_ns.labels(rule_name))
            h = pair[0]
            h._counts[bisect_left(h.bounds, cond_ns)] += 1
            h._sum += cond_ns
            h = pair[1]
            h._counts[bisect_left(h.bounds, act_ns)] += 1
            h._sum += act_ns

    def cascade_entered(self, depth: int) -> None:
        if self.enabled:
            if depth == 1:
                self._cascade_shallow += 1
            else:
                h = self.cascade_depth
                h._counts[bisect_left(h.bounds, depth)] += 1
                self._cascade_deep_sum += depth

    def _collect_cascade(self) -> None:
        """Fold the depth-1 fast-path counter into the cascade-depth
        histogram (bucket 0 and the sum are set absolutely, so repeated
        collects are idempotent)."""
        if not self.enabled:
            return
        h = self.cascade_depth
        h._counts[0] = self._cascade_shallow
        h._sum = self._cascade_deep_sum + self._cascade_shallow

    def rule_fault(self, rule_name: str, error: Exception) -> None:
        """Count one contained clause fault (cold path — faults are
        exceptional, so no child caching needed)."""
        if self.enabled:
            self.rule_faults.labels(rule_name, type(error).__name__).inc()

    def rule_quarantined(self, rule_name: str) -> None:
        if self.enabled:
            self.quarantines.labels(rule_name).inc()

    def deadline_hit(self, reason: str) -> None:
        if self.enabled:
            self.deadline_exceeded.labels(reason or "unknown").inc()

    def observer_fault(self) -> None:
        if self.enabled:
            self.observer_errors._value += 1

    def retry_attempted(self, site: str) -> None:
        if self.enabled:
            self.transient_retries.labels(site).inc()

    def timer_fired(self) -> None:
        if self.enabled:
            self.timer_callbacks._value += 1

    def clock_advanced(self) -> None:
        if self.enabled:
            self.clock_advances._value += 1

    def access_decision(self, granted: bool, elapsed_ns: int) -> None:
        if self.enabled:
            if granted:
                self._grant_count._value += 1
                h = self._grant_ns
            else:
                self._deny_count._value += 1
                h = self._deny_ns
            h._counts[bisect_left(h.bounds, elapsed_ns)] += 1
            h._sum += elapsed_ns

    def kernel_fallback(self, reason: str) -> None:
        """Count one check the kernel did not answer, by taxonomy
        reason.  Child-cached: the engine bumps this on every fallback
        and every pre-consult bypass, which can be the per-check steady
        state (deadline budgets, kernel disabled)."""
        if self.enabled:
            child = self._fallback_reason_cache.get(reason)
            if child is None:
                child = self._fallback_reason_cache[reason] = \
                    self.kernel_fallbacks.labels(reason)
            child._value += 1

    def kernel_built(self, reason: str, elapsed_ns: int) -> None:
        """Count one PolicyKernel compilation and its latency.  Cold
        path: builds happen once per policy epoch, not per check."""
        if self.enabled:
            self.kernel_builds.labels(reason).inc()
            self.kernel_build_ns.observe(elapsed_ns)

    def wal_appended(self, op: str, synced: bool = False) -> None:
        """Count one WAL append (plus the fsync when this append closed
        a group-commit batch).  Child caching matters: session churn
        logs one record per commit on the enforcement path."""
        if self.enabled:
            child = self._wal_append_cache.get(op)
            if child is None:
                child = self._wal_append_cache[op] = \
                    self.wal_appends.labels(op)
            child._value += 1
            if synced:
                self.wal_fsyncs._value += 1

    def wal_rotated(self) -> None:
        if self.enabled:
            self.wal_rotations._value += 1

    def wal_recovered(self, replayed: int, torn: bool = False) -> None:
        if self.enabled:
            self.wal_replays._value += replayed
            if torn:
                self.wal_torn_tails._value += 1

    def session_changed(self, op: str) -> None:
        if self.enabled:
            self.session_churn.labels(op).inc()

    def activation_changed(self, op: str) -> None:
        if self.enabled:
            self.activation_churn.labels(op).inc()

    def attach_rules(self, manager) -> None:
        """Derive per-rule firing counts at collect time.

        Every :class:`~repro.rules.rule.OWTERule` already maintains
        ``then_count`` / ``else_count`` (seed behaviour, updated in both
        hub states), so ``repro_rule_firings_total`` is mirrored from
        the pool instead of paying a counter hook per firing.  The
        series count *branches entered*: a firing whose action then
        raises is still counted under the branch it took (the typed
        error itself is counted exactly by :meth:`rule_error`).  Counts
        survive hub-disabled windows and reset only with the pool."""
        def collect() -> None:
            if not self.enabled:
                return
            for child in self.rule_firings._children.values():
                child._value = 0  # rules can be removed from the pool
            labels = self.rule_firings.labels
            for rule in manager:
                if rule.then_count:
                    labels(rule.name, "then")._value = rule.then_count
                if rule.else_count:
                    labels(rule.name, "else")._value = rule.else_count
        self.metrics.add_collector(collect)

    def attach_detector(self, detector) -> None:
        """Derive listener fan-out / dispatch totals at collect time.

        Fan-out is a function of the subscription registry, which only
        changes when rules or observers are (un)registered — never per
        dispatch — so ``fanout(event) * detections(event)`` reconstructs
        the dispatch totals exactly for a stable registry, at zero
        hot-path cost.  (If subscriptions change mid-run the derived
        series reflect the *current* registry; policy builds subscribe
        everything up front, so in practice the two agree.)"""
        def collect() -> None:
            if not self.enabled:
                return
            h = self.listener_fanout
            h._counts = [0] * len(h._counts)
            h._sum = 0.0
            dispatched = 0
            for labels, series in self.events_detected._children.items():
                fanout = detector.fanout(labels[0])
                n = series._value
                h._counts[bisect_left(h.bounds, fanout)] += n
                h._sum += fanout * n
                dispatched += fanout * n
            self.listener_dispatch._value = dispatched
        self.metrics.add_collector(collect)

    def attach_hierarchy(self, hierarchy) -> None:
        """Mirror the hierarchy's cumulative closure-cache invalidation
        count at collect time (the hierarchy maintains the plain int;
        the mutation path pays nothing for the metric)."""
        def collect() -> None:
            if not self.enabled:
                return
            self.hierarchy_invalidations._value = hierarchy.invalidations
        self.metrics.add_collector(collect)

    def attach_audit_log(self, log) -> None:
        """Mirror the audit log's per-kind record counts into
        ``repro_audit_records_total`` at collect (exposition) time
        rather than per record — the log already maintains the counts,
        so the metric costs nothing on the enforcement hot path."""
        def collect() -> None:
            if not self.enabled:
                return
            for child in self.audit_records._children.values():
                child._value = 0  # kinds can vanish only via reset()
            for kind, n in log.counts_by_kind().items():
                self.audit_records.labels(kind)._value = n
        self.metrics.add_collector(collect)

    # -- summaries -----------------------------------------------------------

    def rule_profile(self, top: int = 10) -> list[tuple[str, int, float]]:
        """The ``top`` rules by total condition+action time:
        ``(rule, firings, total_us)`` rows, hottest first."""
        totals: dict[str, float] = {}
        firings: dict[str, int] = {}
        for hist, _part in ((self.condition_ns, "cond"),
                            (self.action_ns, "act")):
            for labels, series in hist.series():
                rule = labels.get("rule", "?")
                totals[rule] = totals.get(rule, 0.0) + series.sum
                firings[rule] = max(firings.get(rule, 0), series.count)
        rows = [(rule, firings.get(rule, 0), totals[rule] / 1000)
                for rule in totals]
        rows.sort(key=lambda row: -row[2])
        return rows[:top]

    def rule_latency_profile(self, top: int = 10,
                             q: float = 0.99
                             ) -> list[tuple[str, int, float, float]]:
        """The ``top`` slowest rules by latency quantile:
        ``(rule, samples, cond_p99_ns, action_p99_ns)`` rows, ordered
        by the worse of the two clause quantiles (bucket-resolution
        estimates; see :meth:`Histogram.quantile`)."""
        per_rule: dict[str, list] = {}
        for index, hist in ((0, self.condition_ns),
                            (1, self.action_ns)):
            for labels, series in hist.series():
                if not series.count:
                    continue
                rule = labels.get("rule", "?")
                entry = per_rule.setdefault(rule, [0, 0.0, 0.0])
                entry[0] = max(entry[0], series.count)
                entry[1 + index] = series.quantile(q)
        rows = [(rule, entry[0], entry[1], entry[2])
                for rule, entry in per_rule.items()]
        rows.sort(key=lambda row: -max(row[2], row[3]))
        return rows[:top]
