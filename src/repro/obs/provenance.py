"""Decision provenance: records, explanations, and the flight recorder.

Since the decision plane split (``repro/kernel.py``) the hot path
answers most ``checkAccess`` requests from interned bitsets — fast and
completely opaque.  This module makes every decision reconstructible
again without giving the speed back:

* :data:`FALLBACK_REASONS` — the taxonomy that replaces the old
  undifferentiated ``kernel_decisions{path=fallback}`` view.  A reason
  is attached to every check the kernel could not answer, whether the
  kernel itself punted (``context_role``, ``privacy``, ``quarantine``,
  ``instrumented``, ``coverage``, ``unknown_entity``, ``stale_privacy``)
  or the engine bypassed it before the consult (``deadline``,
  ``diagnostics``, ``observers``, ``disabled``).
* :class:`FlightRecorder` — an always-on fixed-size ring buffer of the
  last N decision records and rule firings.  The hot paths append raw
  tuples inline (index arithmetic, no locks, no allocation beyond the
  tuple), and the ring is materialized into dicts only when someone
  looks: :meth:`FlightRecorder.snapshot` or an auto-:meth:`dump`
  triggered by a quarantine trip, a security lockout, or WAL recovery.
* :func:`explain_decision` — re-runs one access decision in
  explanation mode: which path would serve it, the permission → role →
  hierarchy-edge chain reconstructed from the kernel's interning
  tables, the context gates and privacy verdict, and the first deny
  cause in the CA rule's own clause order.  The verdict always matches
  the live ``require_access`` answer (property-tested in
  ``tests/property/test_prop_kernel_equivalence.py``).

Ring-entry layout (plain tuples, kept cheap for the hot paths)::

    ("decision", seq, clock, path, session, user, op, obj,
     decision, rule, fallback_reason, deny_cause, scope)
    ("firing", seq, clock, rule, event, outcome, error)
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine import ActiveRBACEngine

__all__ = [
    "FALLBACK_REASONS",
    "FlightRecorder",
    "DecisionExplanation",
    "explain_decision",
]

#: Every reason an access check can run interpreted instead of being
#: answered by the compiled kernel.  Kernel-internal reasons mirror
#: ``PolicyKernel.fallbacks``; the last four are engine-level bypasses
#: classified before the kernel is even consulted.
FALLBACK_REASONS = (
    "context_role",     # a granting role is gated by an access context
    "privacy",          # privacy-regulated object (purpose/obligations)
    "stale_privacy",    # privacy registry grew after the compile
    "quarantine",       # the CA rule is quarantined or disabled
    "instrumented",     # CA rule clauses rewired (fault injection)
    "coverage",         # compile-time coverage gap (see kernel stats)
    "unknown_entity",   # entity the compile never saw
    "deadline",         # an explicit deadline bounds this check
    "diagnostics",      # tracing / time-every-firing sampling is on
    "observers",        # extra firing observers need the full pipeline
    "disabled",         # operator turned the kernel off
)


class FlightRecorder:
    """Fixed-size ring of the most recent decisions and rule firings.

    Always on by default (``enabled``); the per-entry cost is one
    sequence increment, one tuple, and one list store — the provenance
    overhead budget in ``benchmarks/smoke_profile.py`` bounds it at
    <3% of the kernel-path check.  The engine's hot call sites append
    inline (mirroring the ObsHub discipline); everything else goes
    through :meth:`note_decision` / :meth:`note_firing`.
    """

    __slots__ = ("enabled", "capacity", "dump_dir", "dumps",
                 "_buf", "_seq")

    def __init__(self, capacity: int = 256,
                 dump_dir: str | None = None) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.enabled = True
        self.capacity = capacity
        self._buf: list[tuple | None] = [None] * capacity
        self._seq = 0          # monotone entry sequence (1-based)
        #: where auto-dumps land; defaults lazily to a per-process
        #: temp directory (or $REPRO_FLIGHTREC_DIR) on the first dump
        self.dump_dir = dump_dir
        self.dumps = 0

    def __len__(self) -> int:
        return min(self._seq, self.capacity)

    @property
    def seq(self) -> int:
        """Total entries ever recorded (the ring keeps the last
        ``capacity`` of them)."""
        return self._seq

    def resolved_dir(self) -> str | None:
        """Where the next dump would land: the configured ``dump_dir``
        (constructor, attribute, or a front-end's ``--flightrec-dir``),
        else ``$REPRO_FLIGHTREC_DIR``, else None — meaning a fresh
        per-process temp directory gets created on first dump.
        ``engine.health()`` surfaces this so operators can tell where
        the forensic ring will go *before* anything goes wrong."""
        return self.dump_dir or os.environ.get("REPRO_FLIGHTREC_DIR")

    # -- recording ---------------------------------------------------------

    def note_decision(self, clock: float, path: str, session_id: str,
                      user: str | None, operation: str, obj: str,
                      decision: str, rule: str | None = None,
                      reason: str | None = None,
                      cause: str | None = None,
                      scope: str | None = None) -> None:
        """Record one access decision (cold-path convenience; the
        engine inlines this body at its two decision sites)."""
        if self.enabled:
            seq = self._seq = self._seq + 1
            self._buf[seq % self.capacity] = (
                "decision", seq, clock, path, session_id, user,
                operation, obj, decision, rule, reason, cause, scope)

    def note_firing(self, clock: float, rule: str, event: str,
                    outcome: str, error: str | None = None) -> None:
        """Record one rule firing (called from the engine's firing
        observer on the interpreted path)."""
        if self.enabled:
            seq = self._seq = self._seq + 1
            self._buf[seq % self.capacity] = (
                "firing", seq, clock, rule, event, outcome, error)

    # -- reading -----------------------------------------------------------

    @staticmethod
    def _entry_dict(entry: tuple) -> dict[str, Any]:
        if entry[0] == "decision":
            (_kind, seq, clock, path, session_id, user, operation,
             obj, decision, rule, reason, cause, scope) = entry
            return {
                "kind": "decision", "seq": seq, "clock": clock,
                "path": path, "session": session_id, "user": user,
                "operation": operation, "object": obj,
                "decision": decision, "rule": rule,
                "fallback_reason": reason, "deny_cause": cause,
                "scope": scope,
            }
        _kind, seq, clock, rule, event, outcome, error = entry
        return {
            "kind": "firing", "seq": seq, "clock": clock, "rule": rule,
            "event": event, "outcome": outcome, "error": error,
        }

    def snapshot(self) -> list[dict[str, Any]]:
        """The surviving entries, oldest first, as dicts."""
        entries = [e for e in self._buf if e is not None]
        entries.sort(key=lambda e: e[1])
        return [self._entry_dict(e) for e in entries]

    def tail(self, n: int = 10) -> list[dict[str, Any]]:
        """The most recent ``n`` entries, oldest first."""
        return self.snapshot()[-n:]

    # -- dumping -----------------------------------------------------------

    def dump(self, cause: str, directory: str | None = None,
             context: dict[str, Any] | None = None) -> str:
        """Write the ring to a JSON file and return its path.

        ``directory`` overrides ``dump_dir``; with neither set, a
        per-process temp directory is created lazily (overridable via
        the ``REPRO_FLIGHTREC_DIR`` environment variable).  The file is
        fsynced — a dump is a forensic record, usually written because
        something just went wrong.
        """
        from repro.containment import fsync_file

        target = directory or self.dump_dir
        if target is None:
            target = os.environ.get("REPRO_FLIGHTREC_DIR")
        if target is None:
            target = self.dump_dir = tempfile.mkdtemp(
                prefix="repro-flightrec-")
        os.makedirs(target, exist_ok=True)
        self.dumps += 1
        safe = "".join(c if (c.isalnum() or c in "._-") else "_"
                       for c in cause)
        path = os.path.join(target,
                            f"flightrec-{self.dumps:04d}-{safe}.json")
        payload = {
            "cause": cause,
            "seq": self._seq,
            "capacity": self.capacity,
            "records": self.snapshot(),
        }
        if context:
            payload["context"] = context
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True,
                      default=str)
            handle.write("\n")
            fsync_file(handle)
        return path


# ==========================================================================
# explanation mode
# ==========================================================================


class DecisionExplanation:
    """A reconstructed derivation for one access decision.

    ``allowed`` always equals what ``require_access`` would decide for
    the same (session, operation, object, purpose) right now — the
    explanation re-runs the CA rule's clause conjunction through the
    same shared predicates, and reports which path (kernel or
    interpreted) would actually serve the request and why.
    """

    __slots__ = ("session", "user", "operation", "obj", "purpose",
                 "scope", "allowed", "path", "fallback_reason", "rule",
                 "deny_cause", "roles", "privacy", "obligations",
                 "ssd_conflicts")

    def __init__(self, **fields: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, fields.get(name))

    def to_dict(self) -> dict[str, Any]:
        return {
            "session": self.session,
            "user": self.user,
            "operation": self.operation,
            "object": self.obj,
            "purpose": self.purpose,
            "scope": self.scope,
            "allowed": self.allowed,
            "verdict": "grant" if self.allowed else "deny",
            "path": self.path,
            "fallback_reason": self.fallback_reason,
            "rule": self.rule,
            "deny_cause": self.deny_cause,
            "roles": self.roles,
            "privacy": self.privacy,
            "obligations": list(self.obligations or ()),
            "ssd_conflicts": self.ssd_conflicts,
        }

    def describe(self) -> str:
        verdict = "GRANT" if self.allowed else "DENY"
        lines = [
            f"{verdict} {self.operation} on {self.obj} "
            + (f"in scope {self.scope!r} " if self.scope else "")
            + f"for session {self.session!r} (user {self.user!r})",
            f"  served by: {self.path} path"
            + (f" (fallback: {self.fallback_reason})"
               if self.fallback_reason else ""),
        ]
        if self.rule:
            lines.append(f"  rule: {self.rule}")
        for role in self.roles or ():
            mark = "+" if role["grants"] else "-"
            detail = []
            if role["holds_permission"]:
                chain = role.get("hierarchy_path") or [role["role"]]
                if len(chain) > 1:
                    detail.append("permission via "
                                  + " > ".join(chain))
                else:
                    detail.append("direct permission")
                grant_scope = role.get("grant_scope")
                if self.scope and grant_scope:
                    detail.append(f"granted at scope {grant_scope!r}")
            else:
                detail.append("no permission")
            if role["context_gated"]:
                detail.append("context "
                              + ("ok" if role["context_ok"]
                                 else "BLOCKED"))
            if self.scope and not role.get("scope_covered", True):
                detail.append("assignment scope bounds EXCLUDE "
                              f"{self.scope!r}")
            lines.append(f"  [{mark}] role {role['role']}: "
                         + ", ".join(detail))
        if not self.roles:
            lines.append("  (no active roles)")
        if self.privacy is not None:
            status = "ok" if self.privacy["allowed"] else "DENIED"
            lines.append(f"  privacy: {status}"
                         + (f" (purpose {self.purpose!r})"
                            if self.purpose else ""))
            for obligation in self.obligations or ():
                lines.append(f"    obligation owed: {obligation}")
        if self.ssd_conflicts:
            for name, a, b in self.ssd_conflicts:
                lines.append(f"  ssd conflict [{name}]: {a} x {b}")
        if not self.allowed:
            lines.append(f"  deny cause: {self.deny_cause}")
        return "\n".join(lines)


def _grant_chain(engine: "ActiveRBACEngine", kernel, role: str,
                 operation: str, obj: str) -> tuple[str | None,
                                                    list[str] | None]:
    """(source_role, hierarchy path senior→junior) for the grant that
    lets ``role`` perform (operation, obj), reconstructed from the
    kernel's interning tables; (None, None) when the role has no such
    grant."""
    rid = kernel.role_ids.get(role)
    pid = kernel.perm_ids.get((operation, obj))
    if rid is None or pid is None:
        return None, None
    if not kernel.grant_masks[rid] & (1 << pid):
        return None, None
    model = engine.model
    juniors = kernel.roles_in_mask(kernel.juniors_mask[rid])

    def holds_directly(candidate: str) -> bool:
        return any(p.operation == operation and p.obj == obj
                   for p in model.direct_role_permissions(candidate))

    sources = sorted(c for c in juniors if holds_directly(c))
    if not sources:  # grant mask says yes but no direct holder: stale
        return role, [role]
    source = role if role in sources else sources[0]
    # shortest senior→junior edge path from the asking role down to the
    # role actually holding the direct grant (BFS over immediate edges)
    if source == role:
        return source, [role]
    hierarchy = model.hierarchy
    frontier = [[role]]
    seen = {role}
    while frontier:
        path = frontier.pop(0)
        for junior in sorted(hierarchy.immediate_juniors(path[-1])):
            if junior in seen:
                continue
            next_path = path + [junior]
            if junior == source:
                return source, next_path
            seen.add(junior)
            frontier.append(next_path)
    return source, [role, source]  # closure says reachable; trust it


def _grant_scope(model, role: str, operation: str, obj: str,
                 scope: str) -> str | None:
    """The nearest scope (self → root order) anchoring the grant that
    lets ``role`` perform (operation, obj) at ``scope``; the root for
    flat grants, None when no grant reaches the scope."""
    from repro.rbac.model import Permission
    from repro.rbac.scopes import SCOPE_ROOT

    permission = Permission(operation, obj)
    members = model.hierarchy.juniors_inclusive(role)
    for anchor in model.scopes.ancestors_inclusive(scope):
        for member in members:
            if permission in model._pa_scoped.get(member, {}) \
                    .get(anchor, ()):
                return anchor
    if permission in model.role_permissions(role):
        return SCOPE_ROOT
    return None


def explain_decision(engine: "ActiveRBACEngine", session_id: str,
                     operation: str, obj: str,
                     purpose: str | None = None,
                     scope: str | None = None) -> DecisionExplanation:
    """Re-run one access decision in explanation mode (read-only).

    Mirrors the CA rule's clause conjunction through the shared
    enforcement predicates, so the verdict matches ``require_access``
    on both the kernel and the interpreted path; the serving path is
    classified with the same gate ``require_access`` uses, and a
    kernel probe (tally-free) supplies the fallback reason.

    With ``scope``, the derivation is scope-aware: each role reports
    whether it holds the permission *at the scope* (and via which
    grant anchor — "granted via role R in scope S"), and whether the
    assignment behind it covers the scope.
    """
    from repro.rbac.scopes import SCOPE_ROOT

    model = engine.model
    if scope == SCOPE_ROOT:
        scope = None  # the root scope IS the flat check
    session = model.sessions.get(session_id)
    user = session.user if session is not None else None

    # -- which path would serve this request? ------------------------------
    obs = engine.obs
    observers = engine.rules._observers
    kernel = engine.kernel()  # pure compile; works with the plane off
    path = "interpreted"
    fallback_reason: str | None = None
    if not engine.kernel_enabled:
        fallback_reason = "disabled"
    elif obs.enabled and (obs.tracer.enabled or obs.timing_interval == 1):
        fallback_reason = "diagnostics"
    elif (len(observers) != 1
          or observers[0] != engine._record_rule_firing):
        fallback_reason = "observers"
    else:
        verdict, reason = kernel.probe(session_id, operation, obj, scope)
        if verdict >= 0:
            path = "kernel"
        else:
            fallback_reason = reason

    # -- the serving rule (fail closed when none can fire) -----------------
    handlers = engine.rules.rules_for_event("checkAccess")
    serving = [r for r in handlers if r.enabled and not r.quarantined]
    rule_name = serving[0].name if serving \
        else (handlers[0].name if handlers else None)

    # -- per-role derivation ----------------------------------------------
    roles: list[dict[str, Any]] = []
    any_grant = False
    active = sorted(session.active_roles) if session is not None else []
    for role in active:
        holds = model.role_has_permission(role, operation, obj, scope)
        covered = (model.assignment_covers(user, role, scope)
                   if user is not None else False)
        gated = any(c.role == role and c.applies_to == "access"
                    for c in engine.policy.context_constraints)
        context_ok = engine.access_context_ok(role)
        source, chain = (None, None)
        grant_scope = None
        if holds:
            source, chain = _grant_chain(engine, kernel, role,
                                         operation, obj)
            grant_scope = (SCOPE_ROOT if scope is None
                           else _grant_scope(model, role, operation,
                                             obj, scope))
        grants = holds and context_ok and covered
        any_grant = any_grant or grants
        roles.append({
            "role": role,
            "holds_permission": holds,
            "source_role": source,
            "hierarchy_path": chain,
            "grant_scope": grant_scope,
            "assignment_scopes": sorted(
                model.assignment_scopes(user, role))
            if user is not None else [],
            "scope_covered": covered,
            "context_gated": gated,
            "context_ok": context_ok,
            "grants": grants,
        })

    privacy_allowed, obligations = engine.privacy_ok(obj, operation,
                                                     purpose)

    # -- verdict + first deny cause, in the CA rule's clause order ---------
    deny_cause: str | None = None
    if not serving:
        quarantined = [r.name for r in handlers if r.quarantined]
        deny_cause = ("checkAccess rule quarantined (fail closed): "
                      + ", ".join(quarantined) if quarantined
                      else "no enabled checkAccess rule (fail closed)")
    elif session is None:
        deny_cause = "unknown session"
    elif engine.is_user_locked(user):
        deny_cause = "user locked by active security"
    elif operation not in model.operations:
        deny_cause = f"unknown operation {operation!r}"
    elif obj not in model.objects:
        deny_cause = f"unknown object {obj!r}"
    elif scope is not None and scope not in model.scopes:
        deny_cause = f"unknown scope {scope!r}"
    elif not any_grant:
        blocked = [r["role"] for r in roles
                   if r["holds_permission"] and not r["context_ok"]
                   and r["scope_covered"]]
        uncovered = [r["role"] for r in roles
                     if r["holds_permission"] and r["context_ok"]
                     and not r["scope_covered"]]
        if blocked:
            deny_cause = ("context constraint not satisfied for "
                          + ", ".join(blocked))
        elif uncovered:
            where = (f"scope {scope!r}" if scope is not None
                     else "the flat (root) check")
            deny_cause = (f"assignment scope bounds exclude {where} "
                          "for " + ", ".join(uncovered))
        else:
            deny_cause = ("no active role holds the permission"
                          + (f" in scope {scope!r}"
                             if scope is not None else ""))
    elif not privacy_allowed:
        deny_cause = (f"privacy policy denies purpose {purpose!r} "
                      f"for {operation} on {obj}")
    allowed = deny_cause is None

    # static SoD conflicts touching the derivation (analysis context:
    # assignment-time enforcement prevented these from co-occurring)
    involved = set(active) | {r["source_role"] for r in roles
                              if r["source_role"]}
    ssd = [pair for pair in kernel.ssd_conflict_pairs()
           if pair[1] in involved or pair[2] in involved]

    return DecisionExplanation(
        session=session_id, user=user, operation=operation, obj=obj,
        purpose=purpose, scope=scope, allowed=allowed, path=path,
        fallback_reason=fallback_reason, rule=rule_name,
        deny_cause=deny_cause, roles=roles,
        privacy={"allowed": privacy_allowed,
                 "regulated": obj in kernel.regulated_objects},
        obligations=tuple(obligations), ssd_conflicts=ssd,
    )
