"""The Profiler: wall-time + metric-delta capture around a code block.

Benchmarks (and any caller) wrap a region::

    with Profiler(registry=engine.obs.metrics, label="B3 hot loop") as prof:
        for _ in range(1000):
            engine.check_access(sid, "read", "doc")
    print(prof.report())

and get back the elapsed wall time (``perf_counter_ns``) plus the delta
of every metric series that moved while the block ran — how many events
one loop iteration really raised, how many rule firings it caused, where
the latency histograms grew.  With no registry it degrades to a plain
nanosecond stopwatch.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = ["Profiler"]


class Profiler:
    """Context manager capturing elapsed time and metric movement."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 label: str = "block") -> None:
        self.registry = registry
        self.label = label
        self.start_ns: int | None = None
        self.end_ns: int | None = None
        self._before: dict[str, float] = {}
        self._delta: dict[str, float] = {}

    def __enter__(self) -> "Profiler":
        if self.registry is not None:
            self._before = self.registry.snapshot_flat()
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.end_ns = time.perf_counter_ns()
        if self.registry is not None:
            after = self.registry.snapshot_flat()
            delta: dict[str, float] = {}
            for key, value in after.items():
                moved = value - self._before.get(key, 0.0)
                if moved:
                    delta[key] = moved
            self._delta = delta

    # -- results -------------------------------------------------------------

    @property
    def elapsed_ns(self) -> int:
        if self.start_ns is None:
            return 0
        end = self.end_ns if self.end_ns is not None \
            else time.perf_counter_ns()
        return end - self.start_ns

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ns / 1e9

    def delta(self) -> dict[str, float]:
        """Per-series movement while the block ran (zero-delta series
        omitted; ``.mean`` keys excluded — deltas of means are noise)."""
        return {k: v for k, v in self._delta.items()
                if not k.endswith(".mean")}

    def report(self, top: int = 12) -> str:
        """Human-readable profile: wall time + the largest metric moves."""
        lines = [f"profile [{self.label}]: "
                 f"{self.elapsed_ns / 1e6:.3f} ms wall"]
        moves = sorted(self.delta().items(), key=lambda kv: -abs(kv[1]))
        for key, value in moves[:top]:
            lines.append(f"  {key}  +{value:g}")
        remaining = len(moves) - top
        if remaining > 0:
            lines.append(f"  ... and {remaining} more series")
        if not moves:
            lines.append("  (no metric movement captured)")
        return "\n".join(lines)
