"""repro.obs — observability for the active-rule enforcement pipeline.

Three pillars (see docs/ARCHITECTURE.md, Observability):

* :mod:`repro.obs.metrics` — zero-dependency counters, gauges and
  ns-resolution histograms with Prometheus-text and JSON exposition;
* :mod:`repro.obs.trace` — structured span trees over the event→rule
  cascade ("explain why this request was denied");
* :mod:`repro.obs.profile` — a :class:`Profiler` context manager the
  benchmarks wrap around hot loops;
* :mod:`repro.obs.provenance` — decision provenance: the fallback-
  reason taxonomy, the always-on :class:`FlightRecorder` ring of
  recent decisions/firings, and ``engine.explain``'s derivation
  builder.

:class:`~repro.obs.hub.ObsHub` bundles a registry and a tracer and is
what the engine wires through the pipeline's hook points.
"""

from repro.obs.hub import ObsHub
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    DEPTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import Profiler
from repro.obs.provenance import (
    FALLBACK_REASONS,
    DecisionExplanation,
    FlightRecorder,
    explain_decision,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "DEPTH_BUCKETS",
    "DecisionExplanation",
    "FALLBACK_REASONS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsHub",
    "Profiler",
    "Span",
    "Tracer",
    "explain_decision",
]
