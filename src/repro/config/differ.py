"""Diff two policy specs into the minimal deployment delta.

The differ answers two different questions about a config push:

1. **what static state moves** — ordered model-level operations
   (roles/users added or removed, hierarchy edges, SoD sets, grants,
   assignments, cardinality edits) that
   :meth:`~repro.config.lifecycle.PolicyLifecycle` applies directly to
   the live :class:`~repro.rbac.model.RBACModel`;
2. **whose rules change** — the set of roles whose *generated rule
   set* the change actually touches.  This is deliberately narrower
   than "every role the document mentions": a grant, an assignment or
   a permission registration changes only model state read at decision
   time, so it regenerates **zero** rules — and every rule object that
   is not regenerated keeps its identity, which is what lets
   quarantine and counter state survive a policy push (see
   ``synthesis/regenerate.py``).

Rule-relevance is computed from a per-role signature covering exactly
the inputs of :meth:`RuleGenerator.generate_role_rules`: hierarchy
participation, DSD membership, cardinality, the temporal descriptors
(durations, enabling windows, disabling-time SoD), CFD descriptors
(prerequisites, post-conditions, transactions), and access-context
constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.policy.spec import PolicySpec

__all__ = ["ConfigDiff", "diff_specs", "rule_signature"]


def rule_signature(spec: PolicySpec, role: str) -> tuple:
    """Everything about ``role`` that feeds its generated rule set."""
    return (
        # hierarchy participation picks the AAR variant; the incident
        # edge set is included so an edge swap regenerates both ends
        tuple(sorted(edge for edge in spec.hierarchy if role in edge)),
        tuple(sorted(
            (name, tuple(sorted(sod.roles)), sod.cardinality)
            for name, sod in spec.dsd.items() if role in sod.roles)),
        spec.roles[role].max_active_users if role in spec.roles else None,
        tuple(sorted((d.role, d.delta, d.user)
                     for d in spec.durations if d.role == role)),
        tuple(sorted(repr(w) for w in spec.enabling_windows
                     if w.role == role)),
        tuple(sorted(
            (c.name, tuple(sorted(c.roles)), repr(c.interval))
            for c in spec.disabling_sod if role in c.roles)),
        tuple(sorted((p.role, p.prerequisite)
                     for p in spec.prerequisites if p.role == role)),
        tuple(sorted(
            (p.trigger_role, p.required_role)
            for p in spec.post_conditions
            if role in (p.trigger_role, p.required_role))),
        tuple(sorted(
            (t.dependent_role, t.anchor_role)
            for t in spec.transactions
            if role in (t.dependent_role, t.anchor_role))),
        tuple(sorted(repr(c) for c in spec.context_constraints
                     if c.role == role)),
    )


@dataclass
class ConfigDiff:
    """The computed delta between two policy specs.

    ``model_ops`` is the ordered static-state edit script (applied by
    the lifecycle under one epoch); ``changed_roles`` is the
    rule-relevant seed set regeneration starts from.
    """

    added_roles: set[str] = field(default_factory=set)
    removed_roles: set[str] = field(default_factory=set)
    #: surviving roles whose generated rule set the change touches
    changed_roles: set[str] = field(default_factory=set)
    #: ordered static-state edits: ("op", args...) tuples
    model_ops: list[tuple[Any, ...]] = field(default_factory=list)
    #: privacy surface moved (purposes / object policies): the
    #: registry is rebuilt wholesale on apply
    privacy_changed: bool = False
    #: threshold policies moved: monitor policies re-seeded on apply
    thresholds_changed: bool = False
    #: context constraint set moved (affects kernel context mask)
    context_changed: bool = False
    #: federation role maps moved: serve re-syncs shard federations
    federation_changed: bool = False

    @property
    def is_empty(self) -> bool:
        return not (self.added_roles or self.removed_roles
                    or self.changed_roles or self.model_ops
                    or self.privacy_changed or self.thresholds_changed
                    or self.context_changed or self.federation_changed)

    @property
    def regen_seeds(self) -> set[str]:
        """Seed roles for incremental regeneration: surviving roles
        whose rules changed, plus brand-new roles (their rules do not
        exist yet).  Removed roles are retired, not regenerated."""
        return self.changed_roles | self.added_roles

    def summary(self) -> dict[str, Any]:
        return {
            "added_roles": sorted(self.added_roles),
            "removed_roles": sorted(self.removed_roles),
            "changed_roles": sorted(self.changed_roles),
            "model_ops": len(self.model_ops),
            "ops": [op[0] for op in self.model_ops],
            "privacy_changed": self.privacy_changed,
            "thresholds_changed": self.thresholds_changed,
            "context_changed": self.context_changed,
            "federation_changed": self.federation_changed,
            "empty": self.is_empty,
        }


def _sod_rows(family: dict) -> set[tuple]:
    return {(name, tuple(sorted(sod.roles)), sod.cardinality)
            for name, sod in family.items()}


def diff_specs(old: PolicySpec, new: PolicySpec) -> ConfigDiff:
    """Compute the deployment delta from ``old`` to ``new``."""
    diff = ConfigDiff()
    ops = diff.model_ops

    old_roles, new_roles = set(old.roles), set(new.roles)
    diff.added_roles = new_roles - old_roles
    diff.removed_roles = old_roles - new_roles
    survivors = old_roles & new_roles

    old_users, new_users = set(old.users), set(new.users)

    # -- deassignments and revocations first (they reference state the
    # removals below would tear down)
    for user, role in sorted(set(old.assignments) - set(new.assignments)):
        ops.append(("deassign_user", user, role))
    for user, role, scope in sorted(
            set(old.scoped_assignments) - set(new.scoped_assignments)):
        ops.append(("deassign_scoped", user, role, scope))
    for grant in sorted(set(old.grants) - set(new.grants)):
        ops.append(("revoke", *grant))
    for grant in sorted(set(old.scoped_grants) - set(new.scoped_grants)):
        ops.append(("revoke_scoped", *grant))
    for edge in sorted(set(old.hierarchy) - set(new.hierarchy)):
        ops.append(("delete_inheritance", *edge))
    for family, old_fam, new_fam in (("ssd", old.ssd, new.ssd),
                                     ("dsd", old.dsd, new.dsd)):
        stale = _sod_rows(old_fam) - _sod_rows(new_fam)
        for name, _roles, _card in sorted(stale):
            ops.append((f"delete_{family}", name))
    for role in sorted(diff.removed_roles):
        ops.append(("delete_role", role))
    for user in sorted(old_users - new_users):
        ops.append(("delete_user", user))
    # removed scopes last (their scoped grants/bounds were revoked
    # above); reverse declaration order deletes children before parents
    new_scope_rows = set(new.scopes)
    for name, parent in reversed(old.scopes):
        if (name, parent) not in new_scope_rows:
            ops.append(("remove_scope", name))

    # -- additions, dependency-ordered: entities, hierarchy, SoD,
    # permissions, grants, assignments
    for user in sorted(new_users - old_users):
        ops.append(("add_user", user, new.users[user].max_active_roles))
    for user in sorted(old_users & new_users):
        if old.users[user].max_active_roles \
                != new.users[user].max_active_roles:
            ops.append(("set_user_max_roles", user,
                        new.users[user].max_active_roles))
    for role in sorted(diff.added_roles):
        ops.append(("add_role", role, new.roles[role].max_active_users))
    for role in sorted(survivors):
        if old.roles[role].max_active_users \
                != new.roles[role].max_active_users:
            ops.append(("set_role_cardinality", role,
                        new.roles[role].max_active_users))
    for edge in sorted(set(new.hierarchy) - set(old.hierarchy)):
        ops.append(("add_inheritance", *edge))
    for family, old_fam, new_fam in (("ssd", old.ssd, new.ssd),
                                     ("dsd", old.dsd, new.dsd)):
        fresh = _sod_rows(new_fam) - _sod_rows(old_fam)
        for name, roles, cardinality in sorted(fresh):
            ops.append((f"create_{family}", name, set(roles), cardinality))
    # new scopes in declaration order (parents before children)
    old_scope_rows = set(old.scopes)
    for name, parent in new.scopes:
        if (name, parent) not in old_scope_rows:
            ops.append(("add_scope", name, parent))
    for pair in new.permissions:
        if pair not in old.permissions:
            ops.append(("add_permission", *pair))
    for grant in sorted(set(new.grants) - set(old.grants)):
        ops.append(("grant", *grant))
    for grant in sorted(set(new.scoped_grants) - set(old.scoped_grants)):
        ops.append(("grant_scoped", *grant))
    for user, role in sorted(set(new.assignments) - set(old.assignments)):
        ops.append(("assign_user", user, role))
    for user, role, scope in sorted(
            set(new.scoped_assignments) - set(old.scoped_assignments)):
        ops.append(("assign_scoped", user, role, scope))

    # -- rule-relevant role changes (see module docstring)
    for role in sorted(survivors):
        if rule_signature(old, role) != rule_signature(new, role):
            diff.changed_roles.add(role)

    diff.privacy_changed = (
        old.purposes != new.purposes
        or old.object_policies != new.object_policies)
    diff.thresholds_changed = (
        old.threshold_policies != new.threshold_policies)
    diff.context_changed = (
        old.context_constraints != new.context_constraints)
    diff.federation_changed = (
        old.federation_maps != new.federation_maps)
    return diff
