"""Parse and validate policy config documents into config sets.

Three input formats, one output: a validated
:class:`~repro.config.configset.ConfigSet`.

* **JSON** (``.json``) — the structured schema below;
* **YAML subset** (``.yaml`` / ``.yml``) — the same schema through a
  built-in indentation parser (the repo is stdlib-only, so this is a
  deliberately small subset: mappings, lists, scalars, inline lists,
  and ``|`` block literals — enough for policy documents, not a YAML
  implementation);
* **DSL** (``.rbac``) — the policy language itself, wrapped as
  ``{"policy": <text>}``.

The structured schema covers the core RBAC surface plus the simple
constraint descriptors::

    version: 2          # monotone config version id (required in-file
    name: hq            # for yaml/json; .rbac files take it externally)
    roles:              # - name / - {name, max_active_users}
    users:              # - name / - {name, max_active_roles}
    hierarchy:          # - {senior, junior}
    ssd: / dsd:         # - {name, roles: [...], cardinality}
    permissions:        # - {operation, object}
    grants:             # - {role, operation, object, scope?}
    assignments:        # - {user, role, scope?}
    scopes:             # - {name, parent?} (parents first)
    federation_maps:    # - {home_role, host_domain, host_role}
    durations:          # - {role, delta, user?}
    prerequisites:      # - {role, prerequisite}
    post_conditions:    # - {trigger_role, required_role}
    transactions:       # - {dependent_role, anchor_role}
    policy: |           # DSL escape hatch for everything else
        ...             # (exclusive with the structured policy keys)

Whatever the format, the document is parsed into a
:class:`~repro.policy.spec.PolicySpec`, validated with the standard
policy validator, and canonicalised (re-rendered as DSL + checksummed)
— so equivalent YAML, JSON and DSL inputs produce byte-identical
deployment artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.config.configset import ConfigSet
from repro.errors import ReproError
from repro.policy.spec import PolicySpec

__all__ = ["ConfigError", "load_config", "parse_config",
           "spec_from_document"]


class ConfigError(ReproError):
    """A config document that cannot be parsed or validated."""


# ==========================================================================
# YAML subset parser (stdlib-only; see module docstring for the subset)
# ==========================================================================


def _scalar(text: str) -> Any:
    text = text.strip()
    if not text or text in ("~", "null"):
        return None
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    if (len(text) >= 2 and text[0] == text[-1] and text[0] in "'\""):
        return text[1:-1]
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_scalar(item) for item in inner.split(",")]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _yaml_lines(text: str) -> list[tuple[int, str, int]]:
    """(indent, content, line_number) for every significant line."""
    out = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[:len(raw) - len(raw.lstrip())]:
            raise ConfigError(f"line {number}: tabs in indentation")
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        out.append((len(raw) - len(raw.lstrip(" ")), stripped, number))
    return out


class _YamlParser:
    def __init__(self, text: str) -> None:
        self.lines = _yaml_lines(text)
        self.raw = text.splitlines()
        self.pos = 0

    def parse(self) -> Any:
        if not self.lines:
            return {}
        value = self._block(self.lines[0][0])
        if self.pos < len(self.lines):
            indent, content, number = self.lines[self.pos]
            raise ConfigError(f"line {number}: unexpected {content!r}")
        return value

    def _block(self, indent: int) -> Any:
        _, content, _ = self.lines[self.pos]
        if content.startswith("- ") or content == "-":
            return self._list(indent)
        return self._mapping(indent)

    def _mapping(self, indent: int) -> dict[str, Any]:
        result: dict[str, Any] = {}
        while self.pos < len(self.lines):
            line_indent, content, number = self.lines[self.pos]
            if line_indent < indent:
                break
            if line_indent > indent or content.startswith("- "):
                raise ConfigError(
                    f"line {number}: bad indentation for {content!r}")
            key, sep, rest = content.partition(":")
            if not sep:
                raise ConfigError(f"line {number}: expected 'key: value',"
                                  f" got {content!r}")
            key = _scalar(key)
            rest = rest.strip()
            self.pos += 1
            if rest == "|":
                result[key] = self._literal(number, indent)
            elif rest:
                result[key] = _scalar(rest)
            elif (self.pos < len(self.lines)
                    and self.lines[self.pos][0] > indent):
                result[key] = self._block(self.lines[self.pos][0])
            else:
                result[key] = None
        return result

    def _list(self, indent: int) -> list[Any]:
        result: list[Any] = []
        while self.pos < len(self.lines):
            line_indent, content, number = self.lines[self.pos]
            if line_indent != indent or not (
                    content == "-" or content.startswith("- ")):
                if line_indent >= indent:
                    raise ConfigError(
                        f"line {number}: expected list item, "
                        f"got {content!r}")
                break
            rest = content[1:].strip()
            self.pos += 1
            if not rest:
                # `-` introducing an indented block item
                if (self.pos < len(self.lines)
                        and self.lines[self.pos][0] > indent):
                    result.append(self._block(self.lines[self.pos][0]))
                else:
                    result.append(None)
            elif ":" in rest and not rest.startswith(("'", '"', "[")):
                # inline first key of a mapping item: re-parse the rest
                # as a mapping whose continuation lines indent past `- `
                item_indent = indent + 2
                self.lines.insert(self.pos, (item_indent, rest, number))
                result.append(self._mapping(item_indent))
            else:
                result.append(_scalar(rest))
        return result

    def _literal(self, number: int, indent: int) -> str:
        """``key: |`` block literal: every following raw line indented
        past the key, dedented by the first line's indent."""
        collected: list[str] = []
        base: int | None = None
        for raw in self.raw[number:]:
            stripped = raw.strip()
            line_indent = len(raw) - len(raw.lstrip(" "))
            if stripped and line_indent <= indent:
                break
            if base is None and stripped:
                base = line_indent
            collected.append(raw[base:] if base is not None
                             and len(raw) >= base else "")
        # significant lines inside the literal were consumed rawly;
        # skip them in the structured stream too
        consumed_past = number + len(collected)
        while (self.pos < len(self.lines)
                and self.lines[self.pos][2] <= consumed_past):
            self.pos += 1
        while collected and not collected[-1].strip():
            collected.pop()
        return "\n".join(collected) + ("\n" if collected else "")


def _parse_yaml(text: str) -> Any:
    return _YamlParser(text).parse()


# ==========================================================================
# document -> PolicySpec
# ==========================================================================

_STRUCTURED_KEYS = (
    "roles", "users", "hierarchy", "ssd", "dsd", "permissions",
    "grants", "assignments", "scopes", "federation_maps", "durations",
    "prerequisites", "post_conditions", "transactions",
)


def _named_entries(doc: Any, key: str) -> list[dict[str, Any]]:
    raw = doc.get(key) or []
    if not isinstance(raw, list):
        raise ConfigError(f"config key {key!r} must be a list")
    entries = []
    for item in raw:
        if isinstance(item, str):
            entries.append({"name": item})
        elif isinstance(item, dict):
            entries.append(item)
        else:
            raise ConfigError(f"{key!r} entries must be names or "
                              f"mappings, got {item!r}")
    return entries


def _require(entry: dict[str, Any], key: str, field: str) -> Any:
    try:
        return entry[field]
    except KeyError:
        raise ConfigError(
            f"{key!r} entry {entry!r} missing field {field!r}") from None


def spec_from_document(doc: dict[str, Any]) -> PolicySpec:
    """Build (and do not yet validate) a PolicySpec from a parsed
    structured document — or from its ``policy`` DSL escape hatch."""
    if not isinstance(doc, dict):
        raise ConfigError("config document must be a mapping")
    dsl_text = doc.get("policy")
    if dsl_text is not None:
        clash = [key for key in _STRUCTURED_KEYS if doc.get(key)]
        if clash:
            raise ConfigError(
                f"config mixes a 'policy' DSL block with structured "
                f"keys {clash}; use one or the other")
        from repro.errors import PolicySyntaxError
        from repro.policy.dsl import parse_policy
        try:
            spec = parse_policy(str(dsl_text))
        except PolicySyntaxError as exc:
            raise ConfigError(f"embedded policy DSL: {exc}") from None
        if doc.get("name"):
            spec.name = str(doc["name"])
        return spec

    from repro.extensions.cfd import (
        PostConditionDependency,
        PrerequisiteRole,
        TransactionActivation,
    )
    from repro.gtrbac.constraints import DurationConstraint

    spec = PolicySpec(name=str(doc.get("name", "policy")))
    for entry in _named_entries(doc, "roles"):
        spec.add_role(str(_require(entry, "roles", "name")),
                      entry.get("max_active_users"))
    for entry in _named_entries(doc, "users"):
        spec.add_user(str(_require(entry, "users", "name")),
                      entry.get("max_active_roles"))
    for entry in _named_entries(doc, "hierarchy"):
        spec.add_hierarchy(str(_require(entry, "hierarchy", "senior")),
                           str(_require(entry, "hierarchy", "junior")))
    for family, adder in (("ssd", spec.add_ssd), ("dsd", spec.add_dsd)):
        for entry in _named_entries(doc, family):
            roles = _require(entry, family, "roles")
            if not isinstance(roles, list):
                raise ConfigError(f"{family!r} roles must be a list")
            adder(str(_require(entry, family, "name")),
                  {str(role) for role in roles},
                  int(entry.get("cardinality", 2)))
    for entry in _named_entries(doc, "permissions"):
        pair = (str(_require(entry, "permissions", "operation")),
                str(_require(entry, "permissions", "object")))
        if pair not in spec.permissions:
            spec.permissions.append(pair)
    for entry in _named_entries(doc, "scopes"):
        parent = entry.get("parent")
        spec.add_scope(str(_require(entry, "scopes", "name")),
                       None if parent is None else str(parent))
    for entry in _named_entries(doc, "grants"):
        role = str(_require(entry, "grants", "role"))
        operation = str(_require(entry, "grants", "operation"))
        obj = str(_require(entry, "grants", "object"))
        scope = entry.get("scope")
        if scope is None:
            spec.add_grant(role, operation, obj)
        else:
            spec.add_scoped_grant(role, operation, obj, str(scope))
    for entry in _named_entries(doc, "assignments"):
        user = str(_require(entry, "assignments", "user"))
        role = str(_require(entry, "assignments", "role"))
        scope = entry.get("scope")
        if scope is None:
            spec.add_assignment(user, role)
        else:
            spec.add_scoped_assignment(user, role, str(scope))
    for entry in _named_entries(doc, "federation_maps"):
        spec.add_federation_map(
            str(_require(entry, "federation_maps", "home_role")),
            str(_require(entry, "federation_maps", "host_domain")),
            str(_require(entry, "federation_maps", "host_role")))
    for entry in _named_entries(doc, "durations"):
        user = entry.get("user")
        spec.durations.append(DurationConstraint(
            str(_require(entry, "durations", "role")),
            float(_require(entry, "durations", "delta")),
            None if user is None else str(user)))
    for entry in _named_entries(doc, "prerequisites"):
        spec.prerequisites.append(PrerequisiteRole(
            str(_require(entry, "prerequisites", "role")),
            str(_require(entry, "prerequisites", "prerequisite"))))
    for entry in _named_entries(doc, "post_conditions"):
        spec.post_conditions.append(PostConditionDependency(
            str(_require(entry, "post_conditions", "trigger_role")),
            str(_require(entry, "post_conditions", "required_role"))))
    for entry in _named_entries(doc, "transactions"):
        spec.transactions.append(TransactionActivation(
            str(_require(entry, "transactions", "dependent_role")),
            str(_require(entry, "transactions", "anchor_role"))))
    return spec


# ==========================================================================
# entry points
# ==========================================================================


def parse_config(text: str, fmt: str = "yaml",
                 version: int | None = None,
                 origin: str = "inline") -> ConfigSet:
    """Parse one config document into a validated ConfigSet.

    ``fmt`` is ``yaml``, ``json`` or ``rbac`` (raw DSL).  The version
    comes from the document's ``version`` key, overridable (and for
    raw DSL, suppliable) via the ``version`` argument.
    """
    if fmt == "json":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"bad JSON config: {exc}") from None
    elif fmt == "yaml":
        doc = _parse_yaml(text)
    elif fmt == "rbac":
        doc = {"policy": text}
    else:
        raise ConfigError(f"unknown config format {fmt!r}")
    if not isinstance(doc, dict):
        raise ConfigError("config document must be a mapping")
    if version is None:
        version = doc.get("version")
    if version is None:
        raise ConfigError("config document has no 'version' (and no "
                          "explicit version was supplied)")
    try:
        version = int(version)
    except (TypeError, ValueError):
        raise ConfigError(f"bad config version {version!r}") from None
    spec = spec_from_document(doc)
    from repro.policy.validator import validate_policy
    issues = validate_policy(spec)
    if issues:
        raise ConfigError(
            "config version %d failed validation: %s"
            % (version, "; ".join(str(issue) for issue in issues)))
    return ConfigSet.from_spec(spec, version, origin=origin)


_FORMATS = {".json": "json", ".yaml": "yaml", ".yml": "yaml",
             ".rbac": "rbac"}


def load_config(path: str, version: int | None = None) -> ConfigSet:
    """Load a config file, format-dispatched on extension (unknown
    extensions sniff: ``{`` means JSON, a ``version:``/``policy:`` key
    means YAML, anything else is DSL)."""
    file = Path(path)
    try:
        text = file.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read config {path}: {exc}") from None
    fmt = _FORMATS.get(file.suffix.lower())
    if fmt is None:
        head = text.lstrip()[:1]
        if head == "{":
            fmt = "json"
        elif any(line.split(":", 1)[0].strip() in
                 ("version", "policy", "name", *_STRUCTURED_KEYS)
                 for line in text.splitlines() if ":" in line):
            fmt = "yaml"
        else:
            fmt = "rbac"
    return parse_config(text, fmt, version=version, origin=str(path))
