"""Policy lifecycle: versioned config sets, staged rollout, replay.

Every policy change enters the engine as a **config set** — a
validated YAML/JSON/DSL document with a monotone version id — and
leaves through a guarded deployment pipeline instead of a raw mutation:

1. :func:`~repro.config.loader.load_config` parses and validates the
   document into a :class:`~repro.config.configset.ConfigSet`;
2. :func:`~repro.config.differ.diff_specs` computes what actually
   changed — and, crucially, which roles' *rules* the change touches;
3. :class:`~repro.config.lifecycle.PolicyLifecycle` stages the version:
   a candidate engine+kernel is compiled off to the side, live check
   traffic is mirrored against it (shadow compare), and promotion
   happens only under a divergence/error budget — as one atomic,
   WAL-logged epoch swap.  Post-promotion regressions auto-roll back.
4. :func:`~repro.config.replay.replay_wal` re-runs a recorded decision
   stream under any pinned config version — the WAL doubles as an
   audit instrument.
"""

from repro.config.configset import ConfigSet
from repro.config.differ import ConfigDiff, diff_specs
from repro.config.lifecycle import PolicyLifecycle, RolloutBudget
from repro.config.loader import load_config, parse_config
from repro.config.replay import ReplayResult, diff_streams, replay_wal

__all__ = [
    "ConfigSet", "ConfigDiff", "diff_specs",
    "PolicyLifecycle", "RolloutBudget",
    "load_config", "parse_config",
    "ReplayResult", "diff_streams", "replay_wal",
]
